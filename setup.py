"""Legacy setup shim.

Kept so that ``pip install -e .`` works on environments whose
setuptools predates the bundled ``bdist_wheel`` (< 70.1) and that lack
the ``wheel`` package — pip then falls back to the classic
``setup.py develop`` editable path. All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
