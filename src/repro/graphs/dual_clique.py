"""The dual clique network of Theorem 3.1.

Quoting the paper: "Partition the ``n`` nodes in ``V`` into two equal
sized sets, ``A`` and ``B``. Connect the nodes in ``A`` (resp. ``B``)
to form a clique in ``G``. Connect a single node ``t_A ∈ A`` to a
single node ``t_B ∈ B``, forming a bridge between the two cliques. Let
``G'`` be the complete graph over all nodes."

The graph has constant diameter (2 within each side, 3 across) yet both
broadcast problems require ``Ω(n)`` rounds against an offline adaptive
link process and ``Ω(n / log n)`` against an online adaptive one: the
only reliable path between the sides is the single secret bridge, and
the adversary can flood ``G'`` edges to manufacture collisions whenever
more than one node transmits.

It is also a geographic graph (both cliques can be embedded inside a
unit disc with ``r`` large enough), which the paper notes strengthens
the lower bound; :func:`dual_clique` attaches such an embedding.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import GraphValidationError
from repro.graphs.dual_graph import DualGraph, Edge
from repro.registry import register_graph

__all__ = ["DualCliqueNetwork", "dual_clique"]


@dataclass(frozen=True)
class DualCliqueNetwork:
    """A dual clique instance: the graph plus its secret structure.

    Attributes
    ----------
    graph:
        The :class:`~repro.graphs.dual_graph.DualGraph`; nodes
        ``0 … half-1`` form clique ``A``, nodes ``half … n-1`` form
        clique ``B``.
    bridge_a / bridge_b:
        The bridge endpoints ``t_A ∈ A`` and ``t_B ∈ B``. These are the
        *secret* of the lower-bound game — algorithms must not receive
        them; experiment code passes only :attr:`graph` to algorithm
        factories.
    """

    graph: DualGraph
    bridge_a: int
    bridge_b: int

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def half(self) -> int:
        return self.graph.n // 2

    def side_a(self) -> range:
        """Node ids of clique ``A``."""
        return range(self.half)

    def side_b(self) -> range:
        """Node ids of clique ``B``."""
        return range(self.half, self.n)

    @property
    def side_a_mask(self) -> int:
        """Bitmask of side ``A`` (the cut used by the attackers)."""
        return (1 << self.half) - 1

    def in_side_a(self, node: int) -> bool:
        return node < self.half


def dual_clique(
    half: int,
    *,
    bridge_a: Optional[int] = None,
    bridge_b: Optional[int] = None,
    rng: Optional[random.Random] = None,
    with_embedding: bool = True,
) -> DualCliqueNetwork:
    """Build a dual clique network with ``n = 2 * half`` nodes.

    Parameters
    ----------
    half:
        Size of each clique (``|A| = |B| = half``).
    bridge_a / bridge_b:
        Bridge endpoints; drawn uniformly from each side via ``rng``
        when omitted (matching the adversarial placement of the proof —
        the algorithm cannot predict them).
    rng:
        Randomness for bridge placement; defaults to a fixed seed so
        that omitting both the bridge and the RNG still yields a
        deterministic network.
    with_embedding:
        Attach the geographic embedding (two tight clusters at distance
        just over 1) that witnesses the paper's remark that the dual
        clique is a geographic graph.
    """
    if half < 2:
        raise GraphValidationError("dual_clique needs half >= 2")
    n = 2 * half
    rng = rng or random.Random(0xD0A1)
    t_a = bridge_a if bridge_a is not None else rng.randrange(half)
    t_b = bridge_b if bridge_b is not None else half + rng.randrange(half)
    if not 0 <= t_a < half:
        raise GraphValidationError(f"bridge_a={t_a} must lie in side A [0, {half})")
    if not half <= t_b < n:
        raise GraphValidationError(f"bridge_b={t_b} must lie in side B [{half}, {n})")

    g_edges: list[Edge] = []
    for base in (0, half):
        g_edges.extend(
            (base + u, base + v) for u in range(half) for v in range(u + 1, half)
        )
    g_edges.append((t_a, t_b))

    extra: list[Edge] = [
        (u, v) for u in range(half) for v in range(half, n) if (u, v) != (t_a, t_b)
    ]

    embedding = None
    if with_embedding:
        embedding = _cluster_embedding(half)

    graph = DualGraph.from_edges(
        n, g_edges, extra, embedding=embedding, name=f"dual-clique-{n}"
    )
    return DualCliqueNetwork(graph=graph, bridge_a=t_a, bridge_b=t_b)


@register_graph("dual-clique")
def _spec_dual_clique(
    ctx,
    *,
    half: int,
    bridge_a: Optional[int] = None,
    bridge_b: Optional[int] = None,
    avoid_source: bool = True,
    with_embedding: bool = True,
) -> DualCliqueNetwork:
    """Per-trial secret bridge, redrawn from the ``"network"`` stream.

    ``avoid_source`` (default) excludes node 0 from the side-A endpoint
    — the proofs' adversarial placement, which never hands the bridge
    to the trivially-informed source. The derivation label matches the
    legacy Figure-1 closures, so spec-built dual cliques are identical
    draw for draw.
    """
    half = int(half)
    if bridge_a is None or bridge_b is None:
        rng = ctx.rng("network")
        if bridge_a is None:
            if avoid_source and half > 1:
                bridge_a = 1 + rng.randrange(half - 1)
            else:
                bridge_a = rng.randrange(half)
        if bridge_b is None:
            bridge_b = half + rng.randrange(half)
    return dual_clique(
        half,
        bridge_a=int(bridge_a),
        bridge_b=int(bridge_b),
        with_embedding=bool(with_embedding),
    )


def _cluster_embedding(half: int) -> list[tuple[float, float]]:
    """Two discs of diameter 0.9 with centers 2.0 apart.

    Same-side pairs sit at distance ≤ 0.9 ≤ 1 (so the cliques are
    forced into ``G`` by the geographic constraint) while cross pairs
    sit at distances in ``(1.1, 2.9)`` — strictly above 1 and within
    ``r = 3`` — placing every cross edge in the grey zone where the
    constraint allows arbitrary (adversarial) behavior.
    """
    points: list[tuple[float, float]] = []
    for base_x in (0.0, 2.0):
        for i in range(half):
            angle = 2.0 * math.pi * i / max(half, 1)
            radius = 0.45
            points.append(
                (base_x + radius * math.cos(angle), radius * math.sin(angle))
            )
    return points
