"""Dual graph topologies: the core type, generic families, and the
paper's lower-bound constructions (dual clique, bracelet) plus
geographic graphs and their region decomposition."""

from repro.graphs.bracelet import BraceletNetwork, bracelet
from repro.graphs.builders import (
    binary_tree_dual,
    clique_dual,
    er_dual,
    funnel_dual,
    grid_dual,
    line_dual,
    line_of_cliques,
    ring_dual,
    star_dual,
    with_extra_flaky_edges,
)
from repro.graphs.dual_clique import DualCliqueNetwork, dual_clique
from repro.graphs.dual_graph import DualGraph, Edge, edges_from_adjacency, normalize_edge
from repro.graphs.geographic import (
    cluster_chain_geographic,
    edges_from_embedding,
    geographic_from_points,
    grid_geographic,
    random_geographic,
    verify_geographic_constraint,
)
from repro.graphs.regions import RegionDecomposition, max_region_neighbors_bound

__all__ = [
    "DualGraph",
    "Edge",
    "normalize_edge",
    "edges_from_adjacency",
    "line_dual",
    "ring_dual",
    "grid_dual",
    "clique_dual",
    "star_dual",
    "binary_tree_dual",
    "line_of_cliques",
    "funnel_dual",
    "er_dual",
    "with_extra_flaky_edges",
    "DualCliqueNetwork",
    "dual_clique",
    "BraceletNetwork",
    "bracelet",
    "geographic_from_points",
    "edges_from_embedding",
    "random_geographic",
    "grid_geographic",
    "cluster_chain_geographic",
    "verify_geographic_constraint",
    "RegionDecomposition",
    "max_region_neighbors_bound",
]
