"""Generic dual-graph families used by experiments and tests.

These are the workhorse topologies for the upper-bound sweeps:

* lines / rings / grids / trees — diameter-controlled networks for the
  ``D log n`` term of global broadcast;
* cliques / stars — contention-heavy, constant-diameter networks for
  the ``log² n`` term;
* *line of cliques* — the classic worst case for decay-style broadcast:
  ``k`` cliques of size ``c`` chained by bridges, giving diameter
  ``Θ(k)`` with contention ``Θ(c)`` at every hop;
* Erdős–Rényi dual graphs — random ``G`` plus random extra flaky edges,
  for property-based testing.

Every builder returns a validated :class:`~repro.graphs.dual_graph.DualGraph`
whose ``G`` is connected.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.core.errors import GraphValidationError
from repro.graphs.dual_graph import DualGraph, Edge
from repro.registry import register_graph

__all__ = [
    "line_dual",
    "ring_dual",
    "grid_dual",
    "clique_dual",
    "star_dual",
    "binary_tree_dual",
    "line_of_cliques",
    "funnel_dual",
    "er_dual",
    "with_extra_flaky_edges",
]


def _pairs_path(n: int) -> list[Edge]:
    return [(i, i + 1) for i in range(n - 1)]


def line_dual(n: int, *, extra_flaky_skips: int = 0, name: Optional[str] = None) -> DualGraph:
    """A path on ``n`` nodes; optionally add skip-edges ``(i, i+2)`` to ``G' \\ G``.

    With ``extra_flaky_skips = k``, the first ``k`` skip pairs become
    unreliable shortcuts the adversary may grant or withhold — a minimal
    dual graph where link flakiness changes the effective diameter.
    """
    if n < 2:
        raise GraphValidationError("line_dual needs n >= 2")
    skips = [(i, i + 2) for i in range(min(extra_flaky_skips, n - 2))]
    return DualGraph.from_edges(n, _pairs_path(n), skips, name=name or f"line-{n}")


def ring_dual(n: int, *, chords: Iterable[Edge] = (), name: Optional[str] = None) -> DualGraph:
    """A cycle on ``n`` nodes with optional flaky chords."""
    if n < 3:
        raise GraphValidationError("ring_dual needs n >= 3")
    edges = _pairs_path(n) + [(n - 1, 0)]
    return DualGraph.from_edges(n, edges, chords, name=name or f"ring-{n}")


def grid_dual(
    rows: int,
    cols: int,
    *,
    flaky_diagonals: bool = False,
    name: Optional[str] = None,
) -> DualGraph:
    """A ``rows × cols`` grid; diagonal links are flaky when requested.

    Node ``(r, c)`` has id ``r * cols + c``. Diagonal flaky edges model
    grey-zone links between nodes at distance ``√2`` in a unit-spaced
    deployment.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GraphValidationError("grid_dual needs at least two nodes")
    g_edges: list[Edge] = []
    extra: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g_edges.append((u, u + 1))
            if r + 1 < rows:
                g_edges.append((u, u + cols))
            if flaky_diagonals and r + 1 < rows:
                if c + 1 < cols:
                    extra.append((u, u + cols + 1))
                if c > 0:
                    extra.append((u, u + cols - 1))
    return DualGraph.from_edges(
        rows * cols, g_edges, extra, name=name or f"grid-{rows}x{cols}"
    )


def clique_dual(n: int, *, name: Optional[str] = None) -> DualGraph:
    """The complete graph (``G = G'``): maximal contention, diameter 1."""
    if n < 2:
        raise GraphValidationError("clique_dual needs n >= 2")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return DualGraph.from_edges(n, edges, name=name or f"clique-{n}")


def star_dual(n: int, *, flaky_rim: bool = False, name: Optional[str] = None) -> DualGraph:
    """A star with hub 0; optionally a flaky rim cycle among the leaves."""
    if n < 2:
        raise GraphValidationError("star_dual needs n >= 2")
    edges = [(0, v) for v in range(1, n)]
    extra: list[Edge] = []
    if flaky_rim and n > 3:
        extra = [(v, v + 1) for v in range(1, n - 1)] + [(n - 1, 1)]
    return DualGraph.from_edges(n, edges, extra, name=name or f"star-{n}")


def binary_tree_dual(depth: int, *, name: Optional[str] = None) -> DualGraph:
    """A complete binary tree of the given depth (root id 0)."""
    if depth < 1:
        raise GraphValidationError("binary_tree_dual needs depth >= 1")
    n = (1 << (depth + 1)) - 1
    edges = [(child, (child - 1) // 2) for child in range(1, n)]
    return DualGraph.from_edges(n, edges, name=name or f"btree-d{depth}")


def line_of_cliques(
    num_cliques: int,
    clique_size: int,
    *,
    flaky_cross_links: bool = False,
    name: Optional[str] = None,
) -> DualGraph:
    """``num_cliques`` cliques of ``clique_size`` chained by single bridges.

    Clique ``i`` occupies ids ``[i*c, (i+1)*c)``; node ``i*c + c - 1``
    bridges to node ``(i+1)*c`` of the next clique. Diameter is
    ``Θ(num_cliques)`` while every hop faces ``Θ(clique_size)``
    contention — the standard hard family for the ``D log n`` term of
    decay broadcast.

    With ``flaky_cross_links``, every pair of nodes in *adjacent*
    cliques gains a flaky edge, letting adversaries smear collisions
    across bridge boundaries.
    """
    if num_cliques < 1 or clique_size < 1 or num_cliques * clique_size < 2:
        raise GraphValidationError("line_of_cliques needs at least two nodes")
    c = clique_size
    n = num_cliques * c
    g_edges: list[Edge] = []
    for i in range(num_cliques):
        base = i * c
        g_edges.extend((base + a, base + b) for a in range(c) for b in range(a + 1, c))
        if i + 1 < num_cliques:
            g_edges.append((base + c - 1, base + c))
    extra: list[Edge] = []
    if flaky_cross_links:
        for i in range(num_cliques - 1):
            left = range(i * c, (i + 1) * c)
            right = range((i + 1) * c, (i + 2) * c)
            extra.extend((a, b) for a in left for b in right)
    return DualGraph.from_edges(
        n, g_edges, extra, name=name or f"cliqueline-{num_cliques}x{clique_size}"
    )


def funnel_dual(n: int, *, name: Optional[str] = None) -> DualGraph:
    """Source → middle clique → sink: the coordination stress graph.

    Node 0 (source) neighbors every middle node; nodes ``1 … n-2`` form
    a clique; node ``n-1`` (sink) also neighbors every middle node. The
    graph is static (``G = G'``). After the source's announcement the
    whole middle layer is informed, and the sink receives only in a
    round where *exactly one* middle node transmits — the situation
    Lemma 4.2's shared-rung coordination is designed for, and where
    independent per-node rungs collapse (probability
    ``≈ (k/log n)·e^{-k/log n}`` for middle size ``k``).
    """
    if n < 4:
        raise GraphValidationError("funnel_dual needs n >= 4 (source, 2 middle, sink)")
    middle = range(1, n - 1)
    edges: list[Edge] = [(0, m) for m in middle]
    edges.extend((a, b) for a in middle for b in middle if a < b)
    edges.extend((m, n - 1) for m in middle)
    return DualGraph.from_edges(n, edges, name=name or f"funnel-{n}")


def er_dual(
    n: int,
    g_edge_probability: float,
    flaky_edge_probability: float,
    rng: random.Random,
    *,
    max_tries: int = 64,
    name: Optional[str] = None,
) -> DualGraph:
    """Erdős–Rényi dual graph: random connected ``G`` plus random flaky extras.

    ``G`` is drawn as a uniform random spanning tree (to guarantee
    connectivity) plus each remaining pair independently with
    ``g_edge_probability``; each non-``G`` pair then joins ``G' \\ G``
    independently with ``flaky_edge_probability``.
    """
    if n < 2:
        raise GraphValidationError("er_dual needs n >= 2")
    for p in (g_edge_probability, flaky_edge_probability):
        if not 0.0 <= p <= 1.0:
            raise GraphValidationError(f"edge probability {p} outside [0, 1]")
    del max_tries  # connectivity is guaranteed by the spanning tree
    # Random spanning tree via random attachment of a shuffled order.
    order = list(range(n))
    rng.shuffle(order)
    g_edges: set[Edge] = set()
    for i in range(1, n):
        parent = order[rng.randrange(i)]
        child = order[i]
        g_edges.add((min(parent, child), max(parent, child)))
    extra: set[Edge] = set()
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) in g_edges:
                continue
            draw = rng.random()
            if draw < g_edge_probability:
                g_edges.add((u, v))
            elif draw < g_edge_probability + flaky_edge_probability:
                extra.add((u, v))
    return DualGraph.from_edges(n, g_edges, extra, name=name or f"er-{n}")


def with_extra_flaky_edges(
    network: DualGraph, extra: Iterable[Edge], *, name: Optional[str] = None
) -> DualGraph:
    """Return a copy of ``network`` with additional flaky edges."""
    return DualGraph.from_edges(
        network.n,
        network.g_edges(),
        network.flaky_edges() | {tuple(sorted(e)) for e in extra},
        embedding=network.embedding,
        name=name or f"{network.name}+flaky",
    )


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
@register_graph("line", deterministic=True)
def _spec_line(ctx, *, n: int, extra_flaky_skips: int = 0) -> DualGraph:
    return line_dual(int(n), extra_flaky_skips=int(extra_flaky_skips))


@register_graph("ring", deterministic=True)
def _spec_ring(ctx, *, n: int, chords: Iterable[Edge] = ()) -> DualGraph:
    return ring_dual(int(n), chords=[tuple(e) for e in chords])


@register_graph("grid", deterministic=True)
def _spec_grid(ctx, *, rows: int, cols: int, flaky_diagonals: bool = False) -> DualGraph:
    return grid_dual(int(rows), int(cols), flaky_diagonals=bool(flaky_diagonals))


@register_graph("clique", deterministic=True)
def _spec_clique(ctx, *, n: int) -> DualGraph:
    return clique_dual(int(n))


@register_graph("star", deterministic=True)
def _spec_star(ctx, *, n: int, flaky_rim: bool = False) -> DualGraph:
    return star_dual(int(n), flaky_rim=bool(flaky_rim))


@register_graph("binary-tree", deterministic=True)
def _spec_binary_tree(ctx, *, depth: int) -> DualGraph:
    return binary_tree_dual(int(depth))


@register_graph("line-of-cliques", deterministic=True)
def _spec_line_of_cliques(
    ctx, *, num_cliques: int, clique_size: int, flaky_cross_links: bool = False
) -> DualGraph:
    return line_of_cliques(
        int(num_cliques), int(clique_size), flaky_cross_links=bool(flaky_cross_links)
    )


@register_graph("funnel", deterministic=True)
def _spec_funnel(ctx, *, n: int) -> DualGraph:
    return funnel_dual(int(n))


@register_graph("er")
def _spec_er(
    ctx, *, n: int, g_edge_probability: float, flaky_edge_probability: float
) -> DualGraph:
    return er_dual(
        int(n),
        float(g_edge_probability),
        float(flaky_edge_probability),
        ctx.rng("er"),
    )
