"""Geographic dual graphs: the Section 2 constraint, as generators.

The paper's geographic constraint (inherited from [3], generalizing
unit disk graphs): there is a constant ``r ≥ 1`` and a plane embedding
with distance ``d`` such that for all ``u ≠ v``:

* ``d(u, v) ≤ 1``  ⇒  ``(u, v) ∈ G``  (close nodes are reliable);
* ``d(u, v) > r``  ⇒  ``(u, v) ∉ G'`` (far nodes cannot communicate).

Pairs in the *grey zone* ``1 < d(u, v) ≤ r`` may or may not be usable,
round by round, at the adversary's whim — these are exactly the flaky
edges our generators place in ``G' \\ G``.

Generators:

* :func:`random_geographic` — uniform points in a square, resampled
  until ``G`` is connected; density and grey-zone ratio are the knobs.
* :func:`grid_geographic` — jittered lattice (connectivity guaranteed),
  used for large-`n`` sweeps where resampling would be wasteful.
* :func:`cluster_chain_geographic` — ``k`` dense clusters strung along
  a line, giving geographic graphs with controlled diameter.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Optional, Sequence

from repro.core.errors import GraphValidationError
from repro.graphs.dual_graph import DualGraph, Edge
from repro.registry import register_graph

__all__ = [
    "edges_from_embedding",
    "geographic_from_points",
    "random_geographic",
    "grid_geographic",
    "cluster_chain_geographic",
    "verify_geographic_constraint",
]


def edges_from_embedding(
    points: Sequence[tuple[float, float]], grey_ratio: float
) -> tuple[list[Edge], list[Edge]]:
    """Split all pairs into reliable (``d ≤ 1``) and grey (``1 < d ≤ r``) edges.

    ``grey_ratio`` is the constant ``r`` of the constraint. Uses a grid
    spatial index so generation is ~O(n) for bounded densities.
    """
    if grey_ratio < 1.0:
        raise GraphValidationError(f"grey_ratio (the constant r) must be >= 1, got {grey_ratio}")
    cell = grey_ratio  # cell size = max interaction radius
    buckets: dict[tuple[int, int], list[int]] = {}
    for idx, (x, y) in enumerate(points):
        buckets.setdefault((math.floor(x / cell), math.floor(y / cell)), []).append(idx)

    reliable: list[Edge] = []
    grey: list[Edge] = []
    for (cx, cy), members in buckets.items():
        neighborhood: list[int] = []
        for dx, dy in itertools.product((-1, 0, 1), repeat=2):
            neighborhood.extend(buckets.get((cx + dx, cy + dy), ()))
        for u in members:
            ux, uy = points[u]
            for v in neighborhood:
                if v <= u:
                    continue
                vx, vy = points[v]
                dist = math.hypot(ux - vx, uy - vy)
                if dist <= 1.0:
                    reliable.append((u, v))
                elif dist <= grey_ratio:
                    grey.append((u, v))
    return reliable, grey


def geographic_from_points(
    points: Sequence[tuple[float, float]],
    grey_ratio: float,
    *,
    name: Optional[str] = None,
) -> DualGraph:
    """Build the dual graph induced by an embedding under the constraint."""
    reliable, grey = edges_from_embedding(points, grey_ratio)
    return DualGraph.from_edges(
        len(points),
        reliable,
        grey,
        embedding=points,
        name=name or f"geo-{len(points)}",
    )


def random_geographic(
    n: int,
    *,
    grey_ratio: float = 2.0,
    density: Optional[float] = None,
    seed: int = 0,
    max_tries: int = 200,
) -> DualGraph:
    """Uniform random points in a square, resampled until ``G`` connects.

    Parameters
    ----------
    n:
        Node count.
    grey_ratio:
        The geographic constant ``r`` (grey zone ``(1, r]``).
    density:
        Expected number of nodes per unit disc; the square side is
        chosen as ``sqrt(n * π / density)``. Random geometric graphs
        connect around density ``≈ ln n``, so the default scales as
        ``2·ln n + 4`` (comfortably connected at experiment sizes
        while keeping ``Δ = Θ(log n)``).
    seed:
        Seed for point placement (placement is workload, not execution,
        randomness — hence a plain seed rather than an engine RNG).
    max_tries:
        Resampling budget before raising.
    """
    if n < 2:
        raise GraphValidationError("random_geographic needs n >= 2")
    if density is None:
        density = 2.0 * math.log(n) + 4.0
    if density <= 0:
        raise GraphValidationError("density must be positive")
    rng = random.Random(seed)
    side = math.sqrt(n * math.pi / density)
    for attempt in range(max_tries):
        points = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]
        graph = geographic_from_points(
            points, grey_ratio, name=f"geo-rand-{n} (try {attempt})"
        )
        if graph.is_g_connected():
            return DualGraph(
                n=graph.n,
                g_masks=graph.g_masks,
                gp_masks=graph.gp_masks,
                embedding=graph.embedding,
                name=f"geo-rand-{n}",
            )
    raise GraphValidationError(
        f"failed to sample a connected geographic graph after {max_tries} tries "
        f"(n={n}, density={density}); raise the density"
    )


def grid_geographic(
    rows: int,
    cols: int,
    *,
    spacing: float = 0.7,
    jitter: float = 0.1,
    grey_ratio: float = 2.0,
    seed: int = 0,
) -> DualGraph:
    """A jittered lattice whose connectivity is guaranteed by construction.

    With ``spacing + 2·jitter·√2 ≤ 1`` every lattice-adjacent pair
    stays within distance 1, so ``G`` contains the grid and is
    connected; the grey zone then supplies flaky diagonal and
    second-ring edges. Good for large sweeps (no resampling).
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GraphValidationError("grid_geographic needs at least two nodes")
    if spacing <= 0:
        raise GraphValidationError("spacing must be positive")
    reach = spacing + 2 * jitter * math.sqrt(2.0)
    if reach > 1.0 + 1e-9:
        raise GraphValidationError(
            f"spacing={spacing} with jitter={jitter} lets lattice neighbors "
            f"drift to distance {reach:.3f} > 1; G-connectivity would not be guaranteed"
        )
    rng = random.Random(seed)
    points = [
        (
            c * spacing + rng.uniform(-jitter, jitter),
            r * spacing + rng.uniform(-jitter, jitter),
        )
        for r in range(rows)
        for c in range(cols)
    ]
    return geographic_from_points(points, grey_ratio, name=f"geo-grid-{rows}x{cols}")


def cluster_chain_geographic(
    num_clusters: int,
    cluster_size: int,
    *,
    cluster_radius: float = 0.35,
    cluster_spacing: float = 0.9,
    grey_ratio: float = 2.0,
    seed: int = 0,
    max_tries: int = 200,
) -> DualGraph:
    """Dense clusters strung along a line: geographic graphs with ``D = Θ(k)``.

    Cluster centers sit ``cluster_spacing`` apart; points scatter within
    ``cluster_radius``. With spacing + 2·radius ≤ ~1.6 adjacent
    clusters overlap in ``G`` range, yielding a connected backbone with
    per-hop contention ``Θ(cluster_size)`` — the geographic analogue of
    :func:`~repro.graphs.builders.line_of_cliques`.
    """
    if num_clusters < 1 or cluster_size < 1:
        raise GraphValidationError("need at least one cluster and one node per cluster")
    rng = random.Random(seed)
    n = num_clusters * cluster_size
    for _ in range(max_tries):
        points: list[tuple[float, float]] = []
        for k in range(num_clusters):
            cx = k * cluster_spacing
            for _ in range(cluster_size):
                angle = rng.uniform(0.0, 2.0 * math.pi)
                rad = cluster_radius * math.sqrt(rng.random())
                points.append((cx + rad * math.cos(angle), rad * math.sin(angle)))
        graph = geographic_from_points(
            points, grey_ratio, name=f"geo-chain-{num_clusters}x{cluster_size}"
        )
        if graph.is_g_connected():
            return graph
    raise GraphValidationError(
        "failed to build a connected cluster chain; reduce cluster_spacing"
    )


def verify_geographic_constraint(graph: DualGraph, grey_ratio: float) -> None:
    """Assert the Section 2 constraint holds for ``graph``'s embedding.

    Checks both directions: every pair at distance ≤ 1 is a ``G`` edge,
    and no pair at distance > ``grey_ratio`` appears in ``G'``. Used by
    tests and by :class:`~repro.graphs.regions.RegionDecomposition` as a
    precondition.
    """
    if graph.embedding is None:
        raise GraphValidationError("graph has no embedding to verify")
    pts = graph.embedding
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            dist = math.hypot(pts[u][0] - pts[v][0], pts[u][1] - pts[v][1])
            if dist <= 1.0 and not graph.has_g_edge(u, v):
                raise GraphValidationError(
                    f"nodes {u},{v} at distance {dist:.3f} <= 1 lack a G edge"
                )
            if dist > grey_ratio and graph.has_gp_edge(u, v):
                raise GraphValidationError(
                    f"nodes {u},{v} at distance {dist:.3f} > r={grey_ratio} have a G' edge"
                )


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
@register_graph("geographic")
def _spec_random_geographic(
    ctx,
    *,
    n: int,
    grey_ratio: float = 2.0,
    density: Optional[float] = None,
    seed: Optional[int] = None,
) -> DualGraph:
    """Per-trial random deployment; omit ``seed`` to redraw every trial.

    The default per-trial seed uses the ``"geo"`` derivation label the
    Figure-1 scenarios have always used, so spec-built trials reproduce
    the legacy closures bit for bit.
    """
    return random_geographic(
        int(n),
        grey_ratio=float(grey_ratio),
        density=None if density is None else float(density),
        seed=ctx.derive("geo") if seed is None else int(seed),
    )


@register_graph("grid-geographic")
def _spec_grid_geographic(
    ctx,
    *,
    rows: int,
    cols: int,
    spacing: float = 0.7,
    jitter: float = 0.1,
    grey_ratio: float = 2.0,
    seed: Optional[int] = None,
) -> DualGraph:
    return grid_geographic(
        int(rows),
        int(cols),
        spacing=float(spacing),
        jitter=float(jitter),
        grey_ratio=float(grey_ratio),
        seed=ctx.derive("geo-grid") if seed is None else int(seed),
    )


@register_graph("cluster-chain")
def _spec_cluster_chain(
    ctx,
    *,
    num_clusters: int,
    cluster_size: int,
    cluster_radius: float = 0.35,
    cluster_spacing: float = 0.9,
    grey_ratio: float = 2.0,
    seed: Optional[int] = None,
) -> DualGraph:
    return cluster_chain_geographic(
        int(num_clusters),
        int(cluster_size),
        cluster_radius=float(cluster_radius),
        cluster_spacing=float(cluster_spacing),
        grey_ratio=float(grey_ratio),
        seed=ctx.derive("geo-chain") if seed is None else int(seed),
    )
