"""Region decomposition of geographic dual graphs (from [3]).

The analysis of the Section 4.3 local broadcast algorithm leans on a
property of geographic graphs "first established in [3]": the nodes can
be partitioned into regions ``R = {R_1, R_2, …}`` such that

1. all nodes in the same region are mutually connected in ``G``, and
2. each region has at most ``γ_r = O(1)`` *neighboring* regions —
   regions containing a ``G'``-neighbor of one of its nodes — where the
   constant depends only on the geographic parameter ``r``.

We realize the decomposition the standard way: square grid cells of
side ``1/√2``. Any two points in one cell are at distance at most the
cell diagonal ``= 1``, so the geographic constraint forces them to be
``G``-adjacent (property 1). A ``G'`` edge spans distance at most
``r``, so neighboring regions' cells are within ``r`` of each other and
there are at most ``(2·(⌈r·√2⌉ + 1) + 1)²`` of them (property 2).

The decomposition is *analysis machinery*, not algorithm state — the
Section 4.3 algorithm never looks at regions. It is exported so tests
can check the paper's per-region claims (O(log n) leaders per region,
etc.) and so benches can report region statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import GraphValidationError
from repro.core.trace import iter_bits

from repro.graphs.dual_graph import DualGraph

__all__ = ["RegionDecomposition", "max_region_neighbors_bound"]

#: Grid cell side: diagonal exactly 1, so same-cell ⇒ distance ≤ 1 ⇒ G edge.
CELL_SIDE = 1.0 / math.sqrt(2.0)


def max_region_neighbors_bound(grey_ratio: float) -> int:
    """The constant ``γ_r``: an upper bound on neighboring regions.

    A ``G'`` edge spans at most ``r``; measured in cells that is
    ``⌈r / CELL_SIDE⌉ = ⌈r·√2⌉`` cells, plus one for within-cell
    offsets, in each direction.
    """
    reach = math.ceil(grey_ratio * math.sqrt(2.0)) + 1
    return (2 * reach + 1) ** 2


@dataclass(frozen=True)
class RegionDecomposition:
    """Grid-cell region decomposition of an embedded dual graph.

    Attributes
    ----------
    graph:
        The decomposed graph (must carry an embedding).
    region_of:
        ``region_of[u]`` is the region index of node ``u``.
    regions:
        ``regions[i]`` is the tuple of node ids in region ``i``
        (non-empty, ordered by id).
    neighbor_sets:
        ``neighbor_sets[i]`` is the set of region indices (including
        ``i`` itself) containing a ``G'``-neighbor of region ``i``.
    """

    graph: DualGraph
    region_of: tuple[int, ...]
    regions: tuple[tuple[int, ...], ...]
    neighbor_sets: tuple[frozenset[int], ...]

    @classmethod
    def build(cls, graph: DualGraph) -> "RegionDecomposition":
        """Decompose ``graph`` by grid cells of side ``1/√2``."""
        if graph.embedding is None:
            raise GraphValidationError(
                "region decomposition requires an embedded (geographic) graph"
            )
        cell_of_node: list[tuple[int, int]] = [
            (math.floor(x / CELL_SIDE), math.floor(y / CELL_SIDE))
            for x, y in graph.embedding
        ]
        cell_index: dict[tuple[int, int], int] = {}
        members: list[list[int]] = []
        region_of = []
        for u, cell in enumerate(cell_of_node):
            idx = cell_index.get(cell)
            if idx is None:
                idx = len(members)
                cell_index[cell] = idx
                members.append([])
            members[idx].append(u)
            region_of.append(idx)

        neighbor_sets: list[set[int]] = [set() for _ in members]
        for u in range(graph.n):
            ru = region_of[u]
            neighbor_sets[ru].add(ru)
            for v in iter_bits(graph.gp_masks[u]):
                neighbor_sets[ru].add(region_of[v])

        return cls(
            graph=graph,
            region_of=tuple(region_of),
            regions=tuple(tuple(m) for m in members),
            neighbor_sets=tuple(frozenset(s) for s in neighbor_sets),
        )

    # ------------------------------------------------------------------
    # Queries used by tests and benches
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def region_size(self, i: int) -> int:
        return len(self.regions[i])

    def max_region_size(self) -> int:
        return max(len(r) for r in self.regions)

    def max_neighboring_regions(self) -> int:
        """Observed ``γ_r`` (should sit below the analytic bound)."""
        return max(len(s) for s in self.neighbor_sets)

    def regions_of_nodes(self, nodes: Iterable[int]) -> set[int]:
        """Region indices covering the given nodes."""
        return {self.region_of[u] for u in nodes}

    def verify_same_region_g_adjacency(self) -> None:
        """Check property 1: same-region nodes are pairwise ``G``-adjacent."""
        for members in self.regions:
            for a_pos, u in enumerate(members):
                for v in members[a_pos + 1 :]:
                    if not self.graph.has_g_edge(u, v):
                        raise GraphValidationError(
                            f"region property violated: nodes {u},{v} share a "
                            f"region but lack a G edge"
                        )

    def summary(self) -> str:
        return (
            f"regions={self.num_regions}, max_size={self.max_region_size()}, "
            f"max_neighbors={self.max_neighboring_regions()}"
        )
