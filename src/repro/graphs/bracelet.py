"""The bracelet network of Theorem 4.3.

Quoting Section 4.2: select two non-intersecting head sets
``A = {a_1, …, a_L}`` and ``B = {b_1, …, b_L}`` with ``L = √(n/2)``.
For each head, build a *band* — a ``G`` path of length ``L`` hanging
off the head. Connect one secret pair ``(a_t, b_t)`` in ``G`` (the
*clasp*). Connect the far endpoints of all bands into a ``G`` clique
(so ``G`` is connected). Finally, add ``G'`` edges between **every**
pair ``(a_i, b_j)``.

Totals: ``2 L`` bands of ``L`` nodes each, i.e. ``n = 2 L²`` nodes.

Why it defeats coordination: any information common to both sides must
either cross the secret clasp or travel down a band, through the
endpoint clique, and back up — ``Ω(L)`` rounds. Until then, the two
sides behave *independently*, so an oblivious adversary can pre-simulate
each band in isolation (Lemma 4.4's isolated broadcast functions),
predict how many heads will broadcast each round, and schedule the
cross ``G'`` edges so that informative receptions across the clasp are
as rare as winning the β-hitting game: ``Ω(√n / log n)`` rounds.

Node id layout (side ∈ {A=0, B=1}, band ``i ∈ [L]``, depth
``j ∈ [L]``, head is depth 0)::

    id = side * L² + i * L + j
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import GraphValidationError
from repro.graphs.dual_graph import DualGraph, Edge
from repro.registry import register_graph

__all__ = ["BraceletNetwork", "bracelet"]


@dataclass(frozen=True)
class BraceletNetwork:
    """A bracelet instance: the graph plus its secret clasp.

    ``clasp_index`` is the secret ``t``: the clasp joins head
    ``a_t`` = :meth:`head_a` ``(t)`` to head ``b_t`` = :meth:`head_b`
    ``(t)``. As with the dual clique, experiment code must hand
    algorithms only :attr:`graph`.
    """

    graph: DualGraph
    band_length: int
    clasp_index: int

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def num_bands_per_side(self) -> int:
        return self.band_length

    def head_a(self, i: int) -> int:
        """Node id of head ``a_{i+1}`` (0-indexed band ``i``)."""
        self._check_band(i)
        return i * self.band_length

    def head_b(self, i: int) -> int:
        """Node id of head ``b_{i+1}`` (0-indexed band ``i``)."""
        self._check_band(i)
        return self.band_length**2 + i * self.band_length

    def band_a(self, i: int) -> list[int]:
        """Node ids of side-A band ``i``, head first."""
        head = self.head_a(i)
        return list(range(head, head + self.band_length))

    def band_b(self, i: int) -> list[int]:
        """Node ids of side-B band ``i``, head first."""
        head = self.head_b(i)
        return list(range(head, head + self.band_length))

    def heads_a(self) -> list[int]:
        """All side-A heads (the paper's set ``A``)."""
        return [self.head_a(i) for i in range(self.band_length)]

    def heads_b(self) -> list[int]:
        """All side-B heads (the paper's set ``B``)."""
        return [self.head_b(i) for i in range(self.band_length)]

    @property
    def clasp(self) -> Edge:
        """The secret ``G`` edge ``(a_t, b_t)``."""
        return (self.head_a(self.clasp_index), self.head_b(self.clasp_index))

    def endpoints(self) -> list[int]:
        """Far endpoints of every band (the ``G`` clique members)."""
        last = self.band_length - 1
        return [self.head_a(i) + last for i in range(self.band_length)] + [
            self.head_b(i) + last for i in range(self.band_length)
        ]

    def head_index(self, node: int) -> Optional[tuple[str, int]]:
        """Classify ``node``: ``("A", i)`` / ``("B", i)`` if a head, else ``None``."""
        length = self.band_length
        side, rem = divmod(node, length**2)
        band, depth = divmod(rem, length)
        if depth != 0:
            return None
        return ("A" if side == 0 else "B", band)

    def _check_band(self, i: int) -> None:
        if not 0 <= i < self.band_length:
            raise GraphValidationError(
                f"band index {i} outside [0, {self.band_length})"
            )


def bracelet(
    band_length: int,
    *,
    clasp_index: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> BraceletNetwork:
    """Build a bracelet network with ``n = 2 * band_length²`` nodes.

    Parameters
    ----------
    band_length:
        The paper's ``L = √(n/2)``: both the number of bands per side
        and the length of each band.
    clasp_index:
        The secret band index ``t``; drawn uniformly via ``rng`` when
        omitted.
    rng:
        Randomness for the clasp draw (defaults to a fixed seed).
    """
    if band_length < 2:
        raise GraphValidationError("bracelet needs band_length >= 2")
    length = band_length
    rng = rng or random.Random(0xB2AC)
    t = clasp_index if clasp_index is not None else rng.randrange(length)
    if not 0 <= t < length:
        raise GraphValidationError(f"clasp_index={t} outside [0, {length})")

    n = 2 * length * length
    g_edges: list[Edge] = []

    def node(side: int, band: int, depth: int) -> int:
        return side * length * length + band * length + depth

    # Bands: G paths, head (depth 0) to endpoint (depth L-1).
    for side in (0, 1):
        for band in range(length):
            g_edges.extend(
                (node(side, band, d), node(side, band, d + 1)) for d in range(length - 1)
            )

    # Endpoint clique across all 2L bands keeps G connected.
    endpoints = [node(side, band, length - 1) for side in (0, 1) for band in range(length)]
    g_edges.extend(
        (endpoints[i], endpoints[j])
        for i in range(len(endpoints))
        for j in range(i + 1, len(endpoints))
    )

    # The secret clasp.
    clasp_edge = (node(0, t, 0), node(1, t, 0))
    g_edges.append(clasp_edge)

    # Flaky head-to-head complete bipartite layer (minus the clasp).
    extra: list[Edge] = [
        (node(0, i, 0), node(1, j, 0))
        for i in range(length)
        for j in range(length)
        if not (i == t and j == t)
    ]

    graph = DualGraph.from_edges(n, g_edges, extra, name=f"bracelet-L{length}")
    return BraceletNetwork(graph=graph, band_length=length, clasp_index=t)


@register_graph("bracelet")
def _spec_bracelet(
    ctx, *, band_length: int, clasp_index: Optional[int] = None
) -> BraceletNetwork:
    """Per-trial secret clasp from the ``"clasp"`` derivation stream
    (the label the E8 closures always used) unless pinned explicitly."""
    if clasp_index is not None:
        return bracelet(int(band_length), clasp_index=int(clasp_index))
    return bracelet(int(band_length), rng=ctx.rng("clasp"))
