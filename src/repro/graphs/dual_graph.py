"""The dual graph network type: ``G = (V, E)`` and ``G' = (V, E')`` with ``E ⊆ E'``.

Section 2 of the paper describes the network with two graphs over the
same vertex set: ``G`` holds the *reliable* links that participate in
every round's communication topology, while ``G' \\ G`` holds the
*unreliable* (here: "flaky") links that the adversarial link process
may add round by round. The model requires ``E ⊆ E'``; with ``G = G'``
it degenerates to the classic static protocol model.

:class:`DualGraph` is immutable and validated on construction. For the
engine's hot path it precomputes, per node ``u``:

* ``g_masks[u]`` — bitmask of ``u``'s neighbors in ``G``;
* ``gp_masks[u]`` — bitmask of ``u``'s neighbors in ``G'``;
* ``flaky_masks[u] = gp_masks[u] & ~g_masks[u]`` — the adversary's
  per-node room to maneuver.

Bitmasks make per-round reception resolution an ``O(n)`` loop of
word-parallel intersections, which is what lets pure-Python simulations
reach the network sizes the lower-bound sweeps need.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.errors import GraphValidationError
from repro.core.trace import iter_bits, popcount

__all__ = [
    "DualGraph",
    "Edge",
    "normalize_edge",
    "edges_from_adjacency",
    "masks_to_neighbor_matrix",
    "pack_mask_rows",
]


def masks_to_neighbor_matrix(masks: Sequence[int], n: int) -> np.ndarray:
    """Expand adjacency bitmasks into an ``n × n`` float64 0/1 matrix.

    Row ``u`` is the indicator vector of ``masks[u]``. The dtype is
    deliberate: the bitset engine resolves radio reception with two
    BLAS matvecs against this matrix (transmitting-neighbor *counts*
    and id-weighted sums), and float64 keeps both exact for every
    ``n`` this simulator can represent (values stay far below 2⁵³).

    The bit unpack runs at C speed: each mask serializes to
    little-endian bytes and ``np.unpackbits`` fans them out, so the
    conversion is O(n²/8) byte work rather than n² Python bit tests.
    """
    packed = _packed_adjacency(masks, n)
    bits = np.unpackbits(packed, axis=1, bitorder="little", count=n)
    return bits.astype(np.float64)

Edge = tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    if u == v:
        raise GraphValidationError(f"self-loop at node {u}")
    return (u, v) if u < v else (v, u)


def edges_from_adjacency(masks: Sequence[int]) -> set[Edge]:
    """Recover the canonical edge set from adjacency bitmasks."""
    edges: set[Edge] = set()
    for u, mask in enumerate(masks):
        for v in iter_bits(mask):
            if v > u:
                edges.add((u, v))
    return edges


#: Below this edge count the plain Python loop beats numpy's setup cost.
_VECTORIZE_EDGE_THRESHOLD = 1024


def _masks_from_edges(n: int, edges: Iterable[Edge]) -> list[int]:
    edge_list = edges if isinstance(edges, (list, tuple)) else list(edges)
    if len(edge_list) < _VECTORIZE_EDGE_THRESHOLD:
        masks = [0] * n
        for u, v in edge_list:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphValidationError(f"edge ({u}, {v}) outside node range [0, {n})")
            if u == v:
                raise GraphValidationError(f"self-loop at node {u}")
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        return masks
    # Dense families (cliques, funnels) carry Θ(n²) edges; set the bits
    # through packed byte rows at C speed instead of 2|E| big-int ops.
    flat = np.fromiter(
        (coord for edge in edge_list for coord in edge),
        dtype=np.int64,
        count=2 * len(edge_list),
    )
    us, vs = flat[0::2], flat[1::2]
    bad = (us < 0) | (us >= n) | (vs < 0) | (vs >= n)
    if bad.any():
        i = int(np.nonzero(bad)[0][0])
        raise GraphValidationError(
            f"edge ({int(us[i])}, {int(vs[i])}) outside node range [0, {n})"
        )
    loops = us == vs
    if loops.any():
        i = int(np.nonzero(loops)[0][0])
        raise GraphValidationError(f"self-loop at node {int(us[i])}")
    nbytes = (n + 7) // 8
    packed = np.zeros((n, nbytes), dtype=np.uint8)
    bit_v = np.left_shift(1, (vs & 7).astype(np.uint8)).astype(np.uint8)
    bit_u = np.left_shift(1, (us & 7).astype(np.uint8)).astype(np.uint8)
    np.bitwise_or.at(packed, (us, vs >> 3), bit_v)
    np.bitwise_or.at(packed, (vs, us >> 3), bit_u)
    return [int.from_bytes(packed[u].tobytes(), "little") for u in range(n)]


def _packed_adjacency(masks: Sequence[int], n: int) -> np.ndarray:
    """Masks as an ``(n, ⌈n/8⌉)`` little-endian packed byte matrix."""
    nbytes = (n + 7) // 8
    buffer = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    return np.frombuffer(buffer, dtype=np.uint8).reshape(len(masks), nbytes)


def _first_asymmetric_edge(packed: np.ndarray, n: int) -> Optional[tuple[int, int]]:
    """Lexicographically smallest ``(u, v)`` with ``v ∈ N(u)`` but ``u ∉ N(v)``.

    Works on the packed byte matrix without unpacking it: only bytes
    that actually carry edge bits (≤ 2|E| of them) are expanded, so the
    symmetry check is O(n²/8) scan plus O(E log E) set membership
    instead of O(E) big-int shifts.
    """
    rows, cols = np.nonzero(packed)
    if rows.size == 0:
        return None
    vals = packed[rows, cols]
    parts_u: list[np.ndarray] = []
    parts_v: list[np.ndarray] = []
    for bit in range(8):
        hit = ((vals >> np.uint8(bit)) & np.uint8(1)).astype(bool)
        if hit.any():
            parts_u.append(rows[hit])
            parts_v.append((cols[hit] << 3) + bit)
    u = np.concatenate(parts_u)
    v = np.concatenate(parts_v)
    forward = u * np.int64(n) + v
    reverse = v * np.int64(n) + u
    missing = ~np.isin(reverse, forward, assume_unique=True)
    if not missing.any():
        return None
    worst = int(forward[missing].min())
    return worst // n, worst % n


def pack_mask_rows(masks: Sequence[int], n: int) -> np.ndarray:
    """Bitmasks as a read-only ``(len(masks), ⌈n/64⌉)`` uint64 word matrix.

    This is the engines' shared word form: the bitset engine's packed
    reception resolver and the bank scheduler both consume it, and
    static/cyclic adversaries publish their whole mask schedule through
    it once per run instead of letting every engine lane re-pack the
    same big-int tuples round after round. Single-word graphs take the
    direct ``np.array`` route; wider graphs serialize through
    little-endian bytes so each row's words are ``mask``'s 64-bit limbs
    in ascending order. The result is frozen — it is shared between
    engine lanes.
    """
    words = (n + 63) // 64
    if words == 1:
        rows = np.array(masks, dtype=np.uint64).reshape(len(masks), 1)
        rows.flags.writeable = False
        return rows
    buffer = b"".join(mask.to_bytes(words * 8, "little") for mask in masks)
    return np.frombuffer(buffer, dtype=np.uint64).reshape(len(masks), words)


@dataclass(frozen=True)
class DualGraph:
    """An immutable dual graph with precomputed adjacency bitmasks.

    Build instances with :meth:`from_edges` (preferred) or supply masks
    directly. The constructor validates symmetry implicitly (masks are
    built from undirected edges) and checks ``E ⊆ E'``.

    Attributes
    ----------
    n:
        Number of nodes; node ids are ``0 … n-1``.
    g_masks / gp_masks:
        Per-node adjacency bitmasks of ``G`` and ``G'``.
    embedding:
        Optional plane embedding ``(x, y)`` per node — present for
        geographic graphs (Section 2's geographic constraint).
    name:
        Human-readable label used by traces and experiment tables.
    """

    n: int
    g_masks: tuple[int, ...]
    gp_masks: tuple[int, ...]
    embedding: Optional[tuple[tuple[float, float], ...]] = None
    name: str = "dual-graph"
    #: Set ``validate=False`` only when the structural invariants
    #: (symmetry, no self-loops, E ⊆ E', masks within range) hold *by
    #: construction* — :meth:`from_edges` sets both directions of every
    #: edge and builds ``G'`` as a superset of ``G``, so re-deriving
    #: those facts from the finished masks is pure overhead at large n.
    #: Externally supplied masks must keep the default.
    validate: InitVar[bool] = True
    _flaky_masks: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self, validate: bool) -> None:
        if self.n < 1:
            raise GraphValidationError(f"need at least one node, got n={self.n}")
        if len(self.g_masks) != self.n or len(self.gp_masks) != self.n:
            raise GraphValidationError("adjacency mask lists must have length n")
        if validate:
            for u in range(self.n):
                # Range stays a per-node int check (bit_length is O(1),
                # unlike shifting an n-bit mask): negative or oversized
                # masks cannot even be packed into n-bit byte rows below.
                g, gp = self.g_masks[u], self.gp_masks[u]
                if g < 0 or gp < 0 or g.bit_length() > self.n or gp.bit_length() > self.n:
                    raise GraphValidationError(f"node {u} has neighbors outside [0, n)")
            # Structural checks: sparse graphs (rings, lines, geometric
            # families at large n) validate on packed byte rows without
            # ever unpacking them, dense families (cliques, funnels) on
            # the full unpacked bit matrix — materializing n × n bits
            # for a 2-regular ring costs more than the simulation at
            # n = 10⁴.
            total_bits = sum(m.bit_count() for m in self.g_masks) + sum(
                m.bit_count() for m in self.gp_masks
            )
            if total_bits * 16 < self.n * self.n:
                self._validate_sparse()
            else:
                self._validate_dense()
        if self.embedding is not None and len(self.embedding) != self.n:
            raise GraphValidationError("embedding must give one point per node")
        flaky = tuple(self.gp_masks[u] & ~self.g_masks[u] for u in range(self.n))
        object.__setattr__(self, "_flaky_masks", flaky)

    def _validate_sparse(self) -> None:
        """Structural checks on packed byte rows, mirroring :meth:`_validate_dense`.

        Unlike the dense path this never materializes the n × n bit
        matrix: subset and self-loop checks scan the ⌈n/8⌉-byte rows
        directly, and symmetry expands only the bytes that carry edge
        bits. Error selection order matches the dense path exactly:
        lowest offending node first (self-loop preferred over subset
        violation on ties), then ``G`` asymmetry before ``G'``
        asymmetry, lowest ``(u, v)`` first.
        """
        g_packed = _packed_adjacency(self.g_masks, self.n)
        gp_packed = _packed_adjacency(self.gp_masks, self.n)
        diagonal = np.arange(self.n)
        diag_bytes = g_packed[diagonal, diagonal >> 3] | gp_packed[diagonal, diagonal >> 3]
        loops = (diag_bytes >> (diagonal & 7).astype(np.uint8)) & np.uint8(1)
        subset_rows = (g_packed & ~gp_packed).any(axis=1)
        if loops.any() or subset_rows.any():
            loop_u = int(np.argmax(loops)) if loops.any() else self.n
            subset_u = int(np.argmax(subset_rows)) if subset_rows.any() else self.n
            if loop_u <= subset_u:
                raise GraphValidationError(f"self-loop at node {loop_u}")
            raise GraphValidationError(
                f"node {subset_u} has G edges missing from G' (E ⊆ E' violated)"
            )
        for packed, label in ((g_packed, "G"), (gp_packed, "G'")):
            pair = _first_asymmetric_edge(packed, self.n)
            if pair is not None:
                raise GraphValidationError(
                    f"{label} edge ({pair[0]}, {pair[1]}) is asymmetric"
                )

    def _validate_dense(self) -> None:
        g_packed = _packed_adjacency(self.g_masks, self.n)
        gp_packed = _packed_adjacency(self.gp_masks, self.n)
        g_bits = np.unpackbits(g_packed, axis=1, bitorder="little", count=self.n)
        gp_bits = np.unpackbits(gp_packed, axis=1, bitorder="little", count=self.n)
        diagonal = np.arange(self.n)
        loops = g_bits[diagonal, diagonal] | gp_bits[diagonal, diagonal]
        subset_rows = (g_bits > gp_bits).any(axis=1)
        if loops.any() or subset_rows.any():
            loop_u = int(np.argmax(loops)) if loops.any() else self.n
            subset_u = int(np.argmax(subset_rows)) if subset_rows.any() else self.n
            # Report the lowest offending node, self-loop first on ties
            # (the order the old per-node scan raised in).
            if loop_u <= subset_u:
                raise GraphValidationError(f"self-loop at node {loop_u}")
            raise GraphValidationError(
                f"node {subset_u} has G edges missing from G' (E ⊆ E' violated)"
            )
        asym_g = g_bits & (1 - g_bits.T)
        if asym_g.any():
            u, v = (int(x) for x in np.argwhere(asym_g)[0])
            raise GraphValidationError(f"G edge ({u}, {v}) is asymmetric")
        asym_gp = gp_bits & (1 - gp_bits.T)
        if asym_gp.any():
            u, v = (int(x) for x in np.argwhere(asym_gp)[0])
            raise GraphValidationError(f"G' edge ({u}, {v}) is asymmetric")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        g_edges: Iterable[Edge],
        extra_gp_edges: Iterable[Edge] = (),
        *,
        embedding: Optional[Sequence[tuple[float, float]]] = None,
        name: str = "dual-graph",
    ) -> "DualGraph":
        """Build from ``G``'s edges plus the *extra* edges of ``G' \\ G``.

        ``extra_gp_edges`` lists only the unreliable edges; ``G'`` is
        their union with ``G``, so ``E ⊆ E'`` holds by construction.
        Structural re-validation is skipped for the same reason:
        :func:`normalize_edge` rejects self-loops, :func:`_masks_from_edges`
        range-checks endpoints and sets both directions of every edge,
        and the superset union gives ``E ⊆ E'`` — nothing is left for
        ``__post_init__`` to find.
        """
        g_edge_set = {normalize_edge(u, v) for u, v in g_edges}
        extra_set = {normalize_edge(u, v) for u, v in extra_gp_edges} - g_edge_set
        g_masks = _masks_from_edges(n, g_edge_set)
        gp_masks = _masks_from_edges(n, g_edge_set | extra_set)
        return cls(
            n=n,
            g_masks=tuple(g_masks),
            gp_masks=tuple(gp_masks),
            embedding=tuple((float(x), float(y)) for x, y in embedding) if embedding else None,
            name=name,
            validate=False,
        )

    @classmethod
    def static(
        cls,
        n: int,
        g_edges: Iterable[Edge],
        *,
        embedding: Optional[Sequence[tuple[float, float]]] = None,
        name: str = "static-graph",
    ) -> "DualGraph":
        """Build a protocol-model graph (``G = G'``, no unreliable links)."""
        return cls.from_edges(n, g_edges, (), embedding=embedding, name=name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def flaky_masks(self) -> tuple[int, ...]:
        """Per-node masks of the unreliable neighbors (``G' \\ G``)."""
        return self._flaky_masks

    def neighbor_matrix(self, *, use_gp: bool = False) -> np.ndarray:
        """The adjacency of ``G`` (or ``G'``) as a dense 0/1 float matrix.

        Built lazily and cached on the instance — the two static
        patterns ``G``-only and full-``G'`` are by far the most common
        round topologies (every static/oblivious adversary returns one
        of them most rounds), so the bitset engine seeds its per-
        topology matrix cache from here. Treat the result as read-only;
        it is shared between callers.
        """
        cache = getattr(self, "_matrix_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_matrix_cache", cache)
        key = "gp" if use_gp else "g"
        matrix = cache.get(key)
        if matrix is None:
            masks = self.gp_masks if use_gp else self.g_masks
            matrix = masks_to_neighbor_matrix(masks, self.n)
            cache[key] = matrix
        return matrix

    def word_masks(self) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """``(g_masks, flaky_masks)`` as uint64 arrays, or ``None``.

        Only graphs whose masks fit one machine word (``n <= 64``) have
        a word form; callers fall back to the Python bigint loops
        otherwise. Built lazily and cached on the instance, like
        :meth:`neighbor_matrix`. Treat the arrays as read-only.
        """
        if self.n > 64:
            return None
        arrays = getattr(self, "_word_mask_cache", None)
        if arrays is None:
            arrays = (
                np.array(self.g_masks, dtype=np.uint64),
                np.array(self.flaky_masks, dtype=np.uint64),
            )
            object.__setattr__(self, "_word_mask_cache", arrays)
        return arrays

    def packed_mask_rows(self, *, use_gp: bool = False) -> np.ndarray:
        """``g_masks`` (or ``gp_masks``) through :func:`pack_mask_rows`, cached.

        The two static round topologies — reliable-only and full-``G'``
        — are rebuilt per trial by the stock adversaries, but their
        word form depends only on the graph, which sweeps share across
        trials via the registry cache. Caching the packed rows here
        means a sweep packs each pattern once instead of once per
        trial. The rows are frozen; treat them as read-only.
        """
        cache = getattr(self, "_packed_rows_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_packed_rows_cache", cache)
        key = "gp" if use_gp else "g"
        rows = cache.get(key)
        if rows is None:
            masks = self.gp_masks if use_gp else self.g_masks
            rows = pack_mask_rows(masks, self.n)
            cache[key] = rows
        return rows

    def g_neighbors(self, u: int) -> list[int]:
        """Neighbors of ``u`` in the reliable graph ``G``."""
        return list(iter_bits(self.g_masks[u]))

    def gp_neighbors(self, u: int) -> list[int]:
        """Neighbors of ``u`` in ``G'`` (the paper's ``N_{G'}(u)``)."""
        return list(iter_bits(self.gp_masks[u]))

    def flaky_neighbors(self, u: int) -> list[int]:
        """Neighbors reachable only through unreliable links."""
        return list(iter_bits(self._flaky_masks[u]))

    def g_degree(self, u: int) -> int:
        return popcount(self.g_masks[u])

    def gp_degree(self, u: int) -> int:
        return popcount(self.gp_masks[u])

    @property
    def max_degree(self) -> int:
        """The paper's ``Δ = max |N_{G'}(u)|`` (known to processes).

        Memoized on the instance: every trial setup asks for it (the
        processes are entitled to know Δ), and the n popcounts are not
        free at sweep scale.
        """
        cached = getattr(self, "_max_degree_cache", None)
        if cached is None:
            cached = max(popcount(mask) for mask in self.gp_masks)
            object.__setattr__(self, "_max_degree_cache", cached)
        return cached

    def g_edges(self) -> set[Edge]:
        """Canonical edge set of ``G``."""
        return edges_from_adjacency(self.g_masks)

    def gp_edges(self) -> set[Edge]:
        """Canonical edge set of ``G'``."""
        return edges_from_adjacency(self.gp_masks)

    def flaky_edges(self) -> set[Edge]:
        """Canonical edge set of ``G' \\ G``."""
        return edges_from_adjacency(self._flaky_masks)

    def has_g_edge(self, u: int, v: int) -> bool:
        return bool((self.g_masks[u] >> v) & 1)

    def has_gp_edge(self, u: int, v: int) -> bool:
        return bool((self.gp_masks[u] >> v) & 1)

    # ------------------------------------------------------------------
    # Graph algorithms (on G — the problems assume G connected)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, *, use_gp: bool = False) -> list[int]:
        """Hop distances from ``source``; ``-1`` marks unreachable nodes."""
        masks = self.gp_masks if use_gp else self.g_masks
        dist = [-1] * self.n
        dist[source] = 0
        frontier = 1 << source
        seen = frontier
        depth = 0
        while frontier:
            depth += 1
            next_frontier = 0
            for u in iter_bits(frontier):
                next_frontier |= masks[u]
            next_frontier &= ~seen
            seen |= next_frontier
            for u in iter_bits(next_frontier):
                dist[u] = depth
            frontier = next_frontier
        return dist

    def is_g_connected(self) -> bool:
        """True iff the reliable graph ``G`` is connected.

        Memoized on the instance: the graph is immutable, and problem
        constructors re-check connectivity once per trial while sweeps
        share one registry-cached graph across every trial and series —
        without the memo the BFS dominates trial setup at large ``n``.
        """
        cached = getattr(self, "_g_connected_cache", None)
        if cached is None:
            cached = all(d >= 0 for d in self.bfs_distances(0))
            object.__setattr__(self, "_g_connected_cache", cached)
        return cached

    def g_diameter(self) -> int:
        """Diameter of ``G`` (the paper's ``D``). Exact via all-sources BFS.

        Quadratic in ``n``; fine for experiment-scale graphs. Raises if
        ``G`` is disconnected.
        """
        best = 0
        for source in range(self.n):
            dist = self.bfs_distances(source)
            ecc = max(dist)
            if min(dist) < 0:
                raise GraphValidationError("g_diameter() requires a connected G")
            best = max(best, ecc)
        return best

    def g_eccentricity(self, source: int) -> int:
        """Max hop distance from ``source`` in ``G`` (broadcast depth)."""
        dist = self.bfs_distances(source)
        if min(dist) < 0:
            raise GraphValidationError("g_eccentricity() requires a connected G")
        return max(dist)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Sequence[int], *, name: Optional[str] = None) -> "DualGraph":
        """Induced dual subgraph on ``nodes`` with ids remapped to ``0 … k-1``.

        Used by the lower-bound machinery to simulate a band of the
        bracelet network in isolation. The returned graph keeps only
        edges with both endpoints inside ``nodes``.
        """
        index = {node: i for i, node in enumerate(nodes)}
        if len(index) != len(nodes):
            raise GraphValidationError("induced_subgraph nodes must be distinct")
        k = len(nodes)
        g_masks = [0] * k
        gp_masks = [0] * k
        for node, i in index.items():
            for v in iter_bits(self.g_masks[node]):
                j = index.get(v)
                if j is not None:
                    g_masks[i] |= 1 << j
            for v in iter_bits(self.gp_masks[node]):
                j = index.get(v)
                if j is not None:
                    gp_masks[i] |= 1 << j
        emb = None
        if self.embedding is not None:
            emb = tuple(self.embedding[node] for node in nodes)
        # An induced subgraph of a valid dual graph is valid: symmetry,
        # loop-freedom, and E ⊆ E' all restrict to the node subset.
        return DualGraph(
            n=k,
            g_masks=tuple(g_masks),
            gp_masks=tuple(gp_masks),
            embedding=emb,
            name=name or f"{self.name}[induced {k}]",
            validate=False,
        )

    def as_static(self, *, use_gp: bool = False, name: Optional[str] = None) -> "DualGraph":
        """Collapse to a protocol-model graph: ``G = G'`` on ``G`` (or on ``G'``)."""
        masks = self.gp_masks if use_gp else self.g_masks
        return DualGraph(
            n=self.n,
            g_masks=masks,
            gp_masks=masks,
            embedding=self.embedding,
            name=name or f"{self.name}[static]",
            validate=False,
        )

    def to_networkx(self):  # pragma: no cover - optional dependency convenience
        """Export ``(G, G')`` as a pair of ``networkx.Graph`` objects."""
        import networkx as nx

        g = nx.Graph(name=f"{self.name}:G")
        gp = nx.Graph(name=f"{self.name}:G'")
        g.add_nodes_from(range(self.n))
        gp.add_nodes_from(range(self.n))
        g.add_edges_from(self.g_edges())
        gp.add_edges_from(self.gp_edges())
        return g, gp

    def summary(self) -> str:
        """One-line description for logs and tables."""
        return (
            f"{self.name}: n={self.n}, |E|={len(self.g_edges())}, "
            f"|E'\\E|={len(self.flaky_edges())}, Δ={self.max_degree}"
        )
