"""Reproduction of Ghaffari, Lynch, Newport (PODC 2013):
*The Cost of Radio Network Broadcast for Different Models of Unreliable Links.*

A dual-graph radio network simulator plus every algorithm, adversary,
lower-bound construction, and experiment the paper defines. See
README.md for the user guide, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured record.

Quickstart (the declarative :mod:`repro.api` facade)::

    from repro.api import ScenarioSpec, Simulation

    spec = ScenarioSpec(
        graph=("geographic", {"n": 128, "grey_ratio": 1.6}),
        problem=("global-broadcast", {"source": 0}),
        algorithm=("permuted-decay", {}),
        adversary=("ge-fade", {"p_fail": 0.2, "p_recover": 0.4}),
    )
    result = Simulation.from_spec(spec).run_trial(seed=7)
    print(result.rounds_to_solve())

Specs serialize to JSON (``spec.to_json()``), run from the CLI
(``repro run-spec spec.json``), and fan out across cores
(``executor=repro.api.ParallelExecutor()``). The lower-level building
blocks — :mod:`repro.graphs`, :mod:`repro.algorithms`,
:mod:`repro.adversaries`, :mod:`repro.analysis` — remain public for
imperative use.
"""

from repro.core import (
    ENGINE_NAMES,
    BitCursor,
    BitsetRadioNetworkEngine,
    BitStream,
    ExecutionResult,
    Message,
    MessageKind,
    Process,
    ProcessContext,
    RadioNetworkEngine,
    RoundPlan,
    create_engine,
)

__version__ = "1.0.0"

__all__ = [
    "BitCursor",
    "BitStream",
    "BitsetRadioNetworkEngine",
    "ENGINE_NAMES",
    "ExecutionResult",
    "Message",
    "MessageKind",
    "Process",
    "ProcessContext",
    "RadioNetworkEngine",
    "RoundPlan",
    "create_engine",
    "__version__",
]
