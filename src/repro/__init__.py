"""Reproduction of Ghaffari, Lynch, Newport (PODC 2013):
*The Cost of Radio Network Broadcast for Different Models of Unreliable Links.*

A dual-graph radio network simulator plus every algorithm, adversary,
lower-bound construction, and experiment the paper defines. See
DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    from repro.graphs import random_geographic
    from repro.algorithms import make_oblivious_global_broadcast
    from repro.adversaries import GilbertElliottNodeFade
    from repro.analysis import run_broadcast_trial

    network = random_geographic(n=128, grey_ratio=1.6, seed=7)
    spec = make_oblivious_global_broadcast(network, source=0)
    result = run_broadcast_trial(
        network=network,
        algorithm=spec,
        link_process=GilbertElliottNodeFade(p_fail=0.2, p_recover=0.4),
        seed=7,
    )
    print(result.rounds_to_solve())
"""

from repro.core import (
    BitCursor,
    BitStream,
    ExecutionResult,
    Message,
    MessageKind,
    Process,
    ProcessContext,
    RadioNetworkEngine,
    RoundPlan,
)

__version__ = "1.0.0"

__all__ = [
    "BitCursor",
    "BitStream",
    "ExecutionResult",
    "Message",
    "MessageKind",
    "Process",
    "ProcessContext",
    "RadioNetworkEngine",
    "RoundPlan",
    "__version__",
]
