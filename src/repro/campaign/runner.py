"""The sharded campaign runner: fan out, checkpoint, resume.

:class:`CampaignRunner` walks a spec's compiled shard list, runs each
pending shard through :meth:`repro.experiments.registry.Experiment.run`
(optionally over a :class:`~repro.api.executor.TrialExecutor`, so a
single shard's trials fan out across cores), and checkpoints every
completed shard into the :class:`~repro.campaign.store.ResultStore`
before moving on.

The resume contract: a campaign killed at any point — between shards,
mid-shard, even mid-checkpoint-write — re-invoked with the same spec
and store, skips exactly the shards whose records survived and re-runs
the rest. Because each shard is a pure function of its key and the
store's determinism surface excludes wall-clock metadata, the final
:meth:`~repro.campaign.store.ResultStore.aggregates_json` is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import platform
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.campaign.spec import CampaignSpec, Shard
from repro.campaign.store import SCHEMA_VERSION, ResultStore
from repro.core.errors import EngineFallbackWarning
from repro.obs.recorder import recorder as _obs_recorder

__all__ = ["CampaignRunner", "CampaignStatus", "ShardOutcome", "shard_record"]


def shard_record(
    shard: Shard,
    aggregate: dict,
    *,
    seconds: float,
    fallbacks: Sequence[str] = (),
    obs_counters: Optional[dict] = None,
) -> dict:
    """Assemble the JSONL checkpoint record for one finished shard.

    ``aggregate`` (from
    :meth:`~repro.experiments.registry.ExperimentResult.to_record`) is
    the seed-determined payload; everything volatile lives under
    ``meta`` and is excluded from the byte-identity surface. That is
    where the observability data goes too: ``fallbacks`` (the deduped
    :class:`~repro.core.errors.EngineFallbackWarning` texts the shard
    raised) and ``obs_counters`` (the shard's slice of the active trace
    recorder's counters — ``phase.*`` nanoseconds plus semantic
    counts) are timing/diagnostic facts about *this* execution, never
    part of the seed-determined surface.

    ``spec_hash`` (:meth:`Shard.spec_hash`, deterministic, so it stays
    inside the byte-identity surface) is what lets
    :meth:`~repro.campaign.store.ResultStore.find` dedup this cell for
    later submissions — including ones arriving through the serve API
    under a different campaign name.
    """
    meta: dict = {
        "seconds": round(seconds, 6),
        "python": platform.python_version(),
    }
    if fallbacks:
        meta["fallbacks"] = list(fallbacks)
    if obs_counters:
        meta["obs"] = dict(obs_counters)
    return {
        "schema": SCHEMA_VERSION,
        "kind": "shard",
        "campaign": shard.campaign,
        "shard_id": shard.shard_id,
        "experiment": shard.experiment,
        "scale": shard.scale,
        "engine": shard.engine,
        "master_seed": shard.master_seed,
        "spec_hash": shard.spec_hash(),
        "aggregate": aggregate,
        "meta": meta,
    }


@dataclass(frozen=True)
class ShardOutcome:
    """What happened to one shard during a ``run()`` pass."""

    shard: Shard
    status: str  # "done" | "resumed"
    seconds: float

    @property
    def ran(self) -> bool:
        return self.status == "done"


@dataclass(frozen=True)
class CampaignStatus:
    """Progress of a campaign against its spec's shard list.

    ``fallbacks_by_id`` carries each completed shard's recorded
    :class:`~repro.core.errors.EngineFallbackWarning` texts (from the
    checkpoint records' ``meta`` side), so ``campaign status --json``
    surfaces silent per-trial engine fallbacks without re-running
    anything.
    """

    spec: CampaignSpec
    completed: tuple[Shard, ...]
    pending: tuple[Shard, ...]
    fallbacks_by_id: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.pending)

    @property
    def finished(self) -> bool:
        return not self.pending

    def summary(self) -> str:
        return (
            f"{self.spec.name}: {len(self.completed)}/{self.total} shards "
            f"complete" + ("" if self.pending else " — campaign finished")
        )

    def to_payload(self) -> dict:
        """Machine-readable status: the ``campaign status --json`` shape.

        The contract mirrors ``repro components --json``: one stable
        JSON document tooling can consume instead of scraping tables.
        ``repro jobs`` renders the serve API's per-job shard summaries,
        which use the same ``total``/``completed``/``pending`` counters
        this payload carries; per-shard rows include the
        :meth:`~repro.campaign.spec.Shard.spec_hash` dedup key.
        """
        done_ids = {shard.shard_id for shard in self.completed}
        return {
            "campaign": self.spec.name,
            "total": self.total,
            "completed": len(self.completed),
            "pending": len(self.pending),
            "finished": self.finished,
            "shards": [
                {
                    **shard.to_dict(),
                    "shard_id": shard.shard_id,
                    "spec_hash": shard.spec_hash(),
                    "state": "done" if shard.shard_id in done_ids else "pending",
                    "fallbacks": list(
                        self.fallbacks_by_id.get(shard.shard_id, ())
                    ),
                }
                for shard in self.spec.shards()
            ],
        }


class CampaignRunner:
    """Run a campaign spec against a result store, resumably.

    Parameters
    ----------
    spec:
        The campaign grid. Validated against the live registries before
        the first shard runs.
    store:
        Checkpoint target; pass the same store to resume.
    executor:
        Optional :class:`~repro.api.executor.TrialExecutor` handed down
        to every shard's :meth:`Experiment.run` — a
        :class:`~repro.api.ParallelExecutor` fans each shard's trials
        across cores without changing any result.
    progress:
        Optional ``callback(shard, status, seconds)`` fired per shard:
        ``status`` is ``"start"``, ``"done"``, or ``"resumed"``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        *,
        executor=None,
        progress: Optional[Callable[[Shard, str, float], None]] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.executor = executor
        self.progress = progress

    def status(self) -> CampaignStatus:
        """Split the spec's shard list into completed vs pending.

        Validates the spec first — a typo'd experiment id must be an
        error here, not a forever-"pending" shard.
        """
        self.spec.validate()
        done_ids = self.store.completed_ids(self.spec.name)
        completed, pending = [], []
        for shard in self.spec.shards():
            (completed if shard.shard_id in done_ids else pending).append(shard)
        fallbacks_by_id = {
            record["shard_id"]: record["meta"]["fallbacks"]
            for record in self.store.shard_records(self.spec.name)
            if record.get("meta", {}).get("fallbacks")
        }
        return CampaignStatus(
            spec=self.spec,
            completed=tuple(completed),
            pending=tuple(pending),
            fallbacks_by_id=fallbacks_by_id,
        )

    def reset(self) -> None:
        """Drop the campaign's checkpoints (the ``--fresh`` semantics)."""
        path = self.store.shard_path(self.spec.name)
        if path.exists():
            path.unlink()

    def run(self, *, resume: bool = True) -> list[ShardOutcome]:
        """Run every pending shard, checkpointing each as it completes.

        With ``resume=False`` existing checkpoints are discarded first.
        Returns one :class:`ShardOutcome` per shard in grid order.
        """
        from repro.experiments import ALL_EXPERIMENTS

        self.spec.validate()
        if not resume:
            self.reset()
        done_ids = self.store.completed_ids(self.spec.name)
        outcomes: list[ShardOutcome] = []
        for shard in self.spec.shards():
            if shard.shard_id in done_ids:
                outcomes.append(ShardOutcome(shard, "resumed", 0.0))
                if self.progress is not None:
                    self.progress(shard, "resumed", 0.0)
                continue
            if self.progress is not None:
                self.progress(shard, "start", 0.0)
            started = time.perf_counter()
            rec = _obs_recorder()
            mark = rec.checkpoint() if rec is not None else None
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = ALL_EXPERIMENTS[shard.experiment].run(
                    scale=shard.scale,
                    master_seed=shard.master_seed,
                    executor=self.executor,
                    engine=shard.engine,
                    skip=self.spec.skip,
                )
            seconds = time.perf_counter() - started
            # Fallback warnings become shard metadata (deduped, in
            # first-seen order); everything else is re-emitted so the
            # recording context stays invisible to other consumers.
            fallbacks: list[str] = []
            for caught_warning in caught:
                if issubclass(caught_warning.category, EngineFallbackWarning):
                    text = str(caught_warning.message)
                    if text not in fallbacks:
                        fallbacks.append(text)
                else:
                    warnings.warn_explicit(
                        caught_warning.message,
                        caught_warning.category,
                        caught_warning.filename,
                        caught_warning.lineno,
                    )
            obs_counters = rec.delta(mark) if rec is not None else None
            if rec is not None:
                rec.emit(
                    {
                        "kind": "shard",
                        "shard_id": shard.shard_id,
                        "seconds": round(seconds, 6),
                        "phases": {
                            name[len("phase."):]: value
                            for name, value in obs_counters.items()
                            if name.startswith("phase.")
                        },
                        "counters": {
                            name: value
                            for name, value in obs_counters.items()
                            if not name.startswith("phase.")
                        },
                    }
                )
            self.store.append(
                shard_record(
                    shard,
                    result.to_record(),
                    seconds=seconds,
                    fallbacks=fallbacks,
                    obs_counters=obs_counters,
                )
            )
            outcomes.append(ShardOutcome(shard, "done", seconds))
            if self.progress is not None:
                self.progress(shard, "done", seconds)
        return outcomes
