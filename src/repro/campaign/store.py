"""The persistent result store: shard checkpoints + bench history.

One directory holds everything a campaign ever measured:

* ``<name>.jsonl`` — one file per campaign, one JSON record per
  *completed* shard. This is the checkpoint: records are appended
  (write + flush + fsync) only after a shard finishes, so a campaign
  killed mid-shard simply lacks that shard's line and re-runs it on
  resume. A line truncated by a hard kill is skipped on read.
* the benchmark artifacts (``BENCH_<exp>_<scale>_<engine>.json``,
  written by ``benchmarks/_common.py``) are merged in read-only as
  ``kind: "bench"`` records, so one store answers both "what did we
  measure?" and "how fast was it?".

Shard records split into a seed-determined ``aggregate`` (the
:meth:`~repro.experiments.registry.ExperimentResult.to_record` payload)
and a volatile ``meta`` (wall-clock seconds, python version).
:meth:`ResultStore.aggregates_json` serializes only the former, which
is why a killed-and-resumed campaign can be asserted *byte-identical*
to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.campaign.spec import Shard
from repro.core.errors import ReproError

__all__ = ["ResultStore", "StoreError", "StoreCompatWarning", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

#: Keys every shard record must carry to be checkpoint-usable.
_REQUIRED_SHARD_KEYS = (
    "schema",
    "kind",
    "campaign",
    "shard_id",
    "experiment",
    "scale",
    "engine",
    "master_seed",
    "aggregate",
    "meta",
)


class StoreError(ReproError):
    """A result store directory or record is unusable."""


class StoreCompatWarning(RuntimeWarning):
    """The store skipped records it does not understand.

    Emitted (once per merge) when a checkpoint file contains records
    with an unknown ``schema`` version or ``kind`` — e.g. a store
    written by a newer release introducing a new record kind. Skipping
    keeps the merge usable for every record this release *does*
    understand instead of failing the whole read; the skipped shards
    simply count as not-yet-measured (and re-run on resume).
    """


class ResultStore:
    """Append-only store of campaign shard records, merged with benches.

    Parameters
    ----------
    root:
        Directory for the per-campaign ``*.jsonl`` checkpoint files
        (created on first write).
    bench_dir:
        Directory of ``BENCH_*.json`` artifacts to merge into the
        history; defaults to the repository's ``benchmarks/results``
        when that exists relative to the current working directory.
        Pass ``None`` explicitly via ``bench_dir=""`` to disable.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        bench_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.root = Path(root)
        #: Lazy ``spec_hash -> [records]`` index behind :meth:`find`;
        #: built on first lookup, dropped by :meth:`append` (and by
        #: :meth:`~ResultStore.invalidate` for out-of-process writers).
        self._spec_index: Optional[dict[str, list[dict]]] = None
        if bench_dir is None:
            default = Path("benchmarks") / "results"
            self.bench_dir: Optional[Path] = default if default.is_dir() else None
        elif str(bench_dir) == "":
            self.bench_dir = None
        else:
            self.bench_dir = Path(bench_dir)

    # ------------------------------------------------------------------
    # Shard checkpoints
    # ------------------------------------------------------------------
    def shard_path(self, campaign: str) -> Path:
        return self.root / f"{campaign}.jsonl"

    def append(self, record: dict) -> None:
        """Checkpoint one completed shard (atomic at line granularity).

        The line is flushed and fsynced before returning: once
        ``append`` returns, a later resume *will* see the shard as done
        even across a hard kill.
        """
        missing = [key for key in _REQUIRED_SHARD_KEYS if key not in record]
        if missing:
            raise StoreError(f"shard record is missing keys {missing}")
        if record["kind"] != "shard":
            raise StoreError(f"expected kind 'shard', got {record['kind']!r}")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(record["campaign"])
        line = json.dumps(record, sort_keys=True) + "\n"
        # Self-heal after a hard kill: if the previous write was cut off
        # mid-line (no trailing newline), terminate the fragment first so
        # this record does not merge into it and get skipped on read.
        if path.exists() and path.stat().st_size > 0:
            with open(path, "rb") as peek:
                peek.seek(-1, os.SEEK_END)
                if peek.read(1) != b"\n":
                    line = "\n" + line
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self._spec_index = None

    def _iter_lines(self, path: Path) -> Iterator[dict]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A hard kill can truncate the final line mid-write;
                # the shard it described simply re-runs on resume.
                continue
            if isinstance(record, dict):
                yield record

    def campaigns(self) -> list[str]:
        """Campaign names with a checkpoint file, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.jsonl"))

    def shard_records(self, campaign: Optional[str] = None) -> list[dict]:
        """All shard records (optionally of one campaign), replay order.

        If a shard id was recorded twice (e.g. ``--fresh`` semantics
        implemented by re-running), the *last* record wins.

        Forward compatibility: records with an unknown ``schema``
        version or ``kind``, or missing required shard keys, are
        skipped — with a single :class:`StoreCompatWarning` per merge —
        so a store touched by a newer release stays readable for
        everything this release understands.
        """
        names = [campaign] if campaign is not None else self.campaigns()
        merged: dict[tuple[str, str], dict] = {}
        skipped = 0
        for name in names:
            for record in self._iter_lines(self.shard_path(name)):
                if (
                    record.get("kind") != "shard"
                    or record.get("schema") != SCHEMA_VERSION
                    or any(key not in record for key in _REQUIRED_SHARD_KEYS)
                ):
                    skipped += 1
                    continue
                key = (str(record.get("campaign")), str(record.get("shard_id")))
                merged[key] = record
        if skipped:
            warnings.warn(
                f"result store {self.root} skipped {skipped} record(s) with an "
                f"unknown schema/kind (this release reads schema "
                f"{SCHEMA_VERSION} 'shard' records)",
                StoreCompatWarning,
                stacklevel=2,
            )
        return list(merged.values())

    def completed_ids(self, campaign: str) -> set[str]:
        """Shard ids of the campaign that already have a checkpoint."""
        return {
            str(record["shard_id"])
            for record in self.shard_records(campaign)
            if "shard_id" in record and "aggregate" in record
        }

    # ------------------------------------------------------------------
    # Bench artifact merge
    # ------------------------------------------------------------------
    def bench_records(self) -> list[dict]:
        """The ``BENCH_*.json`` artifacts as ``kind: "bench"`` records.

        Artifacts written before the store existed lack the
        ``schema``/``kind`` envelope; they are upgraded on read.
        """
        if self.bench_dir is None or not self.bench_dir.is_dir():
            return []
        records = []
        skipped = 0
        for path in sorted(self.bench_dir.glob("BENCH_*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict):
                continue
            payload.setdefault("schema", SCHEMA_VERSION)
            payload.setdefault("kind", "bench")
            if payload["kind"] != "bench" or payload["schema"] != SCHEMA_VERSION:
                skipped += 1
                continue
            payload["artifact"] = path.name
            records.append(payload)
        if skipped:
            warnings.warn(
                f"bench directory {self.bench_dir} skipped {skipped} artifact(s) "
                f"with an unknown schema/kind",
                StoreCompatWarning,
                stacklevel=2,
            )
        return records

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def history(self) -> list[dict]:
        """Every record the store knows: shard results then benches."""
        return self.shard_records() + self.bench_records()

    def cells(
        self,
        *,
        campaign: Optional[str] = None,
        experiment: Optional[str] = None,
        scale: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> list[dict]:
        """Shard records filtered by any subset of the grid axes."""
        out = []
        for record in self.shard_records(campaign):
            if experiment is not None and record.get("experiment") != experiment:
                continue
            if scale is not None and record.get("scale") != scale:
                continue
            if engine is not None and record.get("engine") != engine:
                continue
            out.append(record)
        return out

    def invalidate(self) -> None:
        """Drop the lookup index (call after another process appended).

        :meth:`append` invalidates automatically; a long-lived reader
        sharing the directory with out-of-process writers calls this to
        see their lines.
        """
        self._spec_index = None

    def _record_spec_hash(self, record: dict) -> Optional[str]:
        """The record's dedup hash, derived for pre-stamp history.

        New records carry ``spec_hash`` explicitly (stamped by
        :func:`~repro.campaign.runner.shard_record` and the serve
        layer). Records written before the stamp existed are campaign
        shards, whose hash is a pure function of their grid fields — so
        dedup works against the whole history, not just post-stamp
        lines.
        """
        stamped = record.get("spec_hash")
        if stamped is not None:
            return str(stamped)
        try:
            return Shard.from_dict(record).spec_hash()
        except ReproError:
            return None

    def find(self, spec_hash: str, seed: Optional[int] = None) -> list[dict]:
        """Shard records matching a dedup key, oldest first.

        ``(spec_hash, seed)`` is the serve layer's cache key: a match
        means the exact aggregate for that submission already exists
        and must not be recomputed. ``seed=None`` returns every seed's
        records for the hash. Backed by a lazy index over
        :meth:`shard_records`, rebuilt after every :meth:`append` (the
        per-record hash derivation for pre-stamp history happens once
        per build, not once per lookup).
        """
        if self._spec_index is None:
            index: dict[str, list[dict]] = {}
            for record in self.shard_records():
                key = self._record_spec_hash(record)
                if key is not None:
                    index.setdefault(key, []).append(record)
            self._spec_index = index
        records = self._spec_index.get(str(spec_hash), [])
        if seed is None:
            return list(records)
        return [
            record
            for record in records
            if int(record.get("master_seed", 0)) == int(seed)
        ]

    def measured_experiments(self) -> set[str]:
        """Experiment ids with at least one shard record."""
        return {
            str(record["experiment"])
            for record in self.shard_records()
            if "experiment" in record
        }

    # ------------------------------------------------------------------
    # Determinism surface
    # ------------------------------------------------------------------
    def aggregates_json(self, campaign: Optional[str] = None) -> str:
        """Canonical JSON of all seed-determined aggregates.

        Sorted by shard id, stripped of volatile ``meta``: two stores
        that measured the same grid from the same seeds — no matter how
        many kills and resumes happened in between — serialize to the
        same bytes. The resume tests assert exactly this.
        """
        rows = sorted(
            (
                {
                    "campaign": record["campaign"],
                    "shard_id": record["shard_id"],
                    "aggregate": record["aggregate"],
                }
                for record in self.shard_records(campaign)
            ),
            key=lambda row: (row["campaign"], row["shard_id"]),
        )
        return json.dumps(rows, sort_keys=True, indent=1)

    def shard_for(self, record: dict) -> Shard:
        """Rebuild the :class:`Shard` key of a stored record."""
        return Shard.from_dict(record)

    def describe(self) -> str:
        shard_count = len(self.shard_records())
        bench_count = len(self.bench_records())
        return (
            f"ResultStore({self.root}): {shard_count} shard records across "
            f"{len(self.campaigns())} campaigns, {bench_count} bench artifacts"
        )
