"""Campaign specifications: a grid of experiments, compiled to shards.

A :class:`CampaignSpec` names a cross-product — experiment ids ×
scales × engines × a seed bank — and compiles it to a *deterministic*
list of :class:`Shard` work units. Determinism is the whole point:

* the shard list (and every shard's :attr:`~Shard.shard_id`) is a pure
  function of the spec, so two invocations of the same campaign agree
  on what work exists and can hand checkpointing to the
  :class:`~repro.campaign.store.ResultStore`;
* each shard is a pure function of its key ``(experiment, scale,
  engine, master_seed)`` — engines are seed-for-seed identical — so a
  killed-and-resumed campaign reproduces the uninterrupted campaign's
  aggregates byte for byte.

Specs are plain data: JSON round-trippable (``to_dict``/``from_dict``)
and loadable from a file (:func:`load_campaign`), mirroring
:class:`~repro.api.spec.ScenarioSpec` one layer down.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

from repro.core.errors import SpecError

__all__ = ["Shard", "CampaignSpec", "load_campaign"]

#: Campaign names become checkpoint file names; keep them path-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class Shard:
    """One cell of a campaign grid: a single experiment run.

    The :attr:`shard_id` is the checkpoint key — a resumed campaign
    skips every shard whose id already has a record in the store.
    """

    campaign: str
    experiment: str
    scale: str
    engine: str
    master_seed: int

    @property
    def shard_id(self) -> str:
        return (
            f"{self.experiment}@{self.scale}/{self.engine}/seed{self.master_seed}"
        )

    def spec_hash(self) -> str:
        """Stable content hash of the shard's *work*, seed excluded.

        A shard's aggregate is a pure function of ``(experiment, scale,
        engine, master_seed)``; the hash covers the first three and the
        seed travels alongside it, so
        :meth:`~repro.campaign.store.ResultStore.find(spec_hash, seed)
        <repro.campaign.store.ResultStore.find>` can dedup one cell
        across campaigns, stores, and submission routes. The campaign
        *name* is deliberately excluded — the same grid submitted under
        a different name is the same work.
        """
        from repro.core.canonical import stable_hash

        return stable_hash(
            {
                "kind": "shard",
                "experiment": self.experiment,
                "scale": self.scale,
                "engine": self.engine,
            }
        )

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "experiment": self.experiment,
            "scale": self.scale,
            "engine": self.engine,
            "master_seed": self.master_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Shard":
        try:
            return cls(
                campaign=str(data["campaign"]),
                experiment=str(data["experiment"]),
                scale=str(data["scale"]),
                engine=str(data["engine"]),
                master_seed=int(data["master_seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(f"malformed shard record: {exc}") from exc


def _str_tuple(value: Iterable, *, what: str) -> tuple[str, ...]:
    if isinstance(value, str):
        raise SpecError(f"{what} must be a sequence of names, got the string {value!r}")
    items = tuple(str(item) for item in value)
    if not items:
        raise SpecError(f"{what} must not be empty")
    if len(set(items)) != len(items):
        raise SpecError(f"{what} contains duplicates: {list(items)}")
    return items


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a full-grid experiment campaign."""

    name: str
    experiments: tuple[str, ...]
    scales: tuple[str, ...] = ("tiny",)
    engines: tuple[str, ...] = ("reference",)
    seeds: tuple[int, ...] = (2013,)
    #: Free-form note rendered into reports (e.g. why this grid exists).
    description: str = ""
    #: Round-skipping override applied to every shard (None = each
    #: engine's default). Not a grid axis: results are skip-independent,
    #: so skipping changes wall-clock only — never shard ids or records.
    skip: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.skip is not None and not isinstance(self.skip, bool):
            raise SpecError(
                f"skip must be a bool or None, got {self.skip!r}"
            )
        if not _NAME_RE.match(self.name):
            raise SpecError(
                f"campaign name {self.name!r} must be a path-safe slug "
                "(letters, digits, '.', '_', '-')"
            )
        object.__setattr__(
            self, "experiments", _str_tuple(self.experiments, what="experiments")
        )
        object.__setattr__(self, "scales", _str_tuple(self.scales, what="scales"))
        object.__setattr__(self, "engines", _str_tuple(self.engines, what="engines"))
        seeds = tuple(int(seed) for seed in self.seeds)
        if not seeds:
            raise SpecError("seeds must not be empty")
        if len(set(seeds)) != len(seeds):
            raise SpecError(f"seeds contains duplicates: {list(seeds)}")
        object.__setattr__(self, "seeds", seeds)

    # ------------------------------------------------------------------
    # Validation against the live registries
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every grid axis against the registries it names.

        Raises :class:`~repro.core.errors.SpecError` on an unknown
        experiment id, an unknown engine, or a scale an experiment does
        not define — *before* any shard runs, so a typo cannot waste a
        long campaign.
        """
        from repro.core.engine import ENGINE_NAMES
        from repro.experiments import ALL_EXPERIMENTS

        for engine in self.engines:
            if engine not in ENGINE_NAMES:
                raise SpecError(
                    f"unknown engine {engine!r}; choose from {list(ENGINE_NAMES)}"
                )
        for exp_id in self.experiments:
            if exp_id not in ALL_EXPERIMENTS:
                raise SpecError(
                    f"unknown experiment {exp_id!r}; registered ids: "
                    f"{', '.join(sorted(ALL_EXPERIMENTS))}"
                )
            experiment = ALL_EXPERIMENTS[exp_id]
            for scale in self.scales:
                if scale not in experiment.scales:
                    raise SpecError(
                        f"experiment {exp_id} has no scale {scale!r}; "
                        f"available: {sorted(experiment.scales)}"
                    )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def shards(self) -> list[Shard]:
        """Compile the grid to its deterministic shard list.

        Order is the spec's declared order, experiment-major — the
        natural reading order of the grid and the order ``campaign
        status`` reports progress in.
        """
        return [
            Shard(
                campaign=self.name,
                experiment=exp_id,
                scale=scale,
                engine=engine,
                master_seed=seed,
            )
            for exp_id in self.experiments
            for scale in self.scales
            for engine in self.engines
            for seed in self.seeds
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "experiments": list(self.experiments),
            "scales": list(self.scales),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
            "description": self.description,
        }
        # Omitted when unset so pre-skip campaign files round-trip to
        # byte-identical JSON.
        if self.skip is not None:
            data["skip"] = self.skip
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"campaign spec must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "name", "experiments", "scales", "engines", "seeds", "description",
            "skip",
        }
        if unknown:
            raise SpecError(f"unknown campaign spec keys: {sorted(unknown)}")
        try:
            name = data["name"]
            experiments = data["experiments"]
        except KeyError as exc:
            raise SpecError(f"campaign spec is missing required key {exc}") from exc
        return cls(
            name=str(name),
            experiments=experiments,
            scales=data.get("scales", ("tiny",)),
            engines=data.get("engines", ("reference",)),
            seeds=data.get("seeds", (2013,)),
            description=str(data.get("description", "")),
            skip=data.get("skip"),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def spec_hash(self) -> str:
        """Stable content hash of the campaign's *grid*.

        Canonical-JSON SHA-256 over the result-determining axes only:
        ``name`` (a checkpoint-file label) and ``description`` (a
        free-form note) are excluded, so resubmitting the same grid
        under a different name dedupes against the in-flight job and
        the store history. Used by the serve layer as the in-flight
        dedup key for ``POST /v1/runs`` campaign submissions.
        """
        from repro.core.canonical import stable_hash

        return stable_hash(
            {
                "kind": "campaign",
                "experiments": list(self.experiments),
                "scales": list(self.scales),
                "engines": list(self.engines),
                "seeds": list(self.seeds),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"campaign spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def describe(self) -> str:
        grid = (
            f"{len(self.experiments)} experiments × {len(self.scales)} scales × "
            f"{len(self.engines)} engines × {len(self.seeds)} seeds"
        )
        return f"campaign {self.name!r}: {grid} = {len(self.shards())} shards"


def load_campaign(path: Union[str, os.PathLike]) -> CampaignSpec:
    """Read a :class:`CampaignSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignSpec.from_json(handle.read())
