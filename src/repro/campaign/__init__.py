"""Campaign orchestration: sharded, resumable full-grid experiment runs.

The layer above single experiments, and the one every future scenario
PR plugs into:

* :class:`CampaignSpec` — a grid of experiment ids × scales × engines ×
  seed banks, compiled to a deterministic :class:`Shard` list;
* :class:`CampaignRunner` — runs pending shards over the existing
  :class:`~repro.api.executor.TrialExecutor` machinery, checkpointing
  each completed shard so a killed campaign resumes exactly where it
  stopped (seed-for-seed identical aggregates);
* :class:`ResultStore` — the persistent JSONL store of shard records,
  merged with the committed ``BENCH_*.json`` benchmark artifacts into
  one queryable history;
* :func:`render_results_markdown` — the generator behind
  ``docs/results.md`` and the CI staleness check.

CLI: ``repro campaign run | status | report``. See
``docs/architecture.md`` ("Campaigns") for the shard lifecycle and the
store schema.
"""

from repro.campaign.report import (
    GENERATED_MARKER,
    is_stale,
    normalize,
    render_results_markdown,
    write_report,
)
from repro.campaign.runner import (
    CampaignRunner,
    CampaignStatus,
    ShardOutcome,
    shard_record,
)
from repro.campaign.spec import CampaignSpec, Shard, load_campaign
from repro.campaign.store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreCompatWarning,
    StoreError,
)

__all__ = [
    "CampaignSpec",
    "Shard",
    "load_campaign",
    "ResultStore",
    "StoreError",
    "StoreCompatWarning",
    "SCHEMA_VERSION",
    "CampaignRunner",
    "CampaignStatus",
    "ShardOutcome",
    "shard_record",
    "render_results_markdown",
    "write_report",
    "normalize",
    "is_stale",
    "GENERATED_MARKER",
]
