"""Oblivious schedule attackers: dense/sparse from *predicted* behavior.

Section 4.1 explains why classic decay breaks in the oblivious dual
graph model: "the fixed schedule of broadcast probabilities allows
[the adversary] to calculate in advance the expected broadcast
behavior, and choose dynamic link behavior accordingly". These link
processes implement that calculation.

* :class:`PredictedDenseSparseAttacker` — takes any per-round
  prediction function ``round ↦ E[|X|]`` and applies the dense/sparse
  rule (flood on dense, sever the cut on sparse). Being a function of
  the round index only, it is oblivious.
* :func:`predict_plain_decay_counts` — the prediction for the
  Bar-Yehuda et al. decay broadcast on a dual-clique-like network:
  after round 0 the source's clique is informed and every informed node
  follows the *public* decay schedule, so the expected transmitter
  count in round ``r`` is ``|informed| · 2^{-(r mod phase_len)-1}``.
* :class:`PrecomputedDenseSparseLinks` — a dense/sparse schedule fixed
  as an explicit list of labels before the run. The bracelet attacker
  of Theorem 4.3 produces its labels via isolated band simulation and
  feeds them here.

Against *permuted* decay the prediction degenerates: the per-round
probability index is drawn from the source's post-start random bits,
which an oblivious adversary cannot see, so its best prediction is the
average — it misclassifies rounds, and Lemma 4.2 guarantees progress
regardless. The A1 ablation bench measures exactly this separation.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    RoundTopology,
)
from repro.graphs.dual_graph import DualGraph

__all__ = [
    "PredictedDenseSparseAttacker",
    "PrecomputedDenseSparseLinks",
    "predict_plain_decay_counts",
]


def predict_plain_decay_counts(
    informed_count: int, phase_length: int, *, join_round: int = 1
) -> Callable[[int], float]:
    """Expected transmitter count for plain decay with a public schedule.

    Models the attack knowledge on a dual clique: from ``join_round``
    on, ``informed_count`` nodes all follow decay's deterministic
    probability ladder ``2^{-(j+1)}`` for ``j = round mod phase_length``
    (Section 4.1's description of [2]). Before ``join_round`` only the
    source may transmit.
    """
    if informed_count < 1:
        raise ValueError("informed_count must be >= 1")
    if phase_length < 1:
        raise ValueError("phase_length must be >= 1")

    def predict(round_index: int) -> float:
        if round_index < join_round:
            return 1.0  # the lone source announcement
        j = (round_index - join_round) % phase_length
        return informed_count * 2.0 ** (-(j + 1))

    return predict


def _label_run_boundary(
    labels: Sequence[bool], tail: bool, round_index: int
) -> Optional[int]:
    """First round after ``round_index`` where a dense/sparse label flips.

    Shared by the precomputed-schedule adversaries (their
    ``choose_topology`` is a pure lookup over a label list fixed at
    ``start``): the topology next changes when the current label's run
    ends, and never again once the schedule has settled into its tail.
    """
    current = labels[round_index] if round_index < len(labels) else tail
    r = round_index + 1
    while r < len(labels):
        if labels[r] != current:
            return r
        r += 1
    return None if tail == current else max(r, round_index + 1)


class PredictedDenseSparseAttacker(LinkProcess):
    """Dense/sparse attack driven by a clock-only prediction function.

    Parameters
    ----------
    side_mask:
        Cut side to sever during predicted-sparse rounds.
    predictor:
        ``round ↦ predicted E[|X|]``. Must depend on the round index
        alone (obliviousness); the constructor cannot enforce that, but
        the engine only ever supplies the round number.
    threshold:
        Dense boundary; defaults to ``2·log2 n`` at start.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(
        self,
        side_mask: int,
        predictor: Callable[[int], float],
        *,
        threshold: Optional[float] = None,
    ) -> None:
        self.side_mask = side_mask
        self.predictor = predictor
        self.threshold = threshold
        self.dense_history: list[bool] = []

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        if self.threshold is None:
            self.threshold = 2.0 * math.log2(max(network.n, 2))
        self._dense = RoundTopology.all_links(network).publish_packed()
        self._sparse = RoundTopology.without_cut(
            network, self.side_mask, label="predicted-sparse"
        ).publish_packed()
        self.dense_history = []

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        dense = self.predictor(view.round_index) > self.threshold
        self.dense_history.append(dense)
        return self._dense if dense else self._sparse

    def next_boundary(self, round_index: int) -> Optional[int]:
        # Every call appends to dense_history (observable diagnostics),
        # so elided calls would be detectable: no skipping.
        return round_index + 1


class PrecomputedDenseSparseLinks(LinkProcess):
    """A dense/sparse schedule fixed before the execution.

    ``labels[r]`` is true for a dense (flooded) round; rounds beyond
    the schedule fall back to ``tail_dense``. The Theorem 4.3 oblivious
    attacker computes its labels from isolated band simulations — by
    Lemma 4.5 those predictions remain accurate for the real execution
    with high probability — and hands them here.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, side_mask: int, labels: Sequence[bool], *, tail_dense: bool = True) -> None:
        self.side_mask = side_mask
        self.labels = list(labels)
        self.tail_dense = tail_dense

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._dense = RoundTopology.all_links(network).publish_packed()
        self._sparse = RoundTopology.without_cut(
            network, self.side_mask, label="precomputed-sparse"
        ).publish_packed()

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        r = view.round_index
        dense = self.labels[r] if r < len(self.labels) else self.tail_dense
        return self._dense if dense else self._sparse

    def next_boundary(self, round_index: int) -> Optional[int]:
        return _label_run_boundary(
            self.labels, self.tail_dense, round_index
        )


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.core.errors import SpecError  # noqa: E402
from repro.registry import cut_mask_for, register_adversary  # noqa: E402


@register_adversary("predicted-dense-sparse")
def _spec_predicted_dense_sparse(
    ctx, *, side="A", predictor: str = "plain-decay", threshold=None
) -> PredictedDenseSparseAttacker:
    """Schedule attack with a named clock-only predictor.

    ``"plain-decay"`` predicts [2]'s public ladder for the informed
    side (a dual clique's side A, or half the node count otherwise) —
    exact against plain decay, stale against permuted decay.
    """
    if predictor != "plain-decay":
        raise SpecError(f"unknown predictor {predictor!r}; known: 'plain-decay'")
    # Function-local import: adversaries must not import algorithms at
    # module level (algorithms.base imports adversaries.base).
    from repro.algorithms.base import log2_ceil

    n = ctx.graph.n
    informed = getattr(ctx.network, "half", n // 2)
    phase_length = log2_ceil(n)
    return PredictedDenseSparseAttacker(
        cut_mask_for(ctx, side),
        predict_plain_decay_counts(informed, phase_length),
        threshold=None if threshold is None else float(threshold),
    )


@register_adversary("precomputed-dense-sparse")
def _spec_precomputed_dense_sparse(
    ctx, *, labels, side="A", tail_dense: bool = True
) -> PrecomputedDenseSparseLinks:
    return PrecomputedDenseSparseLinks(
        cut_mask_for(ctx, side), [bool(b) for b in labels], tail_dense=bool(tail_dense)
    )
