"""The offline adaptive solo-blocker: the Ω(n) adversary of [11].

The paper's first Figure-1 row cites [11]: with an *offline adaptive*
link process — one that sees the nodes' round-``r`` coins before fixing
the round-``r`` links — both broadcast problems need ``Ω(n)`` rounds on
the dual clique. The adversary achieving this is brutally simple once
you may look at the realized transmitter set ``X``:

* if ``|X| ≥ 2``: include **all** ``G'`` edges. The topology becomes
  the complete graph, every listener neighbors at least two
  transmitters, and *nobody in the network receives anything*.
* if ``|X| ≤ 1``: include **no** cross-cut ``G'`` edge. A lone
  transmitter delivers to its reliable neighbors only — progress
  crosses the cut only if the lone transmitter happens to be a bridge
  endpoint, an event the algorithm cannot steer toward because it does
  not know the bridge.

Against decay-style algorithms the chance that the unique global
transmitter is the one secret bridge node is ``O(1/n)`` per useful
round, forcing ``Ω(n)`` rounds — and no algorithm does better than
``O(1/n)`` per round without knowing the bridge.

Note what makes this genuinely *offline* adaptive: the dense/sparse
choice keys on the realized coins ``|X|``, not on the expectation. The
online variant (:mod:`repro.adversaries.dense_sparse`) must hedge with
a threshold on ``E[|X| | S]`` and consequently loses a log factor —
the gap between Figure 1's first and second rows.
"""

from __future__ import annotations

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    OfflineAdaptiveView,
    RoundTopology,
)
from repro.core.errors import AdversaryUsageError
from repro.core.trace import popcount
from repro.graphs.dual_graph import DualGraph

__all__ = ["OfflineSoloBlockerAttacker"]


class OfflineSoloBlockerAttacker(LinkProcess):
    """Flood on multi-transmitter rounds, sever the cut otherwise.

    Parameters
    ----------
    side_mask:
        Bitmask of one cut side (on the dual clique: side ``A``). The
        sparse topology withholds exactly the flaky edges crossing this
        cut; flaky edges inside each side (there are none on the dual
        clique) stay up, which only helps the adversary elsewhere.
    """

    adversary_class = AdversaryClass.OFFLINE_ADAPTIVE

    def __init__(self, side_mask: int) -> None:
        self.side_mask = side_mask
        #: Rounds in which a lone transmitter was observed (diagnostics).
        self.solo_rounds: int = 0
        #: Rounds with two or more transmitters (all flooded).
        self.flooded_rounds: int = 0

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._flood = RoundTopology.all_links(network).publish_packed()
        self._severed = RoundTopology.without_cut(
            network, self.side_mask, label="solo-blocker-cut"
        ).publish_packed()
        self.solo_rounds = 0
        self.flooded_rounds = 0

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        if not isinstance(view, OfflineAdaptiveView):
            raise AdversaryUsageError(
                "OfflineSoloBlockerAttacker needs the offline adaptive view "
                "(realized transmitter set)"
            )
        transmitters = popcount(view.transmitter_mask)
        if transmitters >= 2:
            self.flooded_rounds += 1
            return self._flood
        if transmitters == 1:
            self.solo_rounds += 1
        return self._severed

    def next_boundary(self, round_index: int) -> "int | None":
        # Offline adaptive: the choice keys on each round's realized
        # coins, so the masks can flip every round.
        return round_index + 1


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.registry import cut_mask_for, register_adversary  # noqa: E402


@register_adversary("offline-solo-blocker")
def _spec_offline_solo_blocker(ctx, *, side="A") -> OfflineSoloBlockerAttacker:
    return OfflineSoloBlockerAttacker(cut_mask_for(ctx, side))
