"""Degenerate (non-adaptive, non-random) link processes.

These pin the dual graph model to its endpoints and are the reference
points of Figure 1's last row:

* :class:`NoFlakyLinks` — no unreliable edge ever fires: the execution
  is exactly the static protocol model on ``G``.
* :class:`AllFlakyLinks` — every unreliable edge always fires: the
  static protocol model on ``G'``.
* :class:`FixedFlakyLinks` — an arbitrary fixed subset, held for the
  whole execution.
* :class:`AlternatingLinks` — deterministically alternates between two
  topologies on a fixed period (the simplest "dynamic" adversary; good
  for tests that need link churn without randomness).

All are oblivious: their behavior is a function of the round index
alone.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    RoundTopology,
)
from repro.graphs.dual_graph import DualGraph, Edge

__all__ = ["NoFlakyLinks", "AllFlakyLinks", "FixedFlakyLinks", "AlternatingLinks"]


class NoFlakyLinks(LinkProcess):
    """Static protocol model on ``G``: the adversary withholds every flaky edge."""

    adversary_class = AdversaryClass.OBLIVIOUS

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._topology = RoundTopology.reliable_only(network).publish_packed()

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        return self._topology

    def next_boundary(self, round_index: int) -> Optional[int]:
        return None  # one cached topology, forever


class AllFlakyLinks(LinkProcess):
    """Static protocol model on ``G'``: every flaky edge fires every round."""

    adversary_class = AdversaryClass.OBLIVIOUS

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._topology = RoundTopology.all_links(network).publish_packed()

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        return self._topology

    def next_boundary(self, round_index: int) -> Optional[int]:
        return None  # one cached topology, forever


class FixedFlakyLinks(LinkProcess):
    """A fixed flaky-edge subset, constant across the execution."""

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, flaky_edges: Iterable[Edge]) -> None:
        self._edges = list(flaky_edges)

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._topology = RoundTopology.from_flaky_edges(
            network, self._edges, label="fixed-subset"
        ).publish_packed()

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        return self._topology

    def next_boundary(self, round_index: int) -> Optional[int]:
        return None  # one cached topology, forever


class AlternatingLinks(LinkProcess):
    """Deterministic rotation through a cycle of topologies.

    ``phase_lengths[i]`` rounds of ``topologies[i]``, then the next,
    wrapping around. With two entries this is a square-wave link
    pattern; the default alternates all-on / all-off every round.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, phase_lengths: Sequence[int] = (1, 1)) -> None:
        if not phase_lengths or any(p < 1 for p in phase_lengths):
            raise ValueError("phase_lengths must be positive")
        self._phase_lengths = list(phase_lengths)

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._topologies = [
            RoundTopology.all_links(network).publish_packed(),
            RoundTopology.reliable_only(network).publish_packed(),
        ]
        self._period = sum(self._phase_lengths)

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        offset = view.round_index % self._period
        for i, length in enumerate(self._phase_lengths):
            if offset < length:
                return self._topologies[i % len(self._topologies)]
            offset -= length
        return self._topologies[0]  # pragma: no cover - unreachable

    def next_boundary(self, round_index: int) -> Optional[int]:
        # Pure cycle over precomputed topologies: the masks next change
        # at the end of the phase containing this round.
        offset = round_index % self._period
        for length in self._phase_lengths:
            if offset < length:
                return round_index + (length - offset)
            offset -= length
        return round_index + 1  # pragma: no cover - unreachable


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.registry import register_adversary  # noqa: E402


@register_adversary("none")
def _spec_none(ctx) -> NoFlakyLinks:
    return NoFlakyLinks()


@register_adversary("all")
def _spec_all(ctx) -> AllFlakyLinks:
    return AllFlakyLinks()


@register_adversary("alternating")
def _spec_alternating(ctx, *, phase_lengths=(1, 1)) -> AlternatingLinks:
    return AlternatingLinks(tuple(int(p) for p in phase_lengths))


@register_adversary("fixed-flaky")
def _spec_fixed_flaky(ctx, *, edges) -> FixedFlakyLinks:
    return FixedFlakyLinks([(int(u), int(v)) for u, v in edges])
