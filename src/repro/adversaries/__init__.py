"""Link processes for every adversary class the paper studies.

Oblivious (schedule fixed before execution): static endpoints,
stochastic nature models, structured jammers, the schedule-predicting
dense/sparse attacker, and the Theorem 4.3 bracelet attacker (exported
from :mod:`repro.adversaries.bracelet_attack` once the isolated-band
machinery is importable).

Online adaptive: the Theorem 3.1 dense/sparse attacker (thresholds on
``E[|X| | S]``).

Offline adaptive: the [11]-style solo blocker (sees realized coins).
"""

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    HistoryEntry,
    LinkProcess,
    ObliviousView,
    OfflineAdaptiveView,
    OnlineAdaptiveView,
    RoundTopology,
)
from repro.adversaries.dense_sparse import OnlineDenseSparseAttacker, default_dense_threshold
from repro.adversaries.jamming import MovingRegionFade, PeriodicCutJammer
from repro.adversaries.offline import OfflineSoloBlockerAttacker
from repro.adversaries.schedule_attack import (
    PrecomputedDenseSparseLinks,
    PredictedDenseSparseAttacker,
    predict_plain_decay_counts,
)
from repro.adversaries.static import (
    AllFlakyLinks,
    AlternatingLinks,
    FixedFlakyLinks,
    NoFlakyLinks,
)
from repro.adversaries.stochastic import (
    BernoulliEdgeLinks,
    BernoulliNodeFade,
    GilbertElliottEdgeLinks,
    GilbertElliottNodeFade,
)

__all__ = [
    "AdversaryClass",
    "AlgorithmInfo",
    "HistoryEntry",
    "LinkProcess",
    "ObliviousView",
    "OnlineAdaptiveView",
    "OfflineAdaptiveView",
    "RoundTopology",
    "NoFlakyLinks",
    "AllFlakyLinks",
    "FixedFlakyLinks",
    "AlternatingLinks",
    "BernoulliEdgeLinks",
    "GilbertElliottEdgeLinks",
    "BernoulliNodeFade",
    "GilbertElliottNodeFade",
    "PeriodicCutJammer",
    "MovingRegionFade",
    "PredictedDenseSparseAttacker",
    "PrecomputedDenseSparseLinks",
    "predict_plain_decay_counts",
    "OnlineDenseSparseAttacker",
    "default_dense_threshold",
    "OfflineSoloBlockerAttacker",
]
