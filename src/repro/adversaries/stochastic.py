"""Stochastic (nature-like) oblivious link processes.

The paper motivates the dual graph model with real-network measurements
— "changes to the environment, interference from unrelated protocols
... and even shifting weather conditions" — and cites the β-factor
study of link *burstiness* [18]. These link processes model that
environmental behavior:

* :class:`BernoulliEdgeLinks` — each flaky edge fires independently
  each round with probability ``p_up`` (the memoryless baseline the
  paper dismisses as too benign — included as exactly that baseline).
* :class:`GilbertElliottEdgeLinks` — each flaky edge follows a two-state
  Gilbert–Elliott Markov chain (good ↔ bad), producing the correlated
  bursts observed in [18].
* :class:`BernoulliNodeFade` / :class:`GilbertElliottNodeFade` — the
  same processes at node granularity: a faded node loses *all* its
  flaky edges at once (a node walking behind a wall), which also keeps
  per-round cost ``O(n)`` on dense graphs.

All are oblivious: their state evolves from a private RNG fixed at
``start`` and the round clock, never from the execution. (Lazy
evaluation is an implementation detail — behavior is a deterministic
function of ``(seed, round)``, which is exactly the "decides everything
upfront" entitlement.)
"""

from __future__ import annotations

import random

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    RoundTopology,
)
from repro.graphs.dual_graph import DualGraph, Edge

__all__ = [
    "BernoulliEdgeLinks",
    "GilbertElliottEdgeLinks",
    "BernoulliNodeFade",
    "GilbertElliottNodeFade",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


class BernoulliEdgeLinks(LinkProcess):
    """Independent per-edge, per-round link availability.

    Cost is ``O(|E' \\ E|)`` per round; intended for sparse flaky sets
    (geographic grey zones, not complete-bipartite lower-bound graphs —
    use the node-fade variants there).
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, p_up: float) -> None:
        _check_probability("p_up", p_up)
        self.p_up = p_up

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng: random.Random) -> None:
        super().start(network, algorithm, rng)
        self._flaky_edges: list[Edge] = sorted(network.flaky_edges())
        self._all = RoundTopology.all_links(network)
        self._none = RoundTopology.reliable_only(network)

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        if self.p_up >= 1.0:
            return self._all
        if self.p_up <= 0.0:
            return self._none
        active = [edge for edge in self._flaky_edges if self.rng.random() < self.p_up]
        return RoundTopology.from_flaky_edges(self.network, active, label="bernoulli-edges")

    def next_boundary(self, round_index: int) -> int | None:
        if self.p_up >= 1.0 or self.p_up <= 0.0:
            return None  # degenerate coin: one cached topology, no draws
        return round_index + 1  # fresh per-edge draws every round


class GilbertElliottEdgeLinks(LinkProcess):
    """Per-edge two-state Markov (Gilbert–Elliott) bursty links.

    Each flaky edge is *good* (up) or *bad* (down); per round a good
    edge breaks with ``p_fail`` and a bad edge heals with ``p_recover``.
    The stationary up-fraction is ``p_recover / (p_fail + p_recover)``
    and mean burst lengths are ``1/p_fail`` (up) and ``1/p_recover``
    (down) — fit these to the β-factor traces you want to mimic.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, p_fail: float, p_recover: float, *, start_up_fraction: float | None = None) -> None:
        _check_probability("p_fail", p_fail)
        _check_probability("p_recover", p_recover)
        self.p_fail = p_fail
        self.p_recover = p_recover
        self.start_up_fraction = start_up_fraction

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng: random.Random) -> None:
        super().start(network, algorithm, rng)
        self._flaky_edges = sorted(network.flaky_edges())
        if self.start_up_fraction is None:
            denom = self.p_fail + self.p_recover
            up_frac = 1.0 if denom == 0 else self.p_recover / denom
        else:
            up_frac = self.start_up_fraction
        self._up = {edge: rng.random() < up_frac for edge in self._flaky_edges}

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        active: list[Edge] = []
        for edge in self._flaky_edges:
            if self._up[edge]:
                if self.rng.random() < self.p_fail:
                    self._up[edge] = False
            else:
                if self.rng.random() < self.p_recover:
                    self._up[edge] = True
            if self._up[edge]:
                active.append(edge)
        return RoundTopology.from_flaky_edges(self.network, active, label="gilbert-elliott-edges")

    def next_boundary(self, round_index: int) -> int | None:
        return round_index + 1  # the Markov chain steps (and draws) every round


class BernoulliNodeFade(LinkProcess):
    """Node-level memoryless fading: ``O(n)`` per round on any graph.

    Each node is independently *clear* with probability ``p_clear``
    each round; a flaky edge fires iff both endpoints are clear.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, p_clear: float) -> None:
        _check_probability("p_clear", p_clear)
        self.p_clear = p_clear

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        active_mask = 0
        for u in range(self.network.n):
            if self.rng.random() < self.p_clear:
                active_mask |= 1 << u
        return RoundTopology.from_active_flaky_nodes(
            self.network, active_mask, label="bernoulli-node-fade"
        )

    def next_boundary(self, round_index: int) -> int | None:
        return round_index + 1  # one RNG draw per node every round


class GilbertElliottNodeFade(LinkProcess):
    """Node-level bursty fading (two-state Markov per node).

    A clear node fades with ``p_fail`` per round; a faded node clears
    with ``p_recover``. Flaky edges require both endpoints clear. This
    is the recommended "realistic environment" adversary for large
    graphs: correlated bursts, linear per-round cost.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, p_fail: float, p_recover: float, *, start_clear_fraction: float | None = None) -> None:
        _check_probability("p_fail", p_fail)
        _check_probability("p_recover", p_recover)
        self.p_fail = p_fail
        self.p_recover = p_recover
        self.start_clear_fraction = start_clear_fraction

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng: random.Random) -> None:
        super().start(network, algorithm, rng)
        if self.start_clear_fraction is None:
            denom = self.p_fail + self.p_recover
            clear_frac = 1.0 if denom == 0 else self.p_recover / denom
        else:
            clear_frac = self.start_clear_fraction
        self._clear_mask = 0
        for u in range(network.n):
            if rng.random() < clear_frac:
                self._clear_mask |= 1 << u

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        # One draw per node in node order (the chain's contract with
        # the RNG stream); build the next mask instead of patching the
        # old one so no per-node complement/and-not bigint work runs.
        random = self.rng.random
        p_fail = self.p_fail
        p_recover = self.p_recover
        mask = self._clear_mask
        new_mask = 0
        bit = 1
        for _ in range(self.network.n):
            if mask & bit:
                if random() >= p_fail:
                    new_mask |= bit
            elif random() < p_recover:
                new_mask |= bit
            bit <<= 1
        self._clear_mask = new_mask
        return RoundTopology.from_active_flaky_nodes(
            self.network, new_mask, label="gilbert-elliott-node-fade"
        )

    def next_boundary(self, round_index: int) -> int | None:
        return round_index + 1  # the per-node Markov chains step every round


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.registry import register_adversary  # noqa: E402


@register_adversary("bernoulli-edge")
def _spec_bernoulli_edge(ctx, *, p_up: float) -> BernoulliEdgeLinks:
    return BernoulliEdgeLinks(float(p_up))


@register_adversary("ge-edge")
def _spec_ge_edge(
    ctx, *, p_fail: float, p_recover: float, start_up_fraction=None
) -> GilbertElliottEdgeLinks:
    return GilbertElliottEdgeLinks(
        float(p_fail),
        float(p_recover),
        start_up_fraction=None if start_up_fraction is None else float(start_up_fraction),
    )


@register_adversary("bernoulli-node-fade")
def _spec_bernoulli_node_fade(ctx, *, p_clear: float) -> BernoulliNodeFade:
    return BernoulliNodeFade(float(p_clear))


@register_adversary("ge-fade")
def _spec_ge_fade(
    ctx, *, p_fail: float, p_recover: float, start_clear_fraction=None
) -> GilbertElliottNodeFade:
    return GilbertElliottNodeFade(
        float(p_fail),
        float(p_recover),
        start_clear_fraction=(
            None if start_clear_fraction is None else float(start_clear_fraction)
        ),
    )
