"""Link processes: the adversaries that control unreliable links.

Section 2 of the paper: "the choice of which edges from ``E' \\ E`` to
include in the communication topology each round is determined by an
adversary called a *link process*", and three classical strength levels
are studied:

* **oblivious** — commits to all link decisions before the execution
  starts, knowing only the network topology and the algorithm
  description;
* **online adaptive** — sees the execution history through round
  ``r - 1`` (and anything derivable from start-of-round state, such as
  the expected transmitter count ``E[|X| | S]``), but *not* the round-r
  coins;
* **offline adaptive** — additionally sees the round-r random choices,
  i.e. the realized transmitter set.

The engine enforces these entitlements *structurally* through typed
views: an oblivious process is handed an :class:`ObliviousView` that
simply contains no execution state. Subclasses declare their class via
:attr:`LinkProcess.adversary_class`, and the engine constructs the
matching view each round.

The chosen topology is returned as a :class:`RoundTopology` — the full
per-node adjacency bitmasks for the round (``G`` plus chosen flaky
edges). Common patterns (all flaky links on, none on, a cut switched
off) are precomputed once and reused, which keeps adversaries O(1) per
round.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.errors import TopologyViolationError
from repro.core.trace import iter_bits
from repro.graphs.dual_graph import DualGraph, Edge, normalize_edge, pack_mask_rows

__all__ = [
    "AdversaryClass",
    "PACKED_ROWS_MAX_N",
    "RoundTopology",
    "ObliviousView",
    "OnlineAdaptiveView",
    "OfflineAdaptiveView",
    "AlgorithmInfo",
    "LinkProcess",
]


#: Above this node count a topology's packed word rows cost more memory
#: (n²/8 bytes per distinct pattern) than the engines save; the bitset
#: resolver switches to candidate scanning in the same regime.
PACKED_ROWS_MAX_N = 16384


class AdversaryClass(enum.Enum):
    """The three adversary strengths of the paper, weakest first."""

    OBLIVIOUS = "oblivious"
    ONLINE_ADAPTIVE = "online-adaptive"
    OFFLINE_ADAPTIVE = "offline-adaptive"

    def at_least(self, other: "AdversaryClass") -> bool:
        """True iff this class is at least as strong as ``other``."""
        order = [
            AdversaryClass.OBLIVIOUS,
            AdversaryClass.ONLINE_ADAPTIVE,
            AdversaryClass.OFFLINE_ADAPTIVE,
        ]
        return order.index(self) >= order.index(other)


@dataclass(frozen=True)
class RoundTopology:
    """The communication topology fixed for one round.

    ``masks[u]`` is the adjacency bitmask of node ``u`` this round. A
    legal topology satisfies ``G ⊆ topology ⊆ G'`` per node; the engine
    validates this when constructed with ``validate=True``.

    Use the factory helpers — they precompute masks once per pattern:

    * :meth:`reliable_only` — no flaky edge participates (bare ``G``);
    * :meth:`all_links` — every flaky edge participates (full ``G'``);
    * :meth:`without_cut` — all flaky edges except those crossing a
      node cut (the dense/sparse attackers' "sparse" pattern);
    * :meth:`from_flaky_edges` — an explicit flaky edge subset.
    """

    masks: tuple[int, ...]
    label: str = "custom"

    @classmethod
    def reliable_only(cls, network: DualGraph) -> "RoundTopology":
        """Only the reliable edges of ``G``."""
        topology = cls(masks=network.g_masks, label="G-only")
        topology._seed_packed_from(network, use_gp=False)
        return topology

    @classmethod
    def all_links(cls, network: DualGraph) -> "RoundTopology":
        """Every potential edge of ``G'``."""
        topology = cls(masks=network.gp_masks, label="G'-all")
        topology._seed_packed_from(network, use_gp=True)
        return topology

    def _seed_packed_from(self, network: DualGraph, *, use_gp: bool) -> None:
        """Adopt the graph's cached word rows for a whole-graph pattern.

        The stock adversaries rebuild the ``G``-only / full-``G'``
        topologies once per trial, but sweeps share one registry-cached
        graph — adopting :meth:`DualGraph.packed_mask_rows` here means
        the pack cost is paid once per graph, not once per trial. Gated
        like :meth:`publish_packed`: above ``PACKED_ROWS_MAX_N`` the
        engines stop consuming packed rows, so nothing is packed.
        """
        if len(self.masks) <= PACKED_ROWS_MAX_N:
            object.__setattr__(
                self, "_packed_rows_cache", network.packed_mask_rows(use_gp=use_gp)
            )

    @classmethod
    def without_cut(cls, network: DualGraph, side_mask: int, *, label: str = "cut-off") -> "RoundTopology":
        """All flaky edges except those crossing the ``side_mask`` cut.

        ``side_mask`` is a bitmask of one side of the cut; flaky edges
        with exactly one endpoint inside it are excluded, all other
        flaky edges are included. Reliable ``G`` edges always remain.
        """
        other = ((1 << network.n) - 1) & ~side_mask
        masks = []
        for u in range(network.n):
            keep = side_mask if (side_mask >> u) & 1 else other
            masks.append(network.g_masks[u] | (network.flaky_masks[u] & keep))
        return cls(masks=tuple(masks), label=label)

    @classmethod
    def from_flaky_edges(
        cls, network: DualGraph, flaky_edges: Iterable[Edge], *, label: str = "edge-set"
    ) -> "RoundTopology":
        """``G`` plus an explicit set of flaky edges.

        Raises :class:`TopologyViolationError` if an edge is not in
        ``G' \\ G`` (adding a ``G`` edge is a no-op, adding a non-``G'``
        edge is illegal).
        """
        masks = list(network.g_masks)
        for u, v in (normalize_edge(a, b) for a, b in flaky_edges):
            if (network.g_masks[u] >> v) & 1:
                continue  # already reliable
            if not (network.gp_masks[u] >> v) & 1:
                raise TopologyViolationError(f"edge ({u}, {v}) is not in G'")
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        return cls(masks=tuple(masks), label=label)

    @classmethod
    def from_active_flaky_nodes(
        cls, network: DualGraph, active_mask: int, *, label: str = "node-fade"
    ) -> "RoundTopology":
        """Node-level fading: a flaky edge is on iff *both* endpoints are active.

        ``active_mask`` marks unfaded nodes. This is the O(n) pattern
        used by the node-level stochastic link processes; it runs every
        round for fading adversaries, so single-word graphs take a
        vectorized route over the network's cached uint64 masks.
        """
        words = network.word_masks()
        if words is not None:
            g_np, flaky_np = words
            active = np.unpackbits(
                np.frombuffer(active_mask.to_bytes(8, "little"), dtype=np.uint8),
                bitorder="little",
                count=network.n,
            ).astype(bool)
            rows = np.where(
                active, g_np | (flaky_np & np.uint64(active_mask)), g_np
            )
            return cls(masks=tuple(rows.tolist()), label=label)
        masks = []
        for u in range(network.n):
            if (active_mask >> u) & 1:
                masks.append(network.g_masks[u] | (network.flaky_masks[u] & active_mask))
            else:
                masks.append(network.g_masks[u])
        return cls(masks=tuple(masks), label=label)

    def packed_rows(self) -> np.ndarray:
        """The masks as a shared ``(n, ⌈n/64⌉)`` uint64 word matrix.

        Built lazily and cached on the (frozen) instance with the same
        ``object.__setattr__`` idiom as :meth:`DualGraph.word_masks`.
        Static and cyclic adversaries reuse one :class:`RoundTopology`
        object across all rounds (and the bank scheduler shares it
        across lanes), so the pack cost is paid once per *pattern* per
        run instead of once per round per lane. Treat the array as
        read-only; it is shared between callers.
        """
        rows = getattr(self, "_packed_rows_cache", None)
        if rows is None:
            rows = pack_mask_rows(self.masks, len(self.masks))
            object.__setattr__(self, "_packed_rows_cache", rows)
        return rows

    def publish_packed(self) -> "RoundTopology":
        """Precompute :meth:`packed_rows` eagerly; returns ``self``.

        Adversaries that mint their whole mask schedule in ``start()``
        call this on each cached topology so the word form exists
        before the first round. A no-op above ``PACKED_ROWS_MAX_N``,
        where the engines stop consuming packed rows.
        """
        if len(self.masks) <= PACKED_ROWS_MAX_N:
            self.packed_rows()
        return self

    def validate(self, network: DualGraph) -> None:
        """Check ``G ⊆ topology ⊆ G'`` and symmetry; raise on violation."""
        if len(self.masks) != network.n:
            raise TopologyViolationError("topology mask count differs from n")
        for u in range(network.n):
            mask = self.masks[u]
            if network.g_masks[u] & ~mask:
                raise TopologyViolationError(
                    f"round topology drops reliable G edges at node {u}"
                )
            if mask & ~network.gp_masks[u]:
                raise TopologyViolationError(
                    f"round topology adds edges outside G' at node {u}"
                )
        for u in range(network.n):
            for v in iter_bits(self.masks[u]):
                if not (self.masks[v] >> u) & 1:
                    raise TopologyViolationError(f"round topology asymmetric at ({u}, {v})")


# ----------------------------------------------------------------------
# Adversary views — the information entitlements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObliviousView:
    """What an oblivious link process may see per round: the clock only."""

    round_index: int


@dataclass(frozen=True)
class OnlineAdaptiveView(ObliviousView):
    """Adds start-of-round (coin-free) information.

    ``transmit_probabilities[u]`` is node ``u``'s declared plan
    probability — a deterministic function of its state ``S`` at the
    start of the round, so ``sum(transmit_probabilities)`` is exactly
    the ``E[|X| | S]`` of Theorem 3.1. ``history`` carries the
    per-round transmitter masks and delivery counts through round
    ``r - 1``.
    """

    transmit_probabilities: Sequence[float] = ()
    history: Sequence["HistoryEntry"] = ()

    def expected_transmitters(self) -> float:
        """The conditional expectation ``E[|X| | S]`` for this round."""
        return float(sum(self.transmit_probabilities))


@dataclass(frozen=True)
class OfflineAdaptiveView(OnlineAdaptiveView):
    """Adds the realized round-r coins: the transmitter set itself."""

    transmitter_mask: int = 0

    def transmitters(self) -> list[int]:
        return list(iter_bits(self.transmitter_mask))


@dataclass(frozen=True)
class HistoryEntry:
    """Compact public history of one past round (for adaptive views)."""

    round_index: int
    transmitter_mask: int
    delivery_count: int


@dataclass(frozen=True)
class AlgorithmInfo:
    """The algorithm description an adversary may study before round 0.

    All three adversary classes know "the algorithm being executed"
    (Section 2). ``name`` and ``metadata`` describe it; ``blueprint``
    is an optional callable ``(ProcessContext) -> Process`` with which
    an *oblivious* adversary may pre-simulate the algorithm on
    (sub)networks of its choosing — the isolated broadcast functions of
    Lemma 4.4 are exactly such pre-simulations.
    """

    name: str
    metadata: dict
    blueprint: Optional[object] = None


class LinkProcess(abc.ABC):
    """Base class for adversarial link processes.

    Lifecycle: the engine calls :meth:`start` once before round 0 with
    the network, the algorithm description, and a private RNG, then
    :meth:`choose_topology` every round with a view matching
    :attr:`adversary_class`.
    """

    #: Information entitlement of this adversary; subclasses override.
    adversary_class: AdversaryClass = AdversaryClass.OBLIVIOUS

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng: random.Random) -> None:
        """Study the network and algorithm; precompute schedules.

        Oblivious subclasses must derive *all* future behavior from the
        arguments of this call (plus the round index).
        """
        self.network = network
        self.algorithm = algorithm
        self.rng = rng

    @abc.abstractmethod
    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        """Fix the communication topology for ``view.round_index``."""

    def next_boundary(self, round_index: int) -> Optional[int]:
        """The skip contract: first round the mask choice can change.

        Returns the first round strictly after ``round_index`` at which
        :meth:`choose_topology` may return different masks, consume
        randomness, or have any other observable side effect; ``None``
        means "fixed forever". Within ``[round_index, boundary)`` the
        round-skipping engines are licensed to *elide* repeated
        :meth:`choose_topology` calls and reuse the round-``r`` masks,
        so an override additionally promises that the elided calls
        would have been pure (no state mutation, no RNG draws).

        Epoch/pattern adversaries report their next phase flip;
        degenerate stochastic ones (``p_up`` pinned to 0 or 1) report
        ``None``; anything that draws per-round randomness or records
        per-call state must keep the default. The default makes no
        promise (the distribution may change next round), which
        disables skipping over this adversary — the safe behavior for
        adaptive processes and third-party subclasses alike.
        """
        return round_index + 1

    def describe(self) -> str:
        """Human-readable label for experiment tables."""
        return f"{type(self).__name__}[{self.adversary_class.value}]"
