"""Structured oblivious interference: cut jammers and moving fades.

Two oblivious adversaries that are *adversarial in structure* (they
target a cut or sweep a region) while remaining execution-independent:

* :class:`PeriodicCutJammer` — alternates between "all flaky links on"
  and "cut severed" on a fixed duty cycle. Against an algorithm whose
  broadcast probabilities are *predictable by the clock* this realizes
  the dense/sparse attack pattern; against permuted decay it is just
  noise — which is precisely the separation the Section 4 upper bounds
  claim.
* :class:`MovingRegionFade` — a disc of radius ``fade_radius`` sweeps
  across the embedding; nodes inside it lose their flaky edges
  (node-level fade). Models a moving interference source / weather
  cell over a geographic deployment.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    RoundTopology,
)
from repro.core.errors import AdversaryUsageError
from repro.graphs.dual_graph import DualGraph

__all__ = ["PeriodicCutJammer", "MovingRegionFade"]


class PeriodicCutJammer(LinkProcess):
    """Square-wave between full ``G'`` and a severed cut.

    Parameters
    ----------
    side_mask:
        Bitmask of one side of the cut to sever during "sparse" phases.
    period:
        Length of the full cycle in rounds.
    dense_rounds:
        How many rounds per cycle run with all links on; the remaining
        ``period - dense_rounds`` rounds sever the cut.
    phase_offset:
        Shifts the cycle start (lets sweeps decorrelate the jammer from
        algorithm phase boundaries).
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, side_mask: int, period: int, dense_rounds: int, *, phase_offset: int = 0) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0 <= dense_rounds <= period:
            raise ValueError("dense_rounds must lie in [0, period]")
        self.side_mask = side_mask
        self.period = period
        self.dense_rounds = dense_rounds
        self.phase_offset = phase_offset

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        self._dense = RoundTopology.all_links(network)
        self._sparse = RoundTopology.without_cut(network, self.side_mask, label="jam-cut")

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        offset = (view.round_index + self.phase_offset) % self.period
        return self._dense if offset < self.dense_rounds else self._sparse

    def next_boundary(self, round_index: int) -> Optional[int]:
        # Pure square wave over two precomputed topologies.
        if self.dense_rounds in (0, self.period):
            return None  # degenerate duty cycle: one topology forever
        offset = (round_index + self.phase_offset) % self.period
        if offset < self.dense_rounds:
            return round_index + (self.dense_rounds - offset)
        return round_index + (self.period - offset)


class MovingRegionFade(LinkProcess):
    """A fading disc sweeping left-to-right across an embedded graph.

    The disc's center moves ``speed`` units per round along the x-axis,
    wrapping around the bounding box; nodes within ``fade_radius`` of
    the center are faded (lose all flaky edges) that round. Requires an
    embedded network (geographic graphs).
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(self, fade_radius: float = 1.5, speed: float = 0.25) -> None:
        if fade_radius < 0:
            raise ValueError("fade_radius must be non-negative")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.fade_radius = fade_radius
        self.speed = speed

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        if network.embedding is None:
            raise AdversaryUsageError("MovingRegionFade requires an embedded network")
        xs = [p[0] for p in network.embedding]
        ys = [p[1] for p in network.embedding]
        self._x_min, self._x_max = min(xs), max(xs)
        self._y_mid = (min(ys) + max(ys)) / 2.0
        self._span = max(self._x_max - self._x_min, 1e-9) + 2 * self.fade_radius

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        cx = self._x_min - self.fade_radius + (view.round_index * self.speed) % self._span
        active_mask = 0
        for u, (x, y) in enumerate(self.network.embedding):
            if math.hypot(x - cx, y - self._y_mid) > self.fade_radius:
                active_mask |= 1 << u
        return RoundTopology.from_active_flaky_nodes(
            self.network, active_mask, label="moving-fade"
        )

    def next_boundary(self, round_index: int) -> Optional[int]:
        # The disc moves every round: a fresh mask every call.
        return round_index + 1


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.registry import cut_mask_for, register_adversary  # noqa: E402


@register_adversary("cut-jammer")
def _spec_cut_jammer(
    ctx, *, period: int, dense_rounds: int, side="first-half", phase_offset: int = 0
) -> PeriodicCutJammer:
    return PeriodicCutJammer(
        cut_mask_for(ctx, side),
        int(period),
        int(dense_rounds),
        phase_offset=int(phase_offset),
    )


@register_adversary("moving-fade")
def _spec_moving_fade(
    ctx, *, fade_radius: float = 1.5, speed: float = 0.25
) -> MovingRegionFade:
    return MovingRegionFade(fade_radius=float(fade_radius), speed=float(speed))
