"""The online adaptive dense/sparse attacker of Theorem 3.1.

The proof of Theorem 3.1 has the adversary label each round by the
*conditional expectation* of the transmitter count given start-of-round
state: with ``E[|X| | S] > c·log β`` the round is **dense** and the
adversary includes *all* ``G'`` edges (any two concurrent transmitters
then collide everywhere — and with high probability a dense round has
at least two); otherwise the round is **sparse** and the adversary
includes *no* ``G'`` edges across the ``A``/``B`` cut, so a message can
cross only over the single secret reliable bridge, which requires the
(unknown) bridge endpoint to transmit while its ``G``-side neighborhood
stays silent.

This is exactly the information an online adaptive link process owns:
the threshold uses the declared transmit probabilities (state-derived,
coin-free); the realized coins are never consulted.

:class:`OnlineDenseSparseAttacker` generalizes the construction to any
cut. Instantiated on the dual clique with ``side_mask = A`` it *is* the
paper's adversary; the experiment harness also points it at the head
cut of bracelet networks and at bridge cuts of line-of-cliques graphs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    OnlineAdaptiveView,
    RoundTopology,
)
from repro.core.errors import AdversaryUsageError
from repro.graphs.dual_graph import DualGraph

__all__ = ["OnlineDenseSparseAttacker", "default_dense_threshold"]


def default_dense_threshold(n: int, *, c: float = 2.0) -> float:
    """The paper's ``c·log`` threshold, base-2, with tunable constant."""
    return c * math.log2(max(n, 2))


class OnlineDenseSparseAttacker(LinkProcess):
    """Threshold the expected transmitter count; flood or sever accordingly.

    Parameters
    ----------
    side_mask:
        Bitmask of one side of the cut to sever in sparse rounds.
    threshold:
        Dense/sparse boundary on ``E[|X| | S]``; defaults to
        ``2·log2 n`` at :meth:`start` when omitted.
    count_scope_mask:
        Optional bitmask restricting *whose* probabilities count toward
        the expectation. The Theorem 4.3 variant of the attack counts
        only the band heads (other nodes have no flaky edges to
        manipulate); ``None`` counts everyone, matching Theorem 3.1 on
        the dual clique where every node is cut-adjacent.
    """

    adversary_class = AdversaryClass.ONLINE_ADAPTIVE

    def __init__(
        self,
        side_mask: int,
        *,
        threshold: Optional[float] = None,
        count_scope_mask: Optional[int] = None,
    ) -> None:
        self.side_mask = side_mask
        self.threshold = threshold
        self.count_scope_mask = count_scope_mask
        #: Per-round labels (True = dense), recorded for analysis/tests.
        self.dense_history: list[bool] = []

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng) -> None:
        super().start(network, algorithm, rng)
        if self.threshold is None:
            self.threshold = default_dense_threshold(network.n)
        self._dense_topology = RoundTopology.all_links(network)
        self._sparse_topology = RoundTopology.without_cut(
            network, self.side_mask, label="dense-sparse-cut"
        )
        self.dense_history = []

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        if not isinstance(view, OnlineAdaptiveView):
            raise AdversaryUsageError(
                "OnlineDenseSparseAttacker needs an online adaptive view; "
                "the engine supplied the wrong class"
            )
        expected = self._expected_in_scope(view)
        dense = expected > self.threshold
        self.dense_history.append(dense)
        return self._dense_topology if dense else self._sparse_topology

    def next_boundary(self, round_index: int) -> Optional[int]:
        # Online adaptive: the dense/sparse label keys on each round's
        # declared probabilities, so the choice can flip every round.
        return round_index + 1

    def _expected_in_scope(self, view: OnlineAdaptiveView) -> float:
        if self.count_scope_mask is None:
            return view.expected_transmitters()
        total = 0.0
        for u, p in enumerate(view.transmit_probabilities):
            if (self.count_scope_mask >> u) & 1:
                total += p
        return total

    def dense_round_fraction(self) -> float:
        """Fraction of observed rounds labelled dense (diagnostics)."""
        if not self.dense_history:
            return 0.0
        return sum(self.dense_history) / len(self.dense_history)


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.registry import cut_mask_for, register_adversary  # noqa: E402


@register_adversary("online-dense-sparse")
def _spec_online_dense_sparse(
    ctx, *, side="A", threshold=None, count_scope=None
) -> OnlineDenseSparseAttacker:
    """``count_scope`` accepts the same selector vocabulary as ``side``
    (a named cut side, a bitmask int, or a node list)."""
    return OnlineDenseSparseAttacker(
        cut_mask_for(ctx, side),
        threshold=None if threshold is None else float(threshold),
        count_scope_mask=(
            None if count_scope is None else cut_mask_for(ctx, count_scope)
        ),
    )
