"""The oblivious bracelet attacker of Theorem 4.3.

An oblivious link process cannot watch the execution — but on the
bracelet network it does not need to. Before round 0 it:

1. builds the isolated broadcast function of every band (Lemma 4.4),
2. evaluates each on a fresh support sequence, yielding a *predicted*
   per-round count of broadcasting heads for the first ``L`` rounds,
3. labels each round **dense** (predicted count > ``c·ln n``) or
   **sparse**, and
4. commits to the schedule: dense rounds turn *all* head-to-head ``G'``
   edges on (two or more broadcasting heads collide at every head);
   sparse rounds turn them all off (a message can cross sides only
   over the secret clasp, whose head broadcasts in that round with the
   small per-round probability a sparse label certifies).

Lemma 4.5 supplies the punchline: because bands evolve independently
until information can cross (at least ``L`` rounds), the *real*
execution's head counts track the predicted ones w.h.p. — dense-labeled
rounds really do have ≥ 2 broadcasters, sparse-labeled rounds really do
have ``O(log n)``. The schedule built from a simulation therefore
classifies the actual run correctly, and receptions across the clasp
stay as rare as β-hitting wins: ``Ω(√n / log n)`` rounds.

Beyond the prediction horizon ``L`` the attacker defaults to dense
(all-on) — the lower bound only needs the first ``L`` rounds, and the
measured quantity (rounds until the clasp receiver is served) is
reported against ``min(measured, L)`` by the harness.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
    RoundTopology,
)
from repro.core.errors import AdversaryUsageError
from repro.core.rng import derive_seed
from repro.games.isolated import IsolatedBroadcastFunction, head_broadcast_counts
from repro.graphs.bracelet import BraceletNetwork
from repro.graphs.dual_graph import DualGraph

__all__ = ["BraceletObliviousAttacker"]


class BraceletObliviousAttacker(LinkProcess):
    """Precomputed dense/sparse schedule from isolated band simulations.

    Parameters
    ----------
    bracelet_network:
        The bracelet structure (bands and heads). Only the *public*
        structure is used — never the secret clasp index, which an
        honest adversary of the reduction does not know either (it is
        the hitting-game target).
    threshold_factor:
        The ``c`` of the ``c·ln n`` dense threshold (default 1.0; the
        paper leaves the constant free and fixes it inside union
        bounds).
    horizon:
        Prediction horizon; defaults to the band length ``L``, the
        validity limit of Lemma 4.4.
    """

    adversary_class = AdversaryClass.OBLIVIOUS

    def __init__(
        self,
        bracelet_network: BraceletNetwork,
        *,
        threshold_factor: float = 1.0,
        horizon: Optional[int] = None,
    ) -> None:
        self.bracelet = bracelet_network
        self.threshold_factor = threshold_factor
        self.horizon = horizon or bracelet_network.band_length
        self.labels: list[bool] = []
        self.predicted_counts: list[int] = []

    def start(self, network: DualGraph, algorithm: AlgorithmInfo, rng: random.Random) -> None:
        super().start(network, algorithm, rng)
        if algorithm.blueprint is None:
            raise AdversaryUsageError(
                "BraceletObliviousAttacker needs the algorithm blueprint "
                "(AlgorithmSpec.info() provides it) to pre-simulate bands"
            )
        from repro.algorithms.base import AlgorithmSpec  # local: avoid cycle

        spec = AlgorithmSpec(
            name=algorithm.name, factory=algorithm.blueprint, metadata=algorithm.metadata
        )
        length = self.bracelet.band_length
        functions = []
        for i in range(length):
            functions.append(
                IsolatedBroadcastFunction(
                    spec=spec,
                    band_nodes=tuple(self.bracelet.band_a(i)),
                    n=network.n,
                    max_degree=network.max_degree,
                    horizon=self.horizon,
                )
            )
        for i in range(length):
            functions.append(
                IsolatedBroadcastFunction(
                    spec=spec,
                    band_nodes=tuple(self.bracelet.band_b(i)),
                    n=network.n,
                    max_degree=network.max_degree,
                    horizon=self.horizon,
                )
            )
        seeds = [
            derive_seed(rng.getrandbits(63), "support", index)
            for index in range(len(functions))
        ]
        self.predicted_counts = head_broadcast_counts(functions, seeds, self.horizon)
        threshold = self.threshold_factor * math.log(max(network.n, 3))
        self.labels = [count > threshold for count in self.predicted_counts]
        self._dense = RoundTopology.all_links(network)
        side_a_mask = 0
        for head in self.bracelet.heads_a():
            side_a_mask |= 1 << head
        # Flaky edges exist only between heads, so severing the A-head
        # side removes every cross link.
        self._sparse = RoundTopology.without_cut(
            network, side_a_mask, label="bracelet-sparse"
        )

    def choose_topology(self, view: ObliviousView) -> RoundTopology:
        r = view.round_index
        dense = self.labels[r] if r < len(self.labels) else True
        return self._dense if dense else self._sparse

    def next_boundary(self, round_index: int) -> Optional[int]:
        # The schedule is committed at start (obliviousness) and
        # choose_topology is a pure lookup, so the masks next change at
        # the end of the current label run — dense forever past the
        # prediction horizon.
        from repro.adversaries.schedule_attack import _label_run_boundary

        return _label_run_boundary(self.labels, True, round_index)

    def dense_round_fraction(self) -> float:
        """Fraction of scheduled rounds labelled dense (diagnostics)."""
        if not self.labels:
            return 0.0
        return sum(self.labels) / len(self.labels)


# ----------------------------------------------------------------------
# Declarative ScenarioSpec registrations
# ----------------------------------------------------------------------
from repro.core.errors import SpecError  # noqa: E402
from repro.registry import register_adversary  # noqa: E402


@register_adversary("bracelet-attacker")
def _spec_bracelet_attacker(
    ctx, *, threshold_factor: float = 1.0, horizon: Optional[int] = None
) -> BraceletObliviousAttacker:
    if not isinstance(ctx.network, BraceletNetwork):
        raise SpecError(
            "bracelet-attacker needs the 'bracelet' graph family "
            f"(got {type(ctx.network).__name__})"
        )
    return BraceletObliviousAttacker(
        ctx.network,
        threshold_factor=float(threshold_factor),
        horizon=None if horizon is None else int(horizon),
    )
