"""Component registries: names → scenario-buildable factories.

The declarative :class:`~repro.api.spec.ScenarioSpec` API names every
piece of a trial — graph family, algorithm, adversary, problem — by a
registry key plus JSON parameters. Component modules register their
spec-facing factories with the decorators defined here::

    from repro.registry import register_graph

    @register_graph("line")
    def _spec_line(ctx, *, n, extra_flaky_skips=0):
        return line_dual(n, extra_flaky_skips=extra_flaky_skips)

A registered factory receives a :class:`ScenarioContext` (trial seed,
plus the already-built components earlier in the build order: graph →
problem → algorithm → adversary) followed by the spec's parameters as
keyword arguments. Factories draw *all* per-trial randomness from
labelled child streams of the context seed (:meth:`ScenarioContext.rng`
/ :meth:`ScenarioContext.derive`) so that a spec plus a seed fully
determines the trial — the property that makes specs safe to fan out
across worker processes.

This module deliberately imports nothing from the component packages;
they import *it*. :func:`ensure_builtins_loaded` performs the reverse
(lazy) imports so that resolving a name never requires callers to have
imported the right module first.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.errors import RegistryError, SpecError
from repro.core.rng import derive_seed

__all__ = [
    "Registry",
    "ScenarioContext",
    "GRAPHS",
    "ALGORITHMS",
    "ADVERSARIES",
    "PROBLEMS",
    "MACS",
    "register_graph",
    "register_algorithm",
    "register_adversary",
    "register_problem",
    "register_mac",
    "ensure_builtins_loaded",
    "cut_mask_for",
]


@dataclass
class ScenarioContext:
    """Mutable build state threaded through a spec's component factories.

    The spec builder fills fields in build order, so each factory sees
    everything built before it: problem factories see the graph,
    algorithm factories see graph + problem (roles such as the source or
    broadcaster set come from the problem), adversary factories see all
    three.
    """

    seed: int
    #: The structured network as returned by the graph factory — may be
    #: a bare DualGraph or a wrapper (DualCliqueNetwork, BraceletNetwork).
    network: Any = None
    #: The engine-facing DualGraph (``network.graph`` when wrapped).
    graph: Any = None
    problem: Any = None
    algorithm: Any = None
    #: The spec's abstract MAC layer (``repro.mac``), built right after
    #: the graph so problems and algorithms can read its guarantees.
    mac: Any = None
    #: The spec's resolved multi-message workload
    #: (:class:`repro.mac.base.MessageAssignment`), or ``None``.
    messages: Any = None

    def derive(self, *labels: object) -> int:
        """Child seed for a named per-trial random consumer."""
        return derive_seed(self.seed, *labels)

    def rng(self, *labels: object) -> random.Random:
        """Labelled per-trial :class:`random.Random` stream."""
        return random.Random(self.derive(*labels))


class Registry:
    """A name → factory mapping for one component kind."""

    def __init__(self, kind: str, *, plural: Optional[str] = None) -> None:
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._factories: dict[str, Callable[..., Any]] = {}
        self._deterministic: set[str] = set()
        self._signatures: dict[str, Optional[inspect.Signature]] = {}

    def register(
        self, name: str, *, deterministic: bool = False
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` under ``name``.

        ``deterministic=True`` promises the factory's output depends
        *only* on its parameters — it never touches the context's seed
        streams — so identical ``(name, params)`` builds are
        interchangeable. The spec builder then shares one immutable
        instance across trials instead of reconstructing (and
        revalidating) it per seed, which removes graph construction
        from the per-trial hot path for the fixed-topology families.
        """
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} registry needs a non-empty string name")

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            existing = self._factories.get(name)
            if existing is not None and existing is not factory:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered "
                    f"({existing.__module__}.{existing.__qualname__})"
                )
            self._factories[name] = factory
            if deterministic:
                self._deterministic.add(name)
            return factory

        return decorator

    def is_deterministic(self, name: str) -> bool:
        """Whether the named factory promised seed-independence."""
        ensure_builtins_loaded()
        return name in self._deterministic

    def get(self, name: str) -> Callable[..., Any]:
        """Resolve a factory by name, loading built-in components first."""
        ensure_builtins_loaded()
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def build(self, name: str, ctx: ScenarioContext, params: dict) -> Any:
        """Invoke the named factory with a context and spec parameters.

        Parameter mismatches are rejected up front via signature
        binding so they read as spec errors naming the component;
        ``TypeError`` raised *inside* a factory body stays a genuine
        bug and propagates unmasked.
        """
        factory = self.get(name)
        try:
            signature = self._signatures[name]
        except KeyError:
            # inspect.signature costs ~0.1ms — too much to repay per
            # trial, so it is resolved once per registered factory.
            try:
                signature = inspect.signature(factory)
            except (TypeError, ValueError):  # C callables etc. — skip the precheck
                signature = None
            self._signatures[name] = signature
        if signature is not None:
            try:
                signature.bind(ctx, **params)
            except TypeError as exc:
                raise RegistryError(
                    f"{self.kind} {name!r} rejected parameters {sorted(params)}: {exc}"
                ) from exc
        return factory(ctx, **params)

    def names(self) -> list[str]:
        ensure_builtins_loaded()
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        ensure_builtins_loaded()
        return name in self._factories


GRAPHS = Registry("graph")
ALGORITHMS = Registry("algorithm")
ADVERSARIES = Registry("adversary", plural="adversaries")
PROBLEMS = Registry("problem")
MACS = Registry("mac", plural="macs")


def register_graph(name: str, *, deterministic: bool = False):
    """Register a graph-family factory ``(ctx, **params) -> network``.

    The factory may return a bare :class:`~repro.graphs.dual_graph.DualGraph`
    or a structured wrapper exposing ``.graph`` (dual clique, bracelet);
    downstream factories see both through the context.

    Pass ``deterministic=True`` only for families whose structure is a
    pure function of the parameters (lines, grids, cliques, …) — never
    for families that draw per-trial secrets (a dual clique's bridge, a
    geographic placement): those must rebuild per seed.
    """
    return GRAPHS.register(name, deterministic=deterministic)


def register_algorithm(name: str):
    """Register an algorithm factory ``(ctx, **params) -> AlgorithmSpec``."""
    return ALGORITHMS.register(name)


def register_adversary(name: str):
    """Register a link-process factory ``(ctx, **params) -> LinkProcess``."""
    return ADVERSARIES.register(name)


def register_problem(name: str):
    """Register a problem factory ``(ctx, **params) -> Problem``."""
    return PROBLEMS.register(name)


def register_mac(name: str):
    """Register a MAC-layer factory ``(ctx, **params) -> AbstractMACLayer``."""
    return MACS.register(name)


_BUILTINS_STATE = "unloaded"  # "unloaded" | "loading" | "loaded"


def ensure_builtins_loaded() -> None:
    """Import the component packages so their registrations run.

    Idempotent and cycle-safe: the component packages import only this
    module's decorators, never the registries' consumers. The "loading"
    state guards re-entrancy during those imports; a failed import
    resets to "unloaded" so the real error resurfaces on retry instead
    of poisoning the registries with empty tables.
    """
    global _BUILTINS_STATE
    if _BUILTINS_STATE != "unloaded":
        return
    _BUILTINS_STATE = "loading"
    try:
        import repro.adversaries  # noqa: F401
        import repro.algorithms  # noqa: F401
        import repro.graphs  # noqa: F401
        import repro.mac  # noqa: F401
        import repro.problems  # noqa: F401

        # Not exported from repro.adversaries (it depends on repro.games,
        # which the package __init__ avoids importing); load it directly.
        import repro.adversaries.bracelet_attack  # noqa: F401
    except BaseException:
        _BUILTINS_STATE = "unloaded"
        raise
    _BUILTINS_STATE = "loaded"


def cut_mask_for(ctx: ScenarioContext, side: object) -> int:
    """Resolve a declarative cut-side selector into a node bitmask.

    Accepted selectors (the JSON-friendly vocabulary cut-based
    adversaries share):

    * ``"A"`` — the structured network's distinguished side: a dual
      clique's side A, a bracelet's A-band heads; falls back to the
      first half of the id space on plain graphs (the convention the
      CLI's ad-hoc trials always used);
    * ``"first-half"`` — nodes ``0 … n/2 - 1`` regardless of structure;
    * an ``int`` — an explicit bitmask, passed through;
    * a list of node ids — converted to a bitmask.
    """
    if isinstance(side, bool):
        raise SpecError(f"invalid cut side selector {side!r}")
    if isinstance(side, int):
        return side
    if isinstance(side, (list, tuple)):
        mask = 0
        for u in side:
            mask |= 1 << int(u)
        return mask
    network = ctx.network
    n = ctx.graph.n
    if side == "A":
        if hasattr(network, "side_a_mask"):
            return network.side_a_mask
        if hasattr(network, "heads_a"):
            mask = 0
            for head in network.heads_a():
                mask |= 1 << head
            return mask
        return (1 << (n // 2)) - 1
    if side == "first-half":
        return (1 << (n // 2)) - 1
    raise SpecError(
        f"invalid cut side selector {side!r}; expected 'A', 'first-half', "
        "a bitmask int, or a node list"
    )
