"""Section 4.1: global broadcast against an oblivious adversary.

The algorithm is [2] with decay swapped for *permuted* decay:

    "The source, provided message m', creates a new message
    m = ⟨m', S⟩, where S is a collection of 32 log² n log log n bits
    generated with uniform and independent randomness after the
    execution begins. In the first round, the source broadcasts m to
    its neighbors. At this point, the source's role in the broadcast is
    finished. For every other node u, on first receiving a message
    ⟨m', S⟩ in round r, it waits until the first round r' ≥ r, where
    r' mod 16 log n = 0, and then calls permuted-decay(m, 16, s),
    2 log n times in a row, where each time s includes
    16 log n log log n new bits from S."

Implementation notes (see DESIGN.md §5.4): epochs are aligned to the
global clock (``epoch = round // (γ log n)``), and the bit chunk for
epoch ``e`` is chunk ``e mod 2 log n`` of ``S``. This keeps every
simultaneous caller on the *same* bits — the precondition of
Lemma 4.2 — regardless of when each node joined, and reuses chunks
cyclically for executions longer than ``2 log n`` epochs (harmless
against an oblivious adversary whose schedule was fixed before ``S``
was drawn).

Also provided: :class:`UncoordinatedDecayGlobalProcess`, the A2
ablation — identical shape, but every node draws its rung *privately*
each round. Without the shared bits, a receiver's neighbors spread
across rungs and the per-round solo probability collapses for large
neighborhoods; the bench shows the coordination is what buys the
``O(D log n + log² n)`` bound.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import AlgorithmSpec, log2_ceil, spec_source
from repro.algorithms.permuted_decay import PermutedDecaySchedule
from repro.core.bits import BitStream
from repro.core.messages import Message, MessageKind
from repro.core.process import SILENT_SIGNATURE, Process, ProcessContext, RoundPlan
from repro.registry import register_algorithm

__all__ = [
    "ObliviousGlobalBroadcastProcess",
    "UncoordinatedDecayGlobalProcess",
    "make_oblivious_global_broadcast",
    "make_uncoordinated_decay_global_broadcast",
]


class ObliviousGlobalBroadcastProcess(Process):
    """One node of the Section 4.1 global broadcast algorithm.

    Parameters
    ----------
    ctx:
        Node context.
    source:
        The designated source node id.
    payload:
        The application payload ``m'``.
    gamma:
        The ``γ`` of permuted decay (paper: 16).
    epochs_per_node:
        How many permuted-decay calls an informed node makes (paper:
        ``2 log n``); ``None`` keeps calling until the engine stops,
        which only helps completion and is the default for experiment
        runs that measure rounds-to-solve.
    num_chunks:
        Number of distinct bit chunks in ``S`` (paper: ``2 log n``).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        source: int,
        payload: object = "m",
        gamma: int = 16,
        epochs_per_node: Optional[int] = None,
        num_chunks: Optional[int] = None,
        schedule: Optional[PermutedDecaySchedule] = None,
    ) -> None:
        super().__init__(ctx)
        self.source = source
        # An immutable schedule can be shared by all n processes of a
        # run (the factory passes one); building it per node is only
        # the fallback for direct construction.
        self.schedule = schedule or PermutedDecaySchedule(
            num_probabilities=log2_ceil(ctx.n), gamma=gamma
        )
        self.num_chunks = num_chunks or 2 * log2_ceil(ctx.n)
        self.epochs_per_node = epochs_per_node
        # Constructor-derived plan inputs, precomputed once: the fast
        # path consults the signature every node-round, so it must not
        # re-walk property chains or re-hash the schedule dataclass.
        self._epoch_len = self.schedule.rounds_per_call
        self._is_source = ctx.node_id == source
        self._static_signature = (
            self.epochs_per_node,
            self.num_chunks,
            self.schedule.num_probabilities,
            self.schedule.gamma,
        )
        self.message: Optional[Message] = None
        self.join_epoch: Optional[int] = None
        self._active_signature: Optional[tuple] = None
        if ctx.node_id == source:
            total_bits = self.schedule.bits_per_call * self.num_chunks
            shared = BitStream.random(ctx.rng, total_bits)
            self.message = Message(
                MessageKind.DATA, origin=source, payload=payload, shared_bits=shared
            )

    #: State only changes on first reception of ⟨m', S⟩; idle and
    #: pure-transmit feedback are both safe to skip.
    idle_feedback_noop = True
    transmit_feedback_noop = True

    @property
    def informed(self) -> bool:
        return self.message is not None

    @property
    def epoch_length(self) -> int:
        """Rounds per epoch: the paper's ``16 log n``."""
        return self.schedule.rounds_per_call

    def plan_signature(self, round_index: int):
        # Lemma 4.2's precondition *is* the sharing structure: every
        # active node reads the same chunk of S for the same epoch, so
        # the round's rung — and the plan — is one computation for the
        # entire informed set, however staggered the join epochs (a
        # finite epochs_per_node budget re-ties the key to the join
        # epoch; see on_feedback, where the key is precomputed).
        if self._is_source:
            return None if round_index == 0 else SILENT_SIGNATURE
        join = self.join_epoch
        if join is None:
            return SILENT_SIGNATURE
        epoch = round_index // self._epoch_len
        if epoch < join:
            return SILENT_SIGNATURE
        if self.epochs_per_node is not None and epoch >= join + self.epochs_per_node:
            return SILENT_SIGNATURE
        return self._active_signature

    def plan_signature_expiry(self, round_index: int):
        # Silent → (announcement) → waiting-for-epoch-boundary →
        # active permuted decay → (budget exhausted).
        if self._is_source:
            return 1 if round_index == 0 else None
        join = self.join_epoch
        if join is None:
            return None  # adoption arrives via feedback
        if round_index < join * self._epoch_len:
            return join * self._epoch_len
        if self.epochs_per_node is None:
            return None
        end = (join + self.epochs_per_node) * self._epoch_len
        return end if round_index < end else None

    def next_state_change(self, round_index: int):
        # The signature is epoch-stable but the *rung* changes every
        # round of an active epoch; only the silent stretches are flat.
        if self._is_source:
            return 1 if round_index == 0 else None
        join = self.join_epoch
        if join is None:
            return None  # adoption arrives via feedback
        if round_index < join * self._epoch_len:
            return join * self._epoch_len
        if self.epochs_per_node is not None:
            end = (join + self.epochs_per_node) * self._epoch_len
            if round_index >= end:
                return None  # budget exhausted; silent for good
        return round_index + 1  # active permuted decay: new rung each round

    def plan(self, round_index: int) -> RoundPlan:
        if self.node_id == self.source:
            if round_index == 0:
                return RoundPlan.certain(self.message)
            return RoundPlan.silence()  # "the source's role ... is finished"
        if self.message is None or self.join_epoch is None:
            return RoundPlan.silence()
        epoch, round_in_epoch = divmod(round_index, self.epoch_length)
        if epoch < self.join_epoch:
            return RoundPlan.silence()
        if self.epochs_per_node is not None and epoch >= self.join_epoch + self.epochs_per_node:
            return RoundPlan.silence()
        shared = self.message.shared_bits
        chunk_offset = (epoch % self.num_chunks) * self.schedule.bits_per_call
        probability = self.schedule.probability(shared, chunk_offset, round_in_epoch)
        return RoundPlan(probability=probability, message=self.message)

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        if self.message is None and received is not None and received.is_data():
            if received.shared_bits is None:
                return  # not a ⟨m', S⟩ message of this algorithm
            self.message = received
            # Wait for the first epoch boundary strictly after this round.
            self.join_epoch = (round_index + 1 + self.epoch_length - 1) // self.epoch_length
            if self.epochs_per_node is not None:
                self._active_signature = (
                    id(received), self.join_epoch, self._static_signature,
                )
            else:
                self._active_signature = (id(received), self._static_signature)


class UncoordinatedDecayGlobalProcess(Process):
    """Ablation: permuted decay without the shared bits.

    Identical ladder and epoch structure, but each node draws its rung
    privately per round. The declared plan probability is the node's
    realized ``2^{-i}`` for the round (drawn in the previous feedback,
    i.e. start-of-round state — keeping the plan contract honest).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        source: int,
        payload: object = "m",
        gamma: int = 16,
    ) -> None:
        super().__init__(ctx)
        self.source = source
        self.num_probabilities = log2_ceil(ctx.n)
        self.gamma = gamma
        self._is_source = ctx.node_id == source
        self.message: Optional[Message] = None
        self.joined = False
        self._next_rung = 1 + ctx.rng.randrange(self.num_probabilities)
        if ctx.node_id == source:
            self.message = Message(MessageKind.DATA, origin=source, payload=payload)

    @property
    def informed(self) -> bool:
        return self.message is not None

    def plan_signature(self, round_index: int):
        # Rungs are private per node — only certain listeners can be
        # shared. idle_feedback_noop stays False: every feedback call
        # redraws the next rung from the node's RNG, so skipping idle
        # rounds would desynchronize the stream.
        if self._is_source:
            return None if round_index == 0 else SILENT_SIGNATURE
        if self.message is None or not self.joined:
            return SILENT_SIGNATURE
        return None

    def plan_signature_expiry(self, round_index: int):
        # Every state transition rides feedback (delivered to this
        # process each round — it is never idle-skipped).
        if self._is_source:
            return 1 if round_index == 0 else None
        return None

    def next_state_change(self, round_index: int):
        # Absent feedback the committed rung stays put, so the plan is
        # clock-stable — but idle_feedback_noop is False, so the engine
        # never actually elides a round for this class.
        if self._is_source:
            return 1 if round_index == 0 else None
        return None

    def plan(self, round_index: int) -> RoundPlan:
        if self.node_id == self.source:
            if round_index == 0:
                return RoundPlan.certain(self.message)
            return RoundPlan.silence()
        if self.message is None or not self.joined:
            return RoundPlan.silence()
        return RoundPlan(
            probability=2.0 ** (-self._next_rung), message=self.message
        )

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        self._next_rung = 1 + self.ctx.rng.randrange(self.num_probabilities)
        if self.message is None and received is not None and received.is_data():
            self.message = received
            self.joined = True
        elif self.message is not None and self.node_id != self.source:
            self.joined = True


def make_oblivious_global_broadcast(
    n: int,
    source: int,
    *,
    payload: object = "m",
    gamma: int = 4,
    epochs_per_node: Optional[int] = None,
    paper_constants: bool = False,
) -> AlgorithmSpec:
    """Spec for the Section 4.1 algorithm.

    ``gamma`` defaults to 4 for laptop-scale sweeps; pass
    ``paper_constants=True`` for the paper's ``γ = 16`` and
    ``2 log n`` epochs per node (see DESIGN.md §5.7).
    """
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    if paper_constants:
        gamma = 16
        epochs_per_node = 2 * log2_ceil(n)
    shared_schedule = PermutedDecaySchedule(
        num_probabilities=log2_ceil(n), gamma=gamma
    )

    def factory(ctx):
        return ObliviousGlobalBroadcastProcess(
            ctx,
            source=source,
            payload=payload,
            gamma=gamma,
            epochs_per_node=epochs_per_node,
            schedule=shared_schedule,
        )

    return AlgorithmSpec(
        name=f"permuted-decay-global(n={n},γ={gamma})",
        factory=factory,
        metadata={
            "family": "permuted-decay",
            "problem": "global-broadcast",
            "source": source,
            "gamma": gamma,
            "epochs_per_node": epochs_per_node,
            "schedule": "hidden (post-start shared bits)",
        },
    )


def make_uncoordinated_decay_global_broadcast(
    n: int,
    source: int,
    *,
    payload: object = "m",
    gamma: int = 4,
) -> AlgorithmSpec:
    """Spec for the uncoordinated ablation variant (A2)."""
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")

    def factory(ctx):
        return UncoordinatedDecayGlobalProcess(
            ctx, source=source, payload=payload, gamma=gamma
        )

    return AlgorithmSpec(
        name=f"uncoordinated-decay-global(n={n})",
        factory=factory,
        metadata={
            "family": "uncoordinated-decay",
            "problem": "global-broadcast",
            "source": source,
            "schedule": "private per-node rungs",
        },
    )


@register_algorithm("permuted-decay")
def _spec_permuted_decay(
    ctx,
    *,
    source: Optional[int] = None,
    payload: object = "m",
    gamma: int = 4,
    epochs_per_node: Optional[int] = None,
    paper_constants: bool = False,
) -> AlgorithmSpec:
    return make_oblivious_global_broadcast(
        ctx.graph.n,
        spec_source(ctx, source),
        payload=payload,
        gamma=int(gamma),
        epochs_per_node=epochs_per_node,
        paper_constants=bool(paper_constants),
    )


@register_algorithm("uncoordinated-decay")
def _spec_uncoordinated_decay(
    ctx,
    *,
    source: Optional[int] = None,
    payload: object = "m",
    gamma: int = 4,
) -> AlgorithmSpec:
    return make_uncoordinated_decay_global_broadcast(
        ctx.graph.n, spec_source(ctx, source), payload=payload, gamma=int(gamma)
    )
