"""Uniform-probability local broadcast: the naive randomized baseline.

Every broadcaster transmits with a fixed probability ``p`` each round
(default ``1/(Δ+1)``). In the static model this solves local broadcast
in ``O(Δ log n)`` expected rounds — a ``Δ/ (log n log Δ)`` factor worse
than decay, which is why the experiment tables include it: it separates
"any randomization" from decay's *ladder*, and in the oblivious rows it
provides a schedule-predictable victim whose constant rate the
dense/sparse attackers classify perfectly (its expected transmitter
count is the same every round).
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.algorithms.base import (
    AlgorithmSpec,
    clamp_probability,
    spec_broadcasters,
    spec_source,
)
from repro.core.messages import Message, MessageKind
from repro.core.process import SILENT_SIGNATURE, Process, ProcessContext, RoundPlan
from repro.registry import register_algorithm

__all__ = [
    "UniformLocalProcess",
    "make_uniform_local_broadcast",
    "UniformGlobalProcess",
    "make_uniform_global_broadcast",
]


class UniformLocalProcess(Process):
    """Broadcaster transmitting at a constant Bernoulli rate."""

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        broadcasters: AbstractSet[int],
        probability: Optional[float] = None,
        payload: object = "m",
    ) -> None:
        super().__init__(ctx)
        self.is_broadcaster = ctx.node_id in broadcasters
        self.probability = (
            clamp_probability(probability)
            if probability is not None
            else 1.0 / (ctx.max_degree + 1)
        )
        self.message: Optional[Message] = None
        if self.is_broadcaster:
            self.message = Message(
                MessageKind.DATA, origin=ctx.node_id, payload=payload
            )

    def plan_signature(self, round_index: int):
        # Broadcasters carry per-node messages (origin = own id), so
        # each forms a singleton class; both roles are permanent.
        if not self.is_broadcaster:
            return SILENT_SIGNATURE
        return (id(self.message), self.probability)

    def plan_signature_expiry(self, round_index: int):
        return None  # roles never change

    def next_state_change(self, round_index: int):
        return None  # constant rate forever, in both roles

    def plan(self, round_index: int) -> RoundPlan:
        if not self.is_broadcaster:
            return RoundPlan.silence()
        return RoundPlan(probability=self.probability, message=self.message)


class UniformGlobalProcess(Process):
    """Global broadcast at a constant per-node rate.

    The source announces in round 0; every informed node then transmits
    with fixed probability ``p``. This family is the *best response* to
    the dense/sparse adversaries, which makes it the right victim for
    measuring the lower-bound rows' shapes:

    * against the **online adaptive** attacker (threshold ``τ`` on
      ``E[|X| | S]``), the optimal rate rides just under the threshold
      (``p ≈ τ/|informed|``), crossing the secret bridge in
      ``Θ(n/τ) = Θ(n / log n)`` rounds — matching the Theorem 3.1 cell;
    * against the **offline adaptive** solo blocker, riding the
      threshold is useless (a solo transmission is what's needed) and
      the optimum falls to ``p ≈ 1/|informed|``, crossing in ``Θ(n)``
      rounds — matching the [11] cell.

    ``rate`` may be a float or a callable ``n ↦ p`` evaluated at
    construction.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        source: int,
        probability: float,
        payload: object = "m",
    ) -> None:
        super().__init__(ctx)
        self.source = source
        self.probability = clamp_probability(probability)
        self.message: Optional[Message] = None
        if ctx.node_id == source:
            self.message = Message(MessageKind.DATA, origin=source, payload=payload)

    #: Only "first data reception" mutates state; idle and
    #: pure-transmit feedback are both skippable.
    idle_feedback_noop = True
    transmit_feedback_noop = True

    @property
    def informed(self) -> bool:
        return self.message is not None

    def plan_signature(self, round_index: int):
        # All informed nodes relay the same message at the same rate.
        if self.message is None:
            return SILENT_SIGNATURE
        if round_index == 0 and self.node_id == self.source:
            return None
        return (id(self.message), self.probability)

    def plan_signature_expiry(self, round_index: int):
        if round_index == 0 and self.message is not None and self.node_id == self.source:
            return 1  # after the announcement the source joins the relays
        return None  # otherwise transitions ride feedback

    def next_state_change(self, round_index: int):
        if round_index == 0 and self.message is not None and self.node_id == self.source:
            return 1  # the round-0 announcement gives way to the constant rate
        return None  # constant rate (or silence) until feedback intervenes

    def plan(self, round_index: int) -> RoundPlan:
        if self.message is None:
            return RoundPlan.silence()
        if round_index == 0 and self.node_id == self.source:
            return RoundPlan.certain(self.message)
        return RoundPlan(probability=self.probability, message=self.message)

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        if self.message is None and received is not None and received.is_data():
            self.message = received


def make_uniform_global_broadcast(
    n: int,
    source: int,
    *,
    probability: float,
    payload: object = "m",
) -> AlgorithmSpec:
    """Spec for constant-rate global broadcast (see
    :class:`UniformGlobalProcess` for how to choose ``probability``)."""
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")

    def factory(ctx):
        return UniformGlobalProcess(
            ctx, source=source, probability=probability, payload=payload
        )

    return AlgorithmSpec(
        name=f"uniform-global(p={probability:.4g})",
        factory=factory,
        metadata={
            "family": "uniform",
            "problem": "global-broadcast",
            "source": source,
            "probability": probability,
        },
    )


def make_uniform_local_broadcast(
    n: int,
    broadcasters: AbstractSet[int],
    max_degree: int,
    *,
    probability: Optional[float] = None,
    payload: object = "m",
) -> AlgorithmSpec:
    """Spec for the constant-rate local broadcast baseline."""
    broadcaster_set = frozenset(broadcasters)
    for b in broadcaster_set:
        if not 0 <= b < n:
            raise ValueError(f"broadcaster {b} outside [0, {n})")
    resolved = probability if probability is not None else 1.0 / (max_degree + 1)

    def factory(ctx):
        return UniformLocalProcess(
            ctx,
            broadcasters=broadcaster_set,
            probability=resolved,
            payload=payload,
        )

    return AlgorithmSpec(
        name=f"uniform-local(p={resolved:.4f})",
        factory=factory,
        metadata={
            "family": "uniform",
            "problem": "local-broadcast",
            "broadcasters": sorted(broadcaster_set),
            "probability": resolved,
        },
    )


@register_algorithm("uniform-global")
def _spec_uniform_global(
    ctx, *, probability: float, source: Optional[int] = None, payload: object = "m"
) -> AlgorithmSpec:
    return make_uniform_global_broadcast(
        ctx.graph.n, spec_source(ctx, source), probability=float(probability), payload=payload
    )


@register_algorithm("uniform-local")
def _spec_uniform_local(
    ctx,
    *,
    broadcasters=None,
    probability: Optional[float] = None,
    payload: object = "m",
) -> AlgorithmSpec:
    return make_uniform_local_broadcast(
        ctx.graph.n,
        spec_broadcasters(ctx, broadcasters),
        ctx.graph.max_degree,
        probability=None if probability is None else float(probability),
        payload=payload,
    )
