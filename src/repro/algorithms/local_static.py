"""Static-model local broadcast: the ``O(log n log Δ)`` algorithm of [8].

Figure 1's last row cites [2, 8] for ``Θ(log n log Δ)`` local broadcast
with no dynamic links: "a slight tweak to the strategy of [2] provides
a local broadcast solution" — every node holding a message cycles the
decay ladder sized to the *neighborhood* bound ``Δ`` rather than ``n``
(a receiver can have at most ``Δ`` broadcasting neighbors), repeated
``O(log n)`` times for the high-probability union bound.

All broadcasters share the public phase clock from round 0, so — like
plain decay — the schedule is clock-predictable, which is exactly why
this algorithm inherits the lower bounds in the adversarial rows and
why it serves as the "strong static baseline" victim for the dense/
sparse attackers in E4/E6/E8.
"""

from __future__ import annotations

from functools import partial
from typing import AbstractSet, Optional

from repro.algorithms.base import AlgorithmSpec, log2_ceil, spec_broadcasters
from repro.algorithms.decay import decay_probability
from repro.core.messages import Message, MessageKind
from repro.core.process import SILENT_SIGNATURE, Process, ProcessContext, RoundPlan
from repro.registry import register_algorithm

__all__ = ["StaticLocalDecayProcess", "make_static_local_broadcast"]


class StaticLocalDecayProcess(Process):
    """One node of [8]-style local broadcast.

    Nodes in the broadcast set ``B`` transmit with the ladder
    probability ``2^{-(r mod phase_length)-1}`` every round; everyone
    else listens. ``phase_length`` defaults to ``log2_ceil(Δ + 1)``
    so the ladder reaches ``~1/Δ``.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        broadcasters: AbstractSet[int],
        payload: object = "m",
        phase_length: Optional[int] = None,
    ) -> None:
        self.ctx = ctx  # inlined Process.__init__: built 10⁴ times per bench trial
        self.is_broadcaster = ctx.node_id in broadcasters
        self.phase_length = phase_length or log2_ceil(ctx.max_degree + 1)
        self.message: Optional[Message] = None
        if self.is_broadcaster:
            self.message = Message(
                MessageKind.DATA, origin=ctx.node_id, payload=payload
            )

    def plan_signature(self, round_index: int):
        # Broadcasters share the public ladder but not their messages
        # (origin = own id), so each forms a permanent singleton class;
        # the silent majority is one shared class.
        if not self.is_broadcaster:
            return SILENT_SIGNATURE
        return (id(self.message), self.phase_length)

    def plan_signature_expiry(self, round_index: int):
        return None  # roles never change

    def next_state_change(self, round_index: int):
        if not self.is_broadcaster:
            return None  # listeners listen forever
        if self.phase_length == 1:
            return None  # degenerate ladder: constant probability 1/2
        return round_index + 1  # a new ladder rung every round

    def plan(self, round_index: int) -> RoundPlan:
        if not self.is_broadcaster:
            return RoundPlan.silence()
        j = round_index % self.phase_length
        return RoundPlan(
            probability=decay_probability(j, self.phase_length), message=self.message
        )


def make_static_local_broadcast(
    n: int,
    broadcasters: AbstractSet[int],
    max_degree: int,
    *,
    payload: object = "m",
    phase_length: Optional[int] = None,
) -> AlgorithmSpec:
    """Spec for [8]-style local broadcast with broadcaster set ``B``."""
    broadcaster_set = frozenset(broadcasters)
    for b in broadcaster_set:
        if not 0 <= b < n:
            raise ValueError(f"broadcaster {b} outside [0, {n})")
    resolved_phase = phase_length or log2_ceil(max_degree + 1)

    # ``partial`` instead of a closure: the factory runs once per node
    # and the C-level call shaves a Python frame off each construction.
    factory = partial(
        StaticLocalDecayProcess,
        broadcasters=broadcaster_set,
        payload=payload,
        phase_length=resolved_phase,
    )

    return AlgorithmSpec(
        name=f"static-local-decay(|B|={len(broadcaster_set)})",
        factory=factory,
        metadata={
            "family": "decay",
            "problem": "local-broadcast",
            "broadcasters": sorted(broadcaster_set),
            "phase_length": resolved_phase,
            "schedule": "public",
        },
    )


@register_algorithm("static-local-decay")
def _spec_static_local_decay(
    ctx,
    *,
    broadcasters=None,
    ladder_delta: Optional[int] = None,
    payload: object = "m",
    phase_length: Optional[int] = None,
) -> AlgorithmSpec:
    """[8]-style local decay; ``ladder_delta`` overrides the Δ the
    probability ladder descends to (``1`` gives the E2b "ladderless"
    ablation), defaulting to the built graph's max degree."""
    delta = ctx.graph.max_degree if ladder_delta is None else int(ladder_delta)
    return make_static_local_broadcast(
        ctx.graph.n,
        spec_broadcasters(ctx, broadcasters),
        delta,
        payload=payload,
        phase_length=phase_length,
    )
