"""Shared algorithm plumbing: specs, factories, and integer-log helpers.

An :class:`AlgorithmSpec` bundles a named process factory with
metadata. Factories receive a :class:`~repro.core.process.ProcessContext`
(node id, ``n``, ``Δ``, private RNG) and return the node's process —
so the *roles* of an experiment (which node is the global source, which
nodes form the local broadcast set ``B``) are baked into the spec by
the experiment code, never discovered from the topology by the process
itself (processes must not see the graph; Section 2 makes the
node-to-process assignment adversarial and unknown).

The spec also exposes :meth:`AlgorithmSpec.build_processes` and an
engine-ready :class:`~repro.adversaries.base.AlgorithmInfo` whose
``blueprint`` lets *oblivious* adversaries pre-simulate the algorithm
(Lemma 4.4's isolated broadcast functions need exactly this handle).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.adversaries.base import AlgorithmInfo
from repro.core.errors import SpecError
from repro.core.process import Process, ProcessContext
from repro.core.rng import LazyRng

__all__ = [
    "AlgorithmSpec",
    "ProcessFactory",
    "log2_ceil",
    "clamp_probability",
    "spec_source",
    "spec_broadcasters",
]

ProcessFactory = Callable[[ProcessContext], Process]


def log2_ceil(value: int) -> int:
    """``max(1, ⌈log2(value)⌉)`` — the paper's ``log n`` as an integer.

    The paper assumes ``n`` is a power of two and ``log`` is base 2;
    for other sizes we round up, and we floor the result at 1 so that
    probability ladders like ``{1/2, …, 2^{-log n}}`` are never empty.
    """
    if value < 1:
        raise ValueError(f"log2_ceil needs a positive value, got {value}")
    return max(1, math.ceil(math.log2(value))) if value > 1 else 1


def clamp_probability(p: float) -> float:
    """Clamp a computed probability into ``[0, 1]`` (guards float drift)."""
    return min(1.0, max(0.0, p))


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named, role-bound algorithm ready to instantiate per node.

    Attributes
    ----------
    name:
        Human-readable identifier used in tables and traces.
    factory:
        Builds the node process for a given context.
    metadata:
        Free-form description (constants used, problem roles) surfaced
        to adversaries via :class:`AlgorithmInfo` — adversaries know
        "the algorithm being executed" in every model variant.
    """

    name: str
    factory: ProcessFactory
    metadata: dict = field(default_factory=dict)

    def build_processes(
        self,
        n: int,
        max_degree: int,
        *,
        seed: int,
        rng_label: object = "process",
    ) -> list[Process]:
        """Instantiate one process per node with derived private RNGs.

        The per-node streams are lazy (:class:`~repro.core.rng.LazyRng`):
        derivation and Mersenne Twister seeding — the dominant cost of
        constructing thousands of mostly coin-free processes per trial —
        happen only for nodes that actually draw, with draws
        bit-identical to eager streams. The loop itself is deliberately
        lean (bound factory, positional context, inlined LazyRng): at
        bench scale it constructs 10⁴ processes per trial and shows up
        in cell timings.
        """
        factory = self.factory
        processes = []
        append = processes.append
        for node_id in range(n):
            append(
                factory(
                    ProcessContext(
                        node_id, n, max_degree, LazyRng(seed, (rng_label, node_id))
                    )
                )
            )
        return processes

    def build_process(self, ctx: ProcessContext) -> Process:
        """Instantiate the process for one explicit context (sub-simulations)."""
        return self.factory(ctx)

    def info(self) -> AlgorithmInfo:
        """Engine-ready algorithm description (handed to the adversary)."""
        return AlgorithmInfo(name=self.name, metadata=dict(self.metadata), blueprint=self.factory)


def role_set(nodes: Sequence[int]) -> frozenset[int]:
    """Normalize a role collection (source set / broadcaster set ``B``)."""
    return frozenset(int(u) for u in nodes)


def make_spec(
    name: str,
    factory: ProcessFactory,
    *,
    metadata: Optional[dict] = None,
) -> AlgorithmSpec:
    """Convenience constructor mirroring :class:`AlgorithmSpec`."""
    return AlgorithmSpec(name=name, factory=factory, metadata=metadata or {})


# ----------------------------------------------------------------------
# Role resolution for registered (ScenarioSpec-facing) factories
# ----------------------------------------------------------------------
def spec_source(ctx, source: Optional[int] = None) -> int:
    """A global algorithm's source: explicit param, else the problem's."""
    if source is not None:
        return int(source)
    problem_source = getattr(getattr(ctx, "problem", None), "source", None)
    if problem_source is None:
        raise SpecError(
            "global algorithm needs a source: pass params.source or pair it "
            "with a global-broadcast problem"
        )
    return int(problem_source)


def spec_broadcasters(ctx, broadcasters=None) -> frozenset[int]:
    """A local algorithm's set ``B``: explicit param, else the problem's."""
    if broadcasters is not None:
        return frozenset(int(b) for b in broadcasters)
    problem_b = getattr(getattr(ctx, "problem", None), "broadcasters", None)
    if problem_b is None:
        raise SpecError(
            "local algorithm needs broadcasters: pass params.broadcasters or "
            "pair it with a local-broadcast problem"
        )
    return frozenset(problem_b)
