"""Section 4.3: local broadcast in geographic graphs, oblivious model.

The algorithm runs two stages.

**Initialization** ("locally disseminates shared randomness to
coordinate nearby nodes"): rounds are divided into ``log Δ`` phases of
``O(log² n)`` rounds. All nodes start *active*. In the first round of
phase ``i`` each active node elects itself leader with probability
``2^{-(log Δ − i + 1)}`` (the ladder ``1/Δ, 2/Δ, …, 1/4, 1/2`` as the
phases advance). A leader draws a *seed* — a fresh random bit string —
commits to it, and for the rest of the phase broadcasts it with
probability ``1/log n`` per round. At the end of the phase leaders go
inactive; every active non-leader that received at least one seed
commits to the first seed it received and goes inactive too. Nodes
still active after the last phase commit to a self-generated seed.

The doubling ladder is what keeps seed contention bounded: before a
region's election probability mass can grow past ``Θ(log n)`` expected
leaders, the region passes through a phase with ``Θ(log n)`` leaders
whose seeds — facing only ``O(log n)`` competing leaders in ``G'``
range (the region decomposition's constant ``γ_r``) — reach everyone in
the region w.h.p. and deactivate it (Lemmas 4.7–4.9).

**Broadcast**: each node of ``B`` runs permuted-decay iterations. Per
iteration it *participates* with probability ``1/log n``, deciding with
bits from its seed, and participating nodes run the whole call with
permutation bits also from the seed — so all same-seed nodes move in
lockstep, recreating Lemma 4.2's precondition locally. A receiver
neighbors ``O(log n)`` distinct seeds w.h.p., one of which goes solo
with probability ``Ω(1/log n)`` per iteration, and then delivers with
probability > 1/2 — hence ``O(log² n)`` iterations overall.

Ladder width: rungs span ``[1, log Δ]`` (not ``log n``) — neighborhood
sizes are capped by ``Δ`` — which is what makes the total
``O(log² n · log Δ)`` (DESIGN.md §5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional

from repro.algorithms.base import AlgorithmSpec, log2_ceil, spec_broadcasters
from repro.algorithms.permuted_decay import PermutedDecaySchedule
from repro.core.bits import BitStream, bits_for_uniform
from repro.core.messages import Message, MessageKind
from repro.core.process import Process, ProcessContext, RoundPlan
from repro.registry import register_algorithm

__all__ = [
    "GeoLocalBroadcastParams",
    "GeoLocalBroadcastProcess",
    "make_geographic_local_broadcast",
]


@dataclass(frozen=True)
class GeoLocalBroadcastParams:
    """Resolved constants for one instantiation of the algorithm.

    Derived via :meth:`resolve`; every process of a run shares one
    instance so stage boundaries and bit layouts agree network-wide.
    """

    n: int
    max_degree: int
    log_n: int
    num_phases: int          # log Δ initialization phases
    phase_rounds: int        # rounds per initialization phase, O(log² n)
    num_iterations: int      # broadcast-stage decay iterations, O(log² n)
    schedule: PermutedDecaySchedule
    seed_iteration_bits: int  # bits one iteration consumes from a seed
    seed_total_bits: int      # full seed length

    @classmethod
    def resolve(
        cls,
        n: int,
        max_degree: int,
        *,
        gamma: int = 4,
        init_rounds_factor: float = 3.0,
        iterations_factor: float = 3.0,
        paper_constants: bool = False,
    ) -> "GeoLocalBroadcastParams":
        """Compute the constants for network size ``n`` and degree ``Δ``.

        ``paper_constants=True`` selects ``γ = 16`` and larger stage
        factors matching the proof's comfort margins; the defaults are
        tuned so laptop-scale sweeps finish while preserving the
        ``log² n log Δ`` shape.
        """
        if paper_constants:
            gamma = 16
            init_rounds_factor = 8.0
            iterations_factor = 8.0
        log_n = log2_ceil(n)
        num_phases = log2_ceil(max_degree + 1)
        phase_rounds = max(2, round(init_rounds_factor * log_n * log_n) + 1)
        num_iterations = max(1, round(iterations_factor * log_n * log_n))
        schedule = PermutedDecaySchedule(
            num_probabilities=log2_ceil(max_degree + 1), gamma=gamma
        )
        participate_bits = bits_for_uniform(log_n)
        seed_iteration_bits = participate_bits + schedule.bits_per_call
        return cls(
            n=n,
            max_degree=max_degree,
            log_n=log_n,
            num_phases=num_phases,
            phase_rounds=phase_rounds,
            num_iterations=num_iterations,
            schedule=schedule,
            seed_iteration_bits=seed_iteration_bits,
            seed_total_bits=seed_iteration_bits * num_iterations,
        )

    @property
    def init_stage_rounds(self) -> int:
        """Total initialization rounds: ``log Δ`` phases × ``O(log² n)``."""
        return self.num_phases * self.phase_rounds

    @property
    def broadcast_stage_rounds(self) -> int:
        """Total broadcast rounds: ``O(log² n)`` iterations × ``γ log Δ``."""
        return self.num_iterations * self.schedule.rounds_per_call

    @property
    def total_rounds(self) -> int:
        """One full pass of the algorithm (it cycles afterwards)."""
        return self.init_stage_rounds + self.broadcast_stage_rounds

    def leader_probability(self, phase: int) -> float:
        """Election probability for 0-indexed phase ``i``: ``2^{-(P - i)}``.

        Phase 0 uses ``2^{-num_phases}`` (≈ ``1/Δ``), the last phase
        uses ``1/2`` — the paper's doubling ladder.
        """
        if not 0 <= phase < self.num_phases:
            raise ValueError(f"phase {phase} outside [0, {self.num_phases})")
        return 2.0 ** (-(self.num_phases - phase))

    def locate(self, round_index: int) -> tuple[str, int, int]:
        """Map an absolute round to ``(stage, block, offset)``.

        ``("init", phase, round_in_phase)`` during initialization, else
        ``("broadcast", iteration, round_in_iteration)``; the broadcast
        stage cycles modulo its iteration budget so executions longer
        than one pass keep a consistent bit layout.
        """
        if round_index < self.init_stage_rounds:
            phase, offset = divmod(round_index, self.phase_rounds)
            return ("init", phase, offset)
        rounds_in = (round_index - self.init_stage_rounds) % self.broadcast_stage_rounds
        iteration, offset = divmod(rounds_in, self.schedule.rounds_per_call)
        return ("broadcast", iteration, offset)


class GeoLocalBroadcastProcess(Process):
    """One node of the Section 4.3 algorithm."""

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        params: GeoLocalBroadcastParams,
        broadcasters: AbstractSet[int],
        payload: object = "m",
        share_seeds: bool = True,
        always_participate: bool = False,
    ) -> None:
        super().__init__(ctx)
        self.params = params
        self.is_broadcaster = ctx.node_id in broadcasters
        self.share_seeds = share_seeds
        self.always_participate = always_participate
        self.active = True
        self.is_leader = False
        self.seed: Optional[BitStream] = None
        self.seed_is_own = False
        self._received_seed_this_phase: Optional[BitStream] = None
        self._seed_message: Optional[Message] = None
        self.data_message: Optional[Message] = None
        if self.is_broadcaster:
            self.data_message = Message(
                MessageKind.DATA, origin=ctx.node_id, payload=payload
            )

    # ------------------------------------------------------------------
    # Seed helpers
    # ------------------------------------------------------------------
    def _generate_own_seed(self) -> None:
        self.seed = BitStream.random(
            self.ctx.rng, self.params.seed_total_bits, cyclic=True
        )
        self.seed_is_own = True

    def _commit(self, seed: BitStream) -> None:
        self.seed = seed
        self.active = False

    # ------------------------------------------------------------------
    # Round behavior
    # ------------------------------------------------------------------
    def next_state_change(self, round_index: int):
        # The plan walks stage/phase/iteration structure every round
        # and feedback draws election coins — never claim stability.
        return round_index + 1

    def plan(self, round_index: int) -> RoundPlan:
        stage, block, offset = self.params.locate(round_index)
        if stage == "init":
            return self._plan_init(block, offset)
        return self._plan_broadcast(block, offset)

    def _plan_init(self, phase: int, offset: int) -> RoundPlan:
        if not self.share_seeds:
            return RoundPlan.silence()  # ablation: stage disabled entirely
        if not (self.is_leader and self.active):
            return RoundPlan.silence()
        if offset == 0:
            return RoundPlan.silence()  # election round: nobody transmits
        return RoundPlan(
            probability=1.0 / self.params.log_n, message=self._seed_message
        )

    def _plan_broadcast(self, iteration: int, offset: int) -> RoundPlan:
        if not self.is_broadcaster or self.seed is None:
            return RoundPlan.silence()
        base = iteration * self.params.seed_iteration_bits
        participates = (
            self.always_participate
            or self.seed.uniform_at(base, self.params.log_n) == 0
        )
        if not participates:
            return RoundPlan.silence()
        chunk_offset = base + bits_for_uniform(self.params.log_n)
        probability = self.params.schedule.probability(self.seed, chunk_offset, offset)
        return RoundPlan(probability=probability, message=self.data_message)

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        stage, phase, offset = self.params.locate(round_index)
        if stage != "init" or not self.share_seeds:
            return
        if offset == 0 and self.active:
            # Election round just ran (silently): flip the leader coin.
            if self.ctx.rng.random() < self.params.leader_probability(phase):
                self.is_leader = True
                self._generate_own_seed()
                self._seed_message = Message(
                    MessageKind.SEED,
                    origin=self.node_id,
                    payload=None,
                    shared_bits=self.seed,
                    tag=phase,
                )
        if (
            self.active
            and not self.is_leader
            and self._received_seed_this_phase is None
            and received is not None
            and received.is_seed()
            and received.shared_bits is not None
        ):
            self._received_seed_this_phase = received.shared_bits
        if offset == self.params.phase_rounds - 1:
            self._end_phase(phase)

    def _end_phase(self, phase: int) -> None:
        if self.is_leader:
            self.active = False
            self.is_leader = False
        elif self.active and self._received_seed_this_phase is not None:
            self._commit(self._received_seed_this_phase)
        self._received_seed_this_phase = None
        if phase == self.params.num_phases - 1 and (self.active or self.seed is None):
            # End of the stage: uncommitted nodes self-seed.
            self._generate_own_seed()
            self.active = False

    def describe_state(self) -> str:
        seed = "own" if self.seed_is_own else ("adopted" if self.seed else "none")
        return (
            f"GeoLocal(node={self.node_id}, B={self.is_broadcaster}, "
            f"active={self.active}, seed={seed})"
        )


def make_geographic_local_broadcast(
    n: int,
    broadcasters: AbstractSet[int],
    max_degree: int,
    *,
    payload: object = "m",
    gamma: int = 4,
    init_rounds_factor: float = 3.0,
    iterations_factor: float = 3.0,
    paper_constants: bool = False,
    share_seeds: bool = True,
    always_participate: bool = False,
) -> AlgorithmSpec:
    """Spec for the Section 4.3 algorithm.

    Ablation knobs (A3):

    * ``share_seeds=False`` skips the initialization stage — every
      broadcaster self-seeds and becomes its own singleton "seed
      class". Per-round rung randomness still thins traffic, so this
      alone degrades gracefully at moderate ``Δ``.
    * ``always_participate=True`` additionally removes the per-iteration
      participation lottery. Combined with ``share_seeds=False`` this is
      the *naive* variant — every broadcaster independently runs the
      Section 4.1 permuted-decay subroutine with private bits, i.e. the
      global-broadcast strategy applied verbatim to local broadcast,
      which Section 4.2 explains cannot work: with ``Θ(Δ)``
      uncoordinated senders in range, the solo-transmission probability
      collapses exponentially in ``Δ / (log n log Δ)``.
    """
    broadcaster_set = frozenset(broadcasters)
    for b in broadcaster_set:
        if not 0 <= b < n:
            raise ValueError(f"broadcaster {b} outside [0, {n})")
    params = GeoLocalBroadcastParams.resolve(
        n,
        max_degree,
        gamma=gamma,
        init_rounds_factor=init_rounds_factor,
        iterations_factor=iterations_factor,
        paper_constants=paper_constants,
    )

    def factory(ctx):
        process = GeoLocalBroadcastProcess(
            ctx,
            params=params,
            broadcasters=broadcaster_set,
            payload=payload,
            share_seeds=share_seeds,
            always_participate=always_participate,
        )
        if not share_seeds:
            # Ablation: self-seed immediately; broadcast stage timing
            # is unchanged so round counts stay comparable.
            process._generate_own_seed()
            process.active = False
        return process

    variant = "shared" if share_seeds else "unshared"
    if always_participate:
        variant += "+always"
    return AlgorithmSpec(
        name=f"geo-local-broadcast(|B|={len(broadcaster_set)},{variant})",
        factory=factory,
        metadata={
            "family": "permuted-decay",
            "problem": "local-broadcast",
            "broadcasters": sorted(broadcaster_set),
            "num_phases": params.num_phases,
            "phase_rounds": params.phase_rounds,
            "num_iterations": params.num_iterations,
            "gamma": params.schedule.gamma,
            "share_seeds": share_seeds,
            "init_stage_rounds": params.init_stage_rounds,
        },
    )


@register_algorithm("geo-local")
def _spec_geo_local(
    ctx,
    *,
    broadcasters=None,
    payload: object = "m",
    gamma: int = 4,
    init_rounds_factor: float = 3.0,
    iterations_factor: float = 3.0,
    paper_constants: bool = False,
    share_seeds: bool = True,
    always_participate: bool = False,
) -> AlgorithmSpec:
    return make_geographic_local_broadcast(
        ctx.graph.n,
        spec_broadcasters(ctx, broadcasters),
        ctx.graph.max_degree,
        payload=payload,
        gamma=int(gamma),
        init_rounds_factor=float(init_rounds_factor),
        iterations_factor=float(iterations_factor),
        paper_constants=bool(paper_constants),
        share_seeds=bool(share_seeds),
        always_participate=bool(always_participate),
    )
