"""The paper's broadcast algorithms and baselines.

Upper bounds from the paper:

* :func:`make_plain_decay_global_broadcast` — [2]'s decay broadcast
  (static-model optimal up to constants; breaks under adaptive and
  schedule-predicting adversaries).
* :func:`make_oblivious_global_broadcast` — Section 4.1's permuted
  decay broadcast, ``O(D log n + log² n)`` against any oblivious link
  process.
* :func:`make_static_local_broadcast` — [8]'s ``O(log n log Δ)`` local
  broadcast for the static model.
* :func:`make_geographic_local_broadcast` — Section 4.3's two-stage
  ``O(log² n log Δ)`` local broadcast for geographic graphs.

Baselines and ablations:

* :func:`make_round_robin_local_broadcast` / ``…_global_…`` — the
  footnote-4/5 adversary-proof ``O(n)`` / ``O(nD)`` schedules.
* :func:`make_uniform_local_broadcast` — constant-rate randomization.
* :func:`make_uncoordinated_decay_global_broadcast` — permuted decay
  without the shared bits (what the coordination buys).
"""

from repro.algorithms.base import AlgorithmSpec, ProcessFactory, log2_ceil, make_spec
from repro.algorithms.decay import (
    PlainDecayGlobalProcess,
    decay_probability,
    make_plain_decay_global_broadcast,
)
from repro.algorithms.global_broadcast import (
    ObliviousGlobalBroadcastProcess,
    UncoordinatedDecayGlobalProcess,
    make_oblivious_global_broadcast,
    make_uncoordinated_decay_global_broadcast,
)
from repro.algorithms.local_geographic import (
    GeoLocalBroadcastParams,
    GeoLocalBroadcastProcess,
    make_geographic_local_broadcast,
)
from repro.algorithms.local_static import (
    StaticLocalDecayProcess,
    make_static_local_broadcast,
)
from repro.algorithms.multi_message import (
    BackoffMultiMessageProcess,
    GklnMultiMessageProcess,
    make_backoff_multi_message,
    make_gkln_multi_message,
)
from repro.algorithms.permuted_decay import PermutedDecaySchedule
from repro.algorithms.round_robin import (
    RoundRobinGlobalProcess,
    RoundRobinLocalProcess,
    make_round_robin_global_broadcast,
    make_round_robin_local_broadcast,
)
from repro.algorithms.uniform import (
    UniformGlobalProcess,
    UniformLocalProcess,
    make_uniform_global_broadcast,
    make_uniform_local_broadcast,
)

__all__ = [
    "AlgorithmSpec",
    "ProcessFactory",
    "log2_ceil",
    "make_spec",
    "decay_probability",
    "PlainDecayGlobalProcess",
    "make_plain_decay_global_broadcast",
    "PermutedDecaySchedule",
    "ObliviousGlobalBroadcastProcess",
    "UncoordinatedDecayGlobalProcess",
    "make_oblivious_global_broadcast",
    "make_uncoordinated_decay_global_broadcast",
    "StaticLocalDecayProcess",
    "make_static_local_broadcast",
    "GeoLocalBroadcastParams",
    "GeoLocalBroadcastProcess",
    "make_geographic_local_broadcast",
    "RoundRobinLocalProcess",
    "RoundRobinGlobalProcess",
    "make_round_robin_local_broadcast",
    "make_round_robin_global_broadcast",
    "UniformLocalProcess",
    "make_uniform_local_broadcast",
    "UniformGlobalProcess",
    "make_uniform_global_broadcast",
    "GklnMultiMessageProcess",
    "BackoffMultiMessageProcess",
    "make_gkln_multi_message",
    "make_backoff_multi_message",
]
