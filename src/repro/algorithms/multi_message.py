"""MAC-level multi-message protocols: GKLN queueing and simple back-off.

Two dissemination strategies for the multi-message broadcast problem,
both executed as ordinary :class:`~repro.core.process.Process` state
machines on the radio engines (the *simulated* MAC realization — see
:mod:`repro.mac.simulated`):

* :class:`GklnMultiMessageProcess` (``"gkln-multi-message"``) — the
  GKLN Basic Multi-Message Broadcast discipline: relay every newly
  learned message exactly once, FIFO, one ``bcast`` at a time; a
  bcast occupies one MAC **ack window** (``f_ack`` rounds of decay
  ladder contention resolution), and the next queued message starts
  when the previous window's local acknowledgment fires. Its oracle
  counterpart serializes service slots the same way
  (``mac_discipline: "queued"``).
* :class:`BackoffMultiMessageProcess` (``"backoff-multi-message"``) —
  the Gilbert–Lynch–Newport–Pajak style *simple back-off*: no ack
  pacing at all; every node holding messages transmits each round with
  a back-off probability (fixed, or halving per quiet epoch) and
  rotates deterministically through its whole knowledge set. All
  messages share the channel concurrently
  (``mac_discipline: "concurrent"``).

Both processes keep their transition rule a pure function of
``(feedback history, round index)``: time-driven transitions (window
expiry, back-off epochs) are *derived* lazily by an idempotent
``_advance(r)`` normalization instead of being pushed by per-round
feedback, which is what licenses ``idle_feedback_noop`` /
``transmit_feedback_noop`` and keeps the bitset engine's incremental
signature tracking exact (``tests/test_engine_equivalence.py`` holds
both protocols to full-trace identity across engines).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.algorithms.base import AlgorithmSpec, clamp_probability, log2_ceil
from repro.core.messages import Message, MessageKind
from repro.core.process import SILENT_SIGNATURE, Process, ProcessContext, RoundPlan
from repro.mac.base import MessageAssignment, spec_messages
from repro.mac.simulated import SimulatedMACLayer
from repro.registry import register_algorithm

__all__ = [
    "GklnMultiMessageProcess",
    "BackoffMultiMessageProcess",
    "make_gkln_multi_message",
    "make_backoff_multi_message",
]


def _initial_messages(ctx: ProcessContext, assignment: MessageAssignment) -> list[Message]:
    """The messages this node originates, as fresh DATA messages."""
    return [
        Message(
            MessageKind.DATA,
            origin=ctx.node_id,
            payload=assignment.payload(index),
            tag=index,
        )
        for index in assignment.indices_at(ctx.node_id)
    ]


class GklnMultiMessageProcess(Process):
    """One node of the GKLN queued multi-message discipline.

    State: the set of known message payloads, a FIFO of messages not
    yet acknowledged, and the round the head's ack window opened.
    Window expiry (the local MAC acknowledgment) is time-driven, so
    :meth:`_advance` folds any number of elapsed windows into the
    queue before every state read — idempotent, monotone in ``r``, and
    therefore safe to call from ``plan``/``plan_signature`` on both
    engines.

    The abstract MAC contract acks a ``bcast`` only once every
    ``G``-neighbor holds it; the simulated realization's time-based
    ack is *optimistic* — a window can elapse without reaching a faded
    neighbor, and a one-shot relay would then strand the message
    forever. The realization therefore keeps acknowledged messages
    available at a low background duty cycle
    (``persist_probability``, default ``1/(2(Δ+1))``): once the queue
    drains, the node rotates through everything it knows at that rate,
    which restores the layer's eventual-delivery guarantee without
    materially changing the ack-paced completion times the ``M*``
    experiments measure.
    """

    idle_feedback_noop = True
    transmit_feedback_noop = True

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        assignment: MessageAssignment,
        window: int,
        rungs: int,
        persist_probability: Optional[float] = None,
    ) -> None:
        super().__init__(ctx)
        if window < 1 or rungs < 1:
            raise ValueError(f"need window ≥ 1 and rungs ≥ 1, got {window}, {rungs}")
        self.assignment = assignment
        self.window = window
        self.rungs = rungs
        self.persist_probability = clamp_probability(
            persist_probability
            if persist_probability is not None
            else 1.0 / (2.0 * (ctx.max_degree + 1))
        )
        self._queue: deque[Message] = deque(_initial_messages(ctx, assignment))
        self._known = {message.payload for message in self._queue}
        self._all_known: list[Message] = list(self._queue)
        self._head_start: Optional[int] = 0 if self._queue else None

    def _advance(self, round_index: int) -> None:
        """Fold elapsed ack windows: every full window pops its head."""
        start = self._head_start
        if start is None:
            return
        while self._queue and start + self.window <= round_index:
            self._queue.popleft()
            start += self.window
        self._head_start = start if self._queue else None

    def _background(self, round_index: int) -> Optional[Message]:
        """The persistence rotation's message for this round, if any."""
        if not self._all_known or self.persist_probability <= 0.0:
            return None
        return self._all_known[(round_index + self.node_id) % len(self._all_known)]

    def plan(self, round_index: int) -> RoundPlan:
        self._advance(round_index)
        start = self._head_start
        if start is None:
            message = self._background(round_index)
            if message is None:
                return RoundPlan.silence()
            return RoundPlan(probability=self.persist_probability, message=message)
        slot = round_index - start
        probability = 2.0 ** (-(slot % self.rungs) - 1)
        return RoundPlan(probability=probability, message=self._queue[0])

    def plan_signature(self, round_index: int):
        self._advance(round_index)
        start = self._head_start
        if start is None:
            message = self._background(round_index)
            if message is None:
                return SILENT_SIGNATURE
            return ("bg", id(message))
        slot = round_index - start
        return (id(self._queue[0]), slot % self.rungs)

    def plan_signature_expiry(self, round_index: int) -> Optional[int]:
        # Serving nodes climb the ladder and persisting nodes rotate
        # their knowledge every round; only truly silent (uninformed)
        # nodes change state exclusively through reception.
        self._advance(round_index)
        if self._head_start is not None or self._all_known:
            return round_index + 1
        return None

    def next_state_change(self, round_index: int) -> Optional[int]:
        # Same shape as the expiry: serving and persisting plans move
        # every round (ladder slot / rotation index); an empty node
        # stays silent until reception.
        self._advance(round_index)
        if self._head_start is not None or self._all_known:
            return round_index + 1
        return None

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        self._advance(round_index)
        if received is None or not received.is_data():
            return
        if self.assignment.index_of(received.payload) is None:
            return
        if received.payload in self._known:
            return
        self._known.add(received.payload)
        self._queue.append(received)
        self._all_known.append(received)
        if self._head_start is None:
            # The queue was idle: the new message's window opens next round.
            self._head_start = round_index + 1

    def describe_state(self) -> str:
        return (
            f"gkln(node={self.node_id}, known={len(self._known)}, "
            f"pending={len(self._queue)})"
        )


class BackoffMultiMessageProcess(Process):
    """One node of the simple back-off multi-message protocol.

    Every node holding at least one message transmits each round with
    the regime's probability, rotating deterministically through its
    knowledge list (offset by its node id so neighbors holding the
    same set do not always push the same message). ``"fixed"`` uses a
    constant rate; ``"exponential"`` halves the rate every
    ``backoff_window`` rounds without new knowledge — GLNP's back-off
    shape — and resets on every fresh reception.
    """

    idle_feedback_noop = True
    transmit_feedback_noop = True

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        assignment: MessageAssignment,
        probability: Optional[float],
        regime: str,
        backoff_window: int,
    ) -> None:
        super().__init__(ctx)
        if regime not in ("fixed", "exponential"):
            raise ValueError(f"unknown back-off regime {regime!r}")
        if backoff_window < 1:
            raise ValueError(f"backoff_window must be ≥ 1, got {backoff_window}")
        self.assignment = assignment
        self.regime = regime
        self.backoff_window = backoff_window
        if probability is not None:
            self.base_probability = clamp_probability(float(probability))
        elif regime == "fixed":
            self.base_probability = 1.0 / (ctx.max_degree + 1)
        else:
            self.base_probability = 0.5
        self.min_probability = 1.0 / (2.0 * ctx.n)
        self._known: list[Message] = _initial_messages(ctx, assignment)
        self._known_payloads = {message.payload for message in self._known}
        self._last_new = 0  # round of the most recent knowledge gain

    def _probability(self, round_index: int) -> float:
        if self.regime == "fixed":
            return self.base_probability
        epoch = max(0, round_index - self._last_new) // self.backoff_window
        return max(self.min_probability, self.base_probability * 2.0 ** (-epoch))

    def _current(self, round_index: int) -> Message:
        return self._known[(round_index + self.node_id) % len(self._known)]

    def plan(self, round_index: int) -> RoundPlan:
        if not self._known:
            return RoundPlan.silence()
        return RoundPlan(
            probability=self._probability(round_index),
            message=self._current(round_index),
        )

    def plan_signature(self, round_index: int):
        if not self._known:
            return SILENT_SIGNATURE
        return (id(self._current(round_index)), self._probability(round_index))

    def plan_signature_expiry(self, round_index: int) -> Optional[int]:
        # The rotation moves every round while holding messages; empty
        # nodes change only on reception.
        return round_index + 1 if self._known else None

    def next_state_change(self, round_index: int) -> Optional[int]:
        return round_index + 1 if self._known else None

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        if received is None or not received.is_data():
            return
        if self.assignment.index_of(received.payload) is None:
            return
        if received.payload in self._known_payloads:
            return
        self._known_payloads.add(received.payload)
        self._known.append(received)
        # New knowledge resets the back-off clock from the next round.
        self._last_new = round_index + 1

    def describe_state(self) -> str:
        return f"backoff(node={self.node_id}, known={len(self._known)})"


# ----------------------------------------------------------------------
# Spec builders
# ----------------------------------------------------------------------
def make_gkln_multi_message(
    n: int,
    max_degree: int,
    assignment: MessageAssignment,
    mac: SimulatedMACLayer,
    *,
    window: Optional[int] = None,
    persist_probability: Optional[float] = None,
) -> AlgorithmSpec:
    """Spec for the GKLN queued protocol over a simulated MAC layer."""
    rungs = (
        mac.ladder_rungs(max_degree)
        if hasattr(mac, "ladder_rungs")
        else log2_ceil(max_degree + 1)
    )
    resolved_window = window if window is not None else mac.f_ack(n, max_degree)

    def factory(ctx: ProcessContext) -> GklnMultiMessageProcess:
        return GklnMultiMessageProcess(
            ctx,
            assignment=assignment,
            window=resolved_window,
            rungs=rungs,
            persist_probability=persist_probability,
        )

    return AlgorithmSpec(
        name=f"gkln-multi-message(k={assignment.k}, W={resolved_window})",
        factory=factory,
        metadata={
            "family": "mac-multi-message",
            "problem": "multi-message",
            "mac_discipline": "queued",
            "k": assignment.k,
            "sources": sorted(assignment.sources),
            "ack_window": resolved_window,
            "rungs": rungs,
        },
    )


def make_backoff_multi_message(
    n: int,
    assignment: MessageAssignment,
    *,
    probability: Optional[float] = None,
    regime: str = "fixed",
    backoff_window: Optional[int] = None,
) -> AlgorithmSpec:
    """Spec for the simple back-off protocol (no ack pacing)."""
    resolved_window = backoff_window if backoff_window is not None else log2_ceil(n)

    def factory(ctx: ProcessContext) -> BackoffMultiMessageProcess:
        return BackoffMultiMessageProcess(
            ctx,
            assignment=assignment,
            probability=probability,
            regime=regime,
            backoff_window=resolved_window,
        )

    label = regime if probability is None else f"{regime}, p={probability:g}"
    return AlgorithmSpec(
        name=f"backoff-multi-message(k={assignment.k}, {label})",
        factory=factory,
        metadata={
            "family": "mac-multi-message",
            "problem": "multi-message",
            "mac_discipline": "concurrent",
            "k": assignment.k,
            "sources": sorted(assignment.sources),
            "regime": regime,
            "backoff_window": resolved_window,
        },
    )


def _context_mac(ctx) -> SimulatedMACLayer:
    """The spec's MAC layer, defaulting to the simulated realization.

    Oracle-mode MACs are accepted too: their guarantee functions size
    the ack window identically, and when the trial actually runs in
    oracle mode the per-node processes built here are never invoked.
    """
    return ctx.mac if ctx.mac is not None else SimulatedMACLayer()


@register_algorithm("gkln-multi-message")
def _spec_gkln_multi_message(
    ctx,
    *,
    ack_window: Optional[int] = None,
    persist_probability: Optional[float] = None,
) -> AlgorithmSpec:
    return make_gkln_multi_message(
        ctx.graph.n,
        ctx.graph.max_degree,
        spec_messages(ctx),
        _context_mac(ctx),
        window=None if ack_window is None else int(ack_window),
        persist_probability=(
            None if persist_probability is None else float(persist_probability)
        ),
    )


@register_algorithm("backoff-multi-message")
def _spec_backoff_multi_message(
    ctx,
    *,
    probability: Optional[float] = None,
    regime: str = "fixed",
    backoff_window: Optional[int] = None,
) -> AlgorithmSpec:
    return make_backoff_multi_message(
        ctx.graph.n,
        spec_messages(ctx),
        probability=None if probability is None else float(probability),
        regime=str(regime),
        backoff_window=None if backoff_window is None else int(backoff_window),
    )
