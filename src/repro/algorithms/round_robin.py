"""Round robin broadcasting: the adversary-proof baselines.

The paper's footnotes give the robust upper bounds that bracket the
adversarial rows of Figure 1:

* footnote 4: "Local broadcast can always be solved in O(n) rounds
  using round robin broadcasting on the n node ids."
* footnote 5: "We can always solve broadcast among 2β nodes in (2β)²
  rounds by doing round robin broadcast 2β times."

Round robin is immune to *every* link process: when node ``u`` is the
only transmitter in the whole network, no adversarial edge choice can
create a collision at any listener, so ``u``'s reliable neighbors all
receive. The price is paying ``n`` rounds per progress step — which on
the constant-diameter dual clique exactly meets the ``Ω(n)`` offline
adaptive lower bound, closing that Figure-1 cell from above.

Slot permutations: by default node ``u`` owns slot ``u``, but on
topologies where node ids happen to be sorted along the broadcast
direction (lines, lines of cliques) the identity schedule luckily
rides the id order and finishes global broadcast in a single sweep.
The worst case the ``O(nD)`` bound describes needs ids decorrelated
from the topology, so experiment scenarios pass ``slot_seed`` to draw
a uniform slot permutation per trial (the guarantee "one solo slot per
sweep per node" is permutation-invariant).
"""

from __future__ import annotations

import random
from functools import partial
from typing import AbstractSet, Optional, Sequence

from repro.algorithms.base import AlgorithmSpec, spec_broadcasters, spec_source
from repro.core.messages import Message, MessageKind
from repro.core.process import SILENT_SIGNATURE, Process, ProcessContext, RoundPlan
from repro.registry import register_algorithm

__all__ = [
    "RoundRobinLocalProcess",
    "RoundRobinGlobalProcess",
    "make_round_robin_local_broadcast",
    "make_round_robin_global_broadcast",
]


def _slot_table(n: int, slot_seed: Optional[int]) -> Optional[Sequence[int]]:
    """Slot assignment: ``slots[u]`` is node ``u``'s slot. None = identity."""
    if slot_seed is None:
        return None
    slots = list(range(n))
    random.Random(slot_seed).shuffle(slots)
    return slots


class RoundRobinLocalProcess(Process):
    """Local broadcast by id schedule: node ``u`` transmits iff ``r ≡ u (mod n)``.

    Every broadcaster gets one guaranteed-solo round per ``n``-round
    sweep, so the problem is solved within ``n`` rounds under any link
    process — deterministically, not just w.h.p.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        broadcasters: AbstractSet[int],
        payload: object = "m",
        slots: Optional[Sequence[int]] = None,
    ) -> None:
        self.ctx = ctx  # inlined Process.__init__: built 10⁴ times per bench trial
        self.is_broadcaster = ctx.node_id in broadcasters
        self.slot = slots[ctx.node_id] if slots is not None else ctx.node_id
        self.message: Optional[Message] = None
        if self.is_broadcaster:
            self.message = Message(
                MessageKind.DATA, origin=ctx.node_id, payload=payload
            )

    def plan_signature(self, round_index: int):
        # A broadcaster speaks only in its slot — one round per sweep —
        # and is silent (with a predictable expiry) otherwise, so the
        # whole schedule costs O(1) signature events per round.
        if not self.is_broadcaster:
            return SILENT_SIGNATURE
        if round_index % self.ctx.n == self.slot:
            return None  # the slot holder's plan is its own
        return SILENT_SIGNATURE

    def plan_signature_expiry(self, round_index: int):
        if not self.is_broadcaster:
            return None
        delta = (self.slot - round_index) % self.ctx.n
        return round_index + (delta if delta else 1)

    def next_state_change(self, round_index: int):
        # The plan is a pure function of ``r mod n``: silence until the
        # slot round, one certain transmission, silence again.
        if not self.is_broadcaster:
            return None
        if self.ctx.n == 1:
            return None  # every round is the slot round
        delta = (self.slot - round_index) % self.ctx.n
        return round_index + (delta if delta else 1)

    def plan(self, round_index: int) -> RoundPlan:
        if self.is_broadcaster and round_index % self.ctx.n == self.slot:
            return RoundPlan.certain(self.message)
        return RoundPlan.silence()


class RoundRobinGlobalProcess(Process):
    """Global broadcast by repeated round robin sweeps: ``O(n · D)`` rounds.

    Informed nodes transmit in their id slot; each ``n``-round sweep
    advances the informed frontier by at least one ``G`` hop under any
    link process, so ``D`` sweeps complete the broadcast.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        source: int,
        payload: object = "m",
        slots: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(ctx)
        self.source = source
        self.slot = slots[ctx.node_id] if slots is not None else ctx.node_id
        self.message: Optional[Message] = None
        if ctx.node_id == source:
            self.message = Message(MessageKind.DATA, origin=source, payload=payload)

    #: The only transition is message adoption on reception; idle and
    #: pure-transmit feedback are both skippable.
    idle_feedback_noop = True
    transmit_feedback_noop = True

    @property
    def informed(self) -> bool:
        return self.message is not None

    def plan_signature(self, round_index: int):
        # An informed node speaks only in its slot; between slots it is
        # silent with a predictable expiry, and uninformed nodes wake
        # only on feedback — O(1) signature events per round overall.
        if self.message is None:
            return SILENT_SIGNATURE
        if round_index % self.ctx.n == self.slot:
            return None  # the slot holder's plan is its own
        return SILENT_SIGNATURE

    def plan_signature_expiry(self, round_index: int):
        if self.message is None:
            return None  # adoption arrives via feedback
        delta = (self.slot - round_index) % self.ctx.n
        return round_index + (delta if delta else 1)

    def next_state_change(self, round_index: int):
        if self.message is None:
            return None  # adoption arrives via feedback
        if self.ctx.n == 1:
            return None  # every round is the slot round
        delta = (self.slot - round_index) % self.ctx.n
        return round_index + (delta if delta else 1)

    def plan(self, round_index: int) -> RoundPlan:
        if self.message is not None and round_index % self.ctx.n == self.slot:
            return RoundPlan.certain(self.message)
        return RoundPlan.silence()

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        if self.message is None and received is not None and received.is_data():
            self.message = received


def make_round_robin_local_broadcast(
    n: int,
    broadcasters: AbstractSet[int],
    *,
    payload: object = "m",
    slot_seed: Optional[int] = None,
) -> AlgorithmSpec:
    """Spec for the footnote-4 ``O(n)`` local broadcast baseline."""
    broadcaster_set = frozenset(broadcasters)
    for b in broadcaster_set:
        if not 0 <= b < n:
            raise ValueError(f"broadcaster {b} outside [0, {n})")
    slots = _slot_table(n, slot_seed)

    # ``partial`` instead of a closure: one C-level call per node.
    factory = partial(
        RoundRobinLocalProcess,
        broadcasters=broadcaster_set,
        payload=payload,
        slots=slots,
    )

    return AlgorithmSpec(
        name=f"round-robin-local(|B|={len(broadcaster_set)})",
        factory=factory,
        metadata={
            "family": "round-robin",
            "problem": "local-broadcast",
            "broadcasters": sorted(broadcaster_set),
            "deterministic": True,
        },
    )


def make_round_robin_global_broadcast(
    n: int,
    source: int,
    *,
    payload: object = "m",
    slot_seed: Optional[int] = None,
) -> AlgorithmSpec:
    """Spec for the footnote-5 ``O(nD)`` global broadcast baseline."""
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    slots = _slot_table(n, slot_seed)

    def factory(ctx):
        return RoundRobinGlobalProcess(
            ctx, source=source, payload=payload, slots=slots
        )

    return AlgorithmSpec(
        name=f"round-robin-global(n={n})",
        factory=factory,
        metadata={
            "family": "round-robin",
            "problem": "global-broadcast",
            "source": source,
            "deterministic": True,
        },
    )


@register_algorithm("round-robin-global")
def _spec_round_robin_global(
    ctx,
    *,
    source: Optional[int] = None,
    payload: object = "m",
    random_slots: bool = False,
    slot_seed: Optional[int] = None,
) -> AlgorithmSpec:
    """Footnote-5 baseline; ``random_slots`` draws a per-trial slot
    permutation from the ``"slots"`` stream (the label the chain-graph
    scenarios use so the identity schedule never luckily matches)."""
    if slot_seed is None and random_slots:
        slot_seed = ctx.derive("slots")
    return make_round_robin_global_broadcast(
        ctx.graph.n, spec_source(ctx, source), payload=payload, slot_seed=slot_seed
    )


@register_algorithm("round-robin-local")
def _spec_round_robin_local(
    ctx,
    *,
    broadcasters=None,
    payload: object = "m",
    random_slots: bool = False,
    slot_seed: Optional[int] = None,
) -> AlgorithmSpec:
    if slot_seed is None and random_slots:
        slot_seed = ctx.derive("slots")
    return make_round_robin_local_broadcast(
        ctx.graph.n,
        spec_broadcasters(ctx, broadcasters),
        payload=payload,
        slot_seed=slot_seed,
    )
