"""The permuted decay subroutine of Section 4.1.

Plain decay's weakness in the oblivious dual graph model is its public
schedule. Permuted decay keeps the ladder of probabilities
``{1/2, 1/4, …, 2^{-k}}`` but *randomizes the visiting order* using
bits drawn after the execution begins — bits the oblivious adversary's
schedule cannot depend on:

    "The permuted decay subroutine ... is called with a broadcast
    message m, a string S of γ log n log log n permutation bits, and an
    integer parameter γ ≥ 1. The routine runs for γ log n rounds.
    During each round, it selects a value i ∈ [log n] using log log n
    new bits from S. It then broadcasts m with probability 2^{-i}."

Key property (Lemma 4.2): if a set ``I`` of a receiver's neighbors runs
permuted decay *with the same bits* in the same rounds, the receiver
gets a message with probability > 1/2 per call — for **any** oblivious
choice of flaky links, because in every round all of ``I`` shares one
random rung ``i``, and with probability ``1/log n`` that rung matches
``⌊log |I_r|⌋`` for the adversary's chosen neighborhood ``I_r ⊇ I_G``.

:class:`PermutedDecaySchedule` maps ``(shared bits, chunk offset,
round-within-call) → probability`` through fixed-width windows, so
every holder of the same bit string computes the same rung in the same
round without any cursor coordination. The number of ladder rungs is a
parameter: Section 4.1 uses ``log n`` (neighborhoods up to ``n``), the
Section 4.3 local algorithm uses ``log Δ`` (see DESIGN.md §5.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bits import BitStream, bits_for_uniform

__all__ = ["PermutedDecaySchedule"]


@dataclass(frozen=True)
class PermutedDecaySchedule:
    """Layout and semantics of one permuted-decay call.

    Parameters
    ----------
    num_probabilities:
        Ladder size ``k``: rungs are ``2^{-1} … 2^{-k}`` (the paper's
        ``log n``, or ``log Δ`` in the local variant).
    gamma:
        Length multiplier ``γ``; a call runs ``γ · num_probabilities``
        rounds. The paper's analysis uses ``γ = 16``; smaller values
        trade the per-call success constant for wall-clock speed.
    """

    num_probabilities: int
    gamma: int = 16

    def __post_init__(self) -> None:
        if self.num_probabilities < 1:
            raise ValueError("num_probabilities must be >= 1")
        if self.gamma < 1:
            raise ValueError("gamma must be >= 1")

    @property
    def rounds_per_call(self) -> int:
        """``γ · k`` — the paper's ``γ log n`` rounds per call."""
        return self.gamma * self.num_probabilities

    @property
    def draw_width(self) -> int:
        """Bits consumed per round (the paper's ``log log n``)."""
        return bits_for_uniform(self.num_probabilities)

    @property
    def bits_per_call(self) -> int:
        """Total permutation bits one call consumes
        (the paper's ``γ log n log log n``)."""
        return self.rounds_per_call * self.draw_width

    def rung(self, bits: BitStream, chunk_offset: int, round_in_call: int) -> int:
        """The rung index ``i ∈ [1, k]`` selected for a round of the call.

        Deterministic in ``(bits, chunk_offset, round_in_call)`` — every
        node holding the same string computes the same rung.
        """
        if not 0 <= round_in_call < self.rounds_per_call:
            raise ValueError(
                f"round_in_call {round_in_call} outside [0, {self.rounds_per_call})"
            )
        offset = chunk_offset + round_in_call * self.draw_width
        return bits.uniform_at(offset, self.num_probabilities) + 1

    def probability(self, bits: BitStream, chunk_offset: int, round_in_call: int) -> float:
        """Transmit probability ``2^{-i}`` for a round of the call."""
        return 2.0 ** (-self.rung(bits, chunk_offset, round_in_call))

    def fresh_bits(self, rng, calls: int, *, cyclic: bool = False) -> BitStream:
        """Draw a string long enough for ``calls`` consecutive calls."""
        return BitStream.random(rng, self.bits_per_call * calls, cyclic=cyclic)
