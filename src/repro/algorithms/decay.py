"""Classic decay and the Bar-Yehuda–Goldreich–Itai global broadcast [2].

The decay subroutine has every participating node cycle — in lockstep —
through the probability ladder ``1/2, 1/4, …, 2/n, 1/n`` (``log n``
rounds per phase). For any receiver, one rung of the ladder matches the
number of transmitting neighbors, and in that round the receiver gets a
message with constant probability. Repeating phases yields the classic
``O(D log n + log² n)`` global broadcast in the static protocol model.

The schedule is *public and deterministic*: round ``r`` of a phase uses
probability ``2^{-(r mod log n) - 1}`` no matter what. That is its
fatal weakness in the dual graph model — an oblivious adversary can
compute the expected transmitter count of every future round from the
algorithm description alone (see
:mod:`repro.adversaries.schedule_attack`) — and the reason Section 4.1
replaces it with *permuted* decay.

Processes here:

* :class:`PlainDecayGlobalProcess` — BGI global broadcast: the source
  announces in round 0; every informed node joins the ladder at the
  next phase boundary.
* :func:`decay_probability` — the ladder itself, shared with tests and
  attack predictors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import AlgorithmSpec, log2_ceil, spec_source
from repro.core.messages import Message, MessageKind
from repro.core.process import SILENT_SIGNATURE, Process, ProcessContext, RoundPlan
from repro.registry import register_algorithm

__all__ = [
    "decay_probability",
    "decay_ladder",
    "PlainDecayGlobalProcess",
    "make_plain_decay_global_broadcast",
]


def decay_probability(round_in_phase: int, phase_length: int) -> float:
    """The decay ladder: probability ``2^{-(j+1)}`` at phase round ``j``.

    ``j = 0`` gives ``1/2``; ``j = phase_length - 1`` gives
    ``2^{-phase_length}`` (``= 1/n`` when ``phase_length = log n``).
    """
    if not 0 <= round_in_phase < phase_length:
        raise ValueError(
            f"round_in_phase {round_in_phase} outside [0, {phase_length})"
        )
    return 2.0 ** (-(round_in_phase + 1))


def decay_ladder(round_index, phase_length):
    """Vectorized ladder: ``decay_probability(r mod L, L)``, broadcast.

    ``round_index`` and ``phase_length`` may be scalars or integer
    arrays (numpy broadcasting applies; ``np.mod`` keeps the result
    non-negative for negative round offsets, matching Python's ``%``).
    The rungs are exact powers of two via ``np.ldexp``, bit-identical
    to the scalar :func:`decay_probability` — the single-message bank
    kernels rely on this to share one rung across every lane per round.
    """
    return np.ldexp(1.0, -np.mod(round_index, phase_length) - 1)


class PlainDecayGlobalProcess(Process):
    """One node of the BGI broadcast algorithm.

    Lifecycle: the source transmits the payload in round 0 with
    probability 1 and then behaves like any informed node. A node that
    first receives the message in round ``r`` waits for the next phase
    boundary (``r' ≡ 0 mod phase_length``) and from then on transmits
    with the ladder probability every round, for ``active_phases``
    phases (``None`` = until the engine stops it; the classic analysis
    needs ``Θ(log n)`` phases per node, and running longer never hurts
    progress — it only spends energy).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        source: int,
        payload: object = "m",
        phase_length: Optional[int] = None,
        active_phases: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self.source = source
        self.phase_length = phase_length or log2_ceil(ctx.n)
        self.active_phases = active_phases
        self.message: Optional[Message] = None
        self.participate_from: Optional[int] = None
        self._active_signature: Optional[tuple] = None
        self._active_until: Optional[int] = None
        if ctx.node_id == source:
            self.message = Message(MessageKind.DATA, origin=source, payload=payload)
            self.participate_from = 1  # decays start after the announcement
            self._refresh_active_signature()

    #: The state machine reacts only to data receptions, so both
    #: idle-listen and pure-transmit feedback are skippable.
    idle_feedback_noop = True
    transmit_feedback_noop = True

    @property
    def informed(self) -> bool:
        """Whether this node holds the broadcast message."""
        return self.message is not None

    def _refresh_active_signature(self) -> None:
        """Precompute the sharing key for the participating state.

        Every participation start lies on a phase boundary
        (``participate_from ≡ 1 mod phase_length`` — the source joins
        at round 1, receivers wait for the next boundary), so the
        ladder rung ``(round_index - start) % phase_length`` is the
        same for *all* currently-active nodes regardless of when they
        joined: one plan serves the whole informed set. A finite
        ``active_phases`` window re-ties the plan to the join round.
        """
        start = self.participate_from
        if self.active_phases is not None:
            self._active_until = start + self.active_phases * self.phase_length
            self._active_signature = (
                id(self.message), start, self.phase_length, self.active_phases,
            )
        else:
            self._active_until = None
            self._active_signature = (id(self.message), self.phase_length)

    def plan_signature(self, round_index: int):
        if self.message is None:
            return SILENT_SIGNATURE
        if round_index == 0 and self.node_id == self.source:
            return None  # the round-0 announcement is the source's alone
        start = self.participate_from
        if start is None or round_index < start:
            return SILENT_SIGNATURE
        if self._active_until is not None and round_index >= self._active_until:
            return SILENT_SIGNATURE
        return self._active_signature

    def plan_signature_expiry(self, round_index: int):
        # Signature timeline: silent → (source announcement) →
        # waiting-for-phase-boundary → active ladder → (window end).
        if self.message is None:
            return None  # adoption arrives via feedback
        if round_index == 0 and self.node_id == self.source:
            return 1
        start = self.participate_from
        if start is None:
            return None
        if round_index < start:
            return start
        until = self._active_until
        if until is not None and round_index < until:
            return until
        return None

    def next_state_change(self, round_index: int):
        # Unlike the signature, the *plan* rides the ladder: it changes
        # every round while the node is active, so only the silent
        # stretches (uninformed / waiting / window-ended) are stable.
        if self.message is None:
            return None  # adoption arrives via feedback
        if round_index == 0 and self.node_id == self.source:
            return 1
        start = self.participate_from
        if start is None:
            return None
        if round_index < start:
            return start
        until = self._active_until
        if until is not None and round_index >= until:
            return None  # the window ended; silent for good
        return round_index + 1  # active ladder: a new rung every round

    def plan(self, round_index: int) -> RoundPlan:
        if self.message is None:
            return RoundPlan.silence()
        if round_index == 0 and self.node_id == self.source:
            return RoundPlan.certain(self.message)
        start = self.participate_from
        if start is None or round_index < start:
            return RoundPlan.silence()
        if self.active_phases is not None:
            if round_index >= start + self.active_phases * self.phase_length:
                return RoundPlan.silence()
        j = (round_index - start) % self.phase_length
        return RoundPlan(probability=decay_probability(j, self.phase_length), message=self.message)

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        if self.message is None and received is not None and received.is_data():
            self.message = received
            # Join at the next phase boundary relative to the global
            # clock offset used by everyone (source joined at round 1).
            rounds_since_epoch = round_index + 1 - 1  # next round, minus epoch offset 1
            remainder = rounds_since_epoch % self.phase_length
            wait = 0 if remainder == 0 else self.phase_length - remainder
            self.participate_from = round_index + 1 + wait
            self._refresh_active_signature()


def make_plain_decay_global_broadcast(
    n: int,
    source: int,
    *,
    payload: object = "m",
    phase_length: Optional[int] = None,
    active_phases: Optional[int] = None,
) -> AlgorithmSpec:
    """Spec for BGI plain-decay global broadcast from ``source``.

    ``phase_length`` defaults to ``log2_ceil(n)``; all nodes share the
    same global phase clock (offset by the round-0 announcement), which
    is what makes the ladder position a pure function of the round
    index — the predictability the oblivious schedule attack exploits.
    """
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    resolved_phase = phase_length or log2_ceil(n)

    def factory(ctx):
        return PlainDecayGlobalProcess(
            ctx,
            source=source,
            payload=payload,
            phase_length=resolved_phase,
            active_phases=active_phases,
        )

    return AlgorithmSpec(
        name=f"plain-decay-global(n={n})",
        factory=factory,
        metadata={
            "family": "decay",
            "problem": "global-broadcast",
            "source": source,
            "phase_length": resolved_phase,
            "schedule": "public",
        },
    )


@register_algorithm("plain-decay")
def _spec_plain_decay(
    ctx,
    *,
    source: Optional[int] = None,
    payload: object = "m",
    phase_length: Optional[int] = None,
    active_phases: Optional[int] = None,
) -> AlgorithmSpec:
    return make_plain_decay_global_broadcast(
        ctx.graph.n,
        spec_source(ctx, source),
        payload=payload,
        phase_length=phase_length,
        active_phases=active_phases,
    )
