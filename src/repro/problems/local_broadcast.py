"""The local broadcast problem: one message into every receiver.

From Section 2: "The local broadcast problem assumes some subset of
nodes ``B ⊆ V`` are provided a message. Let ``R`` be the set of nodes
with at least one neighbor in ``B`` by ``G``. The problem is solved
when every node in ``R`` has received at least one message from a
neighbor in ``B``."

Note the asymmetry the paper highlights (footnote 2): this is the
*receive* side only — every receiver hears *some* broadcaster, not
every broadcaster reaches every receiver. Reception may arrive over a
flaky ``G'`` edge; ``R`` itself is defined by ``G`` adjacency.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

import numpy as np

from repro.adversaries.base import PACKED_ROWS_MAX_N
from repro.core.errors import SpecError
from repro.core.trace import RoundRecord, iter_bits, popcount
from repro.graphs.dual_graph import DualGraph
from repro.problems.base import Problem, ProblemObserver
from repro.registry import cut_mask_for, register_problem

__all__ = ["LocalBroadcastProblem", "LocalBroadcastObserver", "receiver_set"]


def receiver_set(network: DualGraph, broadcasters: AbstractSet[int]) -> frozenset[int]:
    """The paper's ``R``: nodes with at least one ``G``-neighbor in ``B``.

    Broadcasters themselves belong to ``R`` when they neighbor another
    broadcaster — the definition does not exclude them.
    """
    b_mask = 0
    for b in broadcasters:
        b_mask |= 1 << b
    n = network.n
    if n <= PACKED_ROWS_MAX_N:
        # One vectorized AND over the graph's cached word rows instead
        # of n bigint ANDs (each O(n/64)) — the rows are the same cache
        # the stock adversaries adopt, so this is usually a cache hit.
        rows = network.packed_mask_rows()
        b_row = np.frombuffer(
            b_mask.to_bytes(rows.shape[1] * 8, "little"), dtype=np.uint64
        )
        hits = (rows & b_row).any(axis=1)
        return frozenset(np.nonzero(hits)[0].tolist())
    return frozenset(u for u in range(n) if network.g_masks[u] & b_mask)


class LocalBroadcastObserver(ProblemObserver):
    """Tracks which receivers have heard a message originating in ``B``."""

    def __init__(self, n: int, broadcasters: frozenset[int], receivers: frozenset[int]) -> None:
        self.n = n
        self.broadcasters = broadcasters
        self.receivers = receivers
        self._pending_mask = 0
        for u in receivers:
            self._pending_mask |= 1 << u
        self._total = len(receivers)
        self.first_served_round: dict[int, int] = {}

    @property
    def solved(self) -> bool:
        return self._pending_mask == 0

    @property
    def served_count(self) -> int:
        return self._total - popcount(self._pending_mask)

    def on_round(self, record: RoundRecord) -> None:
        if not self._pending_mask:
            return
        for delivery in record.deliveries:
            if not delivery.message.is_data():
                continue
            if delivery.message.origin not in self.broadcasters:
                continue
            bit = 1 << delivery.receiver
            if self._pending_mask & bit:
                self._pending_mask &= ~bit
                self.first_served_round[delivery.receiver] = record.round_index

    def on_round_batch(self, start: int, stop: int) -> None:
        """All-silent span: no deliveries, so coverage cannot move."""

    def progress(self) -> float:
        if self._total == 0:
            return 1.0
        return self.served_count / self._total

    def pending_receivers(self) -> list[int]:
        """Receivers still waiting for a ``B``-originated message."""
        return list(iter_bits(self._pending_mask))


class LocalBroadcastProblem(Problem):
    """Local broadcast with broadcaster set ``B`` on a connected ``G``."""

    def __init__(self, network: DualGraph, broadcasters: AbstractSet[int]) -> None:
        super().__init__(network)
        self.broadcasters = frozenset(int(b) for b in broadcasters)
        for b in self.broadcasters:
            if not 0 <= b < network.n:
                raise ValueError(f"broadcaster {b} outside [0, {network.n})")
        self.receivers = receiver_set(network, self.broadcasters)

    def make_observer(self) -> LocalBroadcastObserver:
        return LocalBroadcastObserver(self.network.n, self.broadcasters, self.receivers)

    def describe(self) -> str:
        return (
            f"local-broadcast(|B|={len(self.broadcasters)}, "
            f"|R|={len(self.receivers)}, n={self.network.n})"
        )


@register_problem("local-broadcast")
def _spec_local_broadcast(
    ctx, *, broadcasters=None, fraction=None, side=None
) -> LocalBroadcastProblem:
    """Declarative broadcaster-set selection for ``B``.

    Exactly one selector:

    * ``broadcasters`` — an explicit node list;
    * ``fraction`` — a per-trial uniform sample of ``max(1, ⌊fraction·n⌋)``
      nodes from the ``"broadcasters"`` derivation stream (the label the
      geographic Figure-1 closures always used);
    * ``side`` — ``"all"`` for ``B = V``, or any cut-side selector
      understood by :func:`repro.registry.cut_mask_for` (``"A"`` picks a
      dual clique's side A / a bracelet's A-heads).
    """
    chosen = [s for s in (broadcasters, fraction, side) if s is not None]
    if len(chosen) != 1:
        raise SpecError(
            "local-broadcast needs exactly one of 'broadcasters', 'fraction', 'side'"
        )
    n = ctx.graph.n
    if broadcasters is not None:
        b = frozenset(int(u) for u in broadcasters)
    elif fraction is not None:
        count = max(1, int(n * float(fraction)))
        b = frozenset(ctx.rng("broadcasters").sample(range(n), count))
    elif side == "all":
        b = frozenset(range(n))
    else:
        b = frozenset(iter_bits(cut_mask_for(ctx, side)))
    return LocalBroadcastProblem(ctx.graph, b)
