"""The global broadcast problem: source-to-everyone dissemination."""

from __future__ import annotations

from typing import Optional

from repro.core.trace import RoundRecord, popcount
from repro.graphs.dual_graph import DualGraph
from repro.problems.base import Problem, ProblemObserver
from repro.registry import register_problem

__all__ = ["GlobalBroadcastProblem", "GlobalBroadcastObserver"]


class GlobalBroadcastObserver(ProblemObserver):
    """Tracks which nodes hold the source's message.

    A node counts as informed once it receives any DATA message whose
    ``origin`` is the source (relays forward the original message, so
    origin is preserved). The source starts informed. Also records each
    node's first-informed round, which the analysis uses for frontier
    progress plots.
    """

    def __init__(self, n: int, source: int) -> None:
        self.n = n
        self.source = source
        self.informed_mask = 1 << source
        self.first_informed_round: list[Optional[int]] = [None] * n
        self.first_informed_round[source] = -1  # informed at start

    @property
    def solved(self) -> bool:
        return self.informed_mask == (1 << self.n) - 1

    @property
    def informed_count(self) -> int:
        return popcount(self.informed_mask)

    def on_round(self, record: RoundRecord) -> None:
        for delivery in record.deliveries:
            if not delivery.message.is_data():
                continue
            if delivery.message.origin != self.source:
                continue
            bit = 1 << delivery.receiver
            if not self.informed_mask & bit:
                self.informed_mask |= bit
                self.first_informed_round[delivery.receiver] = record.round_index

    def on_round_batch(self, start: int, stop: int) -> None:
        """All-silent span: no deliveries, so the frontier cannot move."""

    def progress(self) -> float:
        return self.informed_count / self.n

    def uninformed_nodes(self) -> list[int]:
        """Nodes still missing the message (diagnostics)."""
        return [u for u in range(self.n) if not (self.informed_mask >> u) & 1]


class GlobalBroadcastProblem(Problem):
    """Global broadcast from ``source`` on a connected ``G``."""

    def __init__(self, network: DualGraph, source: int) -> None:
        super().__init__(network)
        if not 0 <= source < network.n:
            raise ValueError(f"source {source} outside [0, {network.n})")
        self.source = source

    def make_observer(self) -> GlobalBroadcastObserver:
        return GlobalBroadcastObserver(self.network.n, self.source)

    def describe(self) -> str:
        return (
            f"global-broadcast(source={self.source}, n={self.network.n}, "
            f"D={self.network.g_eccentricity(self.source)})"
        )


@register_problem("global-broadcast")
def _spec_global_broadcast(ctx, *, source: int = 0) -> GlobalBroadcastProblem:
    return GlobalBroadcastProblem(ctx.graph, int(source))
