"""Problem specifications: global, local, and multi-message broadcast.

Global and local broadcast are the paper's Section-2 problems; the
multi-message problem is the GKLN extension layered on the abstract
MAC machinery of :mod:`repro.mac`.
"""

from repro.problems.base import Problem, ProblemObserver
from repro.problems.global_broadcast import GlobalBroadcastObserver, GlobalBroadcastProblem
from repro.problems.local_broadcast import (
    LocalBroadcastObserver,
    LocalBroadcastProblem,
    receiver_set,
)
from repro.problems.multi_message import MultiMessageObserver, MultiMessageProblem

__all__ = [
    "Problem",
    "ProblemObserver",
    "GlobalBroadcastProblem",
    "GlobalBroadcastObserver",
    "LocalBroadcastProblem",
    "LocalBroadcastObserver",
    "MultiMessageProblem",
    "MultiMessageObserver",
    "receiver_set",
]
