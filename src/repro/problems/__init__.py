"""Problem specifications (Section 2): global and local broadcast."""

from repro.problems.base import Problem, ProblemObserver
from repro.problems.global_broadcast import GlobalBroadcastObserver, GlobalBroadcastProblem
from repro.problems.local_broadcast import (
    LocalBroadcastObserver,
    LocalBroadcastProblem,
    receiver_set,
)

__all__ = [
    "Problem",
    "ProblemObserver",
    "GlobalBroadcastProblem",
    "GlobalBroadcastObserver",
    "LocalBroadcastProblem",
    "LocalBroadcastObserver",
    "receiver_set",
]
