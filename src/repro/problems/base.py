"""Problem definitions: what "solved" means, as engine observers.

Section 2 defines the two problems:

* **Global broadcast** — a designated source holds a message; solved
  when every node has received (or originated) it.
* **Local broadcast** — a subset ``B`` of nodes hold messages; with
  ``R`` the set of nodes having at least one ``G``-neighbor in ``B``,
  solved when every node of ``R`` has received at least one message
  originating in ``B``. (The paper studies the *receiver-side* time
  bound; sender-side completion is out of scope per its footnote 2.)

A :class:`Problem` builds a per-execution :class:`ProblemObserver` that
watches deliveries and exposes ``solved``; the experiment runner wires
the observer into the engine and uses ``solved`` as the stop condition.
Both problems require ``G`` connected — the constructors check it.
"""

from __future__ import annotations

import abc

from repro.core.trace import RoundRecord
from repro.graphs.dual_graph import DualGraph

__all__ = ["ProblemObserver", "Problem"]


class ProblemObserver(abc.ABC):
    """An engine observer tracking progress toward a problem's goal."""

    @property
    @abc.abstractmethod
    def solved(self) -> bool:
        """Whether the problem's completion condition holds."""

    @abc.abstractmethod
    def on_round(self, record: RoundRecord) -> None:
        """Consume one round's record."""

    @abc.abstractmethod
    def progress(self) -> float:
        """Fraction of the goal achieved, in ``[0, 1]`` (diagnostics)."""


class Problem(abc.ABC):
    """A problem instance bound to a network (roles fixed)."""

    def __init__(self, network: DualGraph) -> None:
        if not network.is_g_connected():
            raise ValueError(
                "broadcast problems assume G is connected (Section 2); "
                f"{network.name} is not"
            )
        self.network = network

    @abc.abstractmethod
    def make_observer(self) -> ProblemObserver:
        """Fresh observer for one execution."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable instance summary for tables."""
