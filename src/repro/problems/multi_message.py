"""The multi-message broadcast problem: every node learns all k messages.

Ghaffari–Kantor–Lynch–Newport's multi-message broadcast starts ``k``
messages at arbitrary source nodes; the problem is solved when **every
node holds every message**. The observer tracks the full ``n × k``
knowledge relation through :class:`~repro.core.knowledge.KnowledgeVector`
— per-node knowledge sets with per-message holder counts — and records
each message's *completion round* (when its last node learned it),
which is what the CLI's per-message report and the ``M*`` experiments
read off.

Message identity is positional: the spec's resolved
:class:`~repro.mac.base.MessageAssignment` tags message ``i`` with
payload ``("mm", i)``, and the observer counts any DATA delivery
carrying such a payload — regardless of which protocol relayed it or
which MAC layer realized the transmission.
"""

from __future__ import annotations

from typing import Optional

from repro.core.knowledge import KnowledgeVector
from repro.core.trace import RoundRecord
from repro.mac.base import MessageAssignment, spec_messages
from repro.problems.base import Problem, ProblemObserver
from repro.registry import register_problem

__all__ = ["MultiMessageProblem", "MultiMessageObserver"]


class MultiMessageObserver(ProblemObserver):
    """Tracks which of the ``k`` messages every node currently holds."""

    def __init__(self, n: int, assignment: MessageAssignment) -> None:
        self.n = n
        self.assignment = assignment
        self.knowledge = KnowledgeVector(n, assignment.k)
        #: Round at which message ``i`` reached its last node (``-1``
        #: for a trivially complete message on a 1-node graph).
        self.message_complete_round: list[Optional[int]] = [None] * assignment.k
        #: Round after which every node held every message.
        self.complete_round: Optional[int] = None
        for index, source in enumerate(assignment.sources):
            self.knowledge.add(source, index)
            if self.knowledge.message_complete(index):
                self.message_complete_round[index] = -1
        if self.knowledge.complete:
            self.complete_round = -1

    @property
    def solved(self) -> bool:
        return self.knowledge.complete

    def on_round(self, record: RoundRecord) -> None:
        if self.knowledge.complete:
            return
        # Hot loop: runs once per delivery for every engine, so bind
        # the per-delivery callees once per round.
        add = self.knowledge.add
        index_of = self.assignment.index_of
        message_complete = self.knowledge.message_complete
        for delivery in record.deliveries:
            message = delivery.message
            if not message.is_data():
                continue
            index = index_of(message.payload)
            if index is None:
                continue
            if add(delivery.receiver, index) and message_complete(index):
                self.message_complete_round[index] = record.round_index
        if self.knowledge.complete and self.complete_round is None:
            self.complete_round = record.round_index

    def progress(self) -> float:
        return self.knowledge.progress()

    def pending(self) -> list[tuple[int, int]]:
        """Unestablished ``(message, node)`` facts (diagnostics)."""
        return [
            (index, node)
            for index in range(self.assignment.k)
            for node in self.knowledge.missing_nodes(index)
        ]


class MultiMessageProblem(Problem):
    """Multi-message broadcast of a fixed assignment on a connected ``G``."""

    def __init__(self, network, assignment: MessageAssignment) -> None:
        super().__init__(network)
        for source in assignment.sources:
            if not 0 <= source < network.n:
                raise ValueError(f"source {source} outside [0, {network.n})")
        self.assignment = assignment

    def make_observer(self) -> MultiMessageObserver:
        return MultiMessageObserver(self.network.n, self.assignment)

    def describe(self) -> str:
        return (
            f"multi-message(k={self.assignment.k}, n={self.network.n}, "
            f"sources={list(self.assignment.sources)})"
        )


@register_problem("multi-message")
def _spec_multi_message(ctx) -> MultiMessageProblem:
    """The problem reads its workload from the spec's ``messages=`` field
    (resolved into the build context) rather than from problem params,
    because the MAC-level algorithms need the *same* assignment — one
    source of truth keeps sources and relays consistent."""
    return MultiMessageProblem(ctx.graph, spec_messages(ctx))
