"""Experiment registry: every Figure-1 cell and ablation, runnable.

``ALL_EXPERIMENTS`` maps experiment ids (``"E1a" … "E9"``, ``"A1" …
"A3"``) to :class:`~repro.experiments.registry.Experiment` bundles;
benches run them at ``small``/``full`` scale, integration tests at
``tiny``.
"""

from repro.experiments.ablations import (
    A1_PERMUTATION,
    A2_COORDINATION,
    A3_SEED_SHARING,
    ABLATION_EXPERIMENTS,
)
from repro.experiments.fig1 import (
    E1A_STATIC_GLOBAL_DIAMETER,
    E1B_STATIC_GLOBAL_CONTENTION,
    E2A_STATIC_LOCAL_GEO,
    E2B_STATIC_LOCAL_CLIQUE,
    E3_OFFLINE_GLOBAL,
    E4_OFFLINE_LOCAL,
    E5_ONLINE_GLOBAL,
    E6_ONLINE_LOCAL,
    E7A_OBLIVIOUS_GLOBAL_N,
    E7B_OBLIVIOUS_GLOBAL_D,
    E8_OBLIVIOUS_LOCAL_GENERAL,
    E9_OBLIVIOUS_LOCAL_GEO,
    FIG1_EXPERIMENTS,
)
from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    ScalePlan,
    Series,
    SeriesResult,
)

ALL_EXPERIMENTS: dict[str, Experiment] = {**FIG1_EXPERIMENTS, **ABLATION_EXPERIMENTS}

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ScalePlan",
    "Series",
    "SeriesResult",
    "FIG1_EXPERIMENTS",
    "ABLATION_EXPERIMENTS",
    "ALL_EXPERIMENTS",
    "E1A_STATIC_GLOBAL_DIAMETER",
    "E1B_STATIC_GLOBAL_CONTENTION",
    "E2A_STATIC_LOCAL_GEO",
    "E2B_STATIC_LOCAL_CLIQUE",
    "E3_OFFLINE_GLOBAL",
    "E4_OFFLINE_LOCAL",
    "E5_ONLINE_GLOBAL",
    "E6_ONLINE_LOCAL",
    "E7A_OBLIVIOUS_GLOBAL_N",
    "E7B_OBLIVIOUS_GLOBAL_D",
    "E8_OBLIVIOUS_LOCAL_GENERAL",
    "E9_OBLIVIOUS_LOCAL_GEO",
    "A1_PERMUTATION",
    "A2_COORDINATION",
    "A3_SEED_SHARING",
]
