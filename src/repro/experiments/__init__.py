"""Experiment registry: every Figure-1 cell, ablation, and MAC workload.

``ALL_EXPERIMENTS`` maps experiment ids (``"E1a" … "E9"``, ``"A1" …
"A3"``, ``"M1" … "M3"``, ``"E1b_large"``) to
:class:`~repro.experiments.registry.Experiment` bundles; benches run
them at ``small``/``full`` scale, integration tests at ``tiny``. The
``M*`` family measures multi-message broadcast over the abstract MAC
layers of :mod:`repro.mac`; ``E1b_large`` stresses the engines at
n ≥ 10⁴ (the round-skipping showcase).
"""

from repro.experiments.ablations import (
    A1_PERMUTATION,
    A2_COORDINATION,
    A3_SEED_SHARING,
    ABLATION_EXPERIMENTS,
)
from repro.experiments.engine_bench import (
    E1B_LARGE_STATIC_SCALE,
    ENGINE_BENCH_EXPERIMENTS,
)
from repro.experiments.fig1 import (
    E1A_STATIC_GLOBAL_DIAMETER,
    E1B_STATIC_GLOBAL_CONTENTION,
    E2A_STATIC_LOCAL_GEO,
    E2B_STATIC_LOCAL_CLIQUE,
    E3_OFFLINE_GLOBAL,
    E4_OFFLINE_LOCAL,
    E5_ONLINE_GLOBAL,
    E6_ONLINE_LOCAL,
    E7A_OBLIVIOUS_GLOBAL_N,
    E7B_OBLIVIOUS_GLOBAL_D,
    E8_OBLIVIOUS_LOCAL_GENERAL,
    E9_OBLIVIOUS_LOCAL_GEO,
    FIG1_EXPERIMENTS,
)
from repro.experiments.multi_message import (
    M1_MESSAGE_LOAD,
    M2_LINK_MODELS,
    M3_MAC_CONSTANTS,
    MULTI_MESSAGE_EXPERIMENTS,
)
from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    ScalePlan,
    Series,
    SeriesResult,
)

ALL_EXPERIMENTS: dict[str, Experiment] = {
    **FIG1_EXPERIMENTS,
    **ABLATION_EXPERIMENTS,
    **MULTI_MESSAGE_EXPERIMENTS,
    **ENGINE_BENCH_EXPERIMENTS,
}

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ScalePlan",
    "Series",
    "SeriesResult",
    "FIG1_EXPERIMENTS",
    "ABLATION_EXPERIMENTS",
    "MULTI_MESSAGE_EXPERIMENTS",
    "ENGINE_BENCH_EXPERIMENTS",
    "ALL_EXPERIMENTS",
    "E1A_STATIC_GLOBAL_DIAMETER",
    "E1B_STATIC_GLOBAL_CONTENTION",
    "E2A_STATIC_LOCAL_GEO",
    "E2B_STATIC_LOCAL_CLIQUE",
    "E3_OFFLINE_GLOBAL",
    "E4_OFFLINE_LOCAL",
    "E5_ONLINE_GLOBAL",
    "E6_ONLINE_LOCAL",
    "E7A_OBLIVIOUS_GLOBAL_N",
    "E7B_OBLIVIOUS_GLOBAL_D",
    "E8_OBLIVIOUS_LOCAL_GENERAL",
    "E9_OBLIVIOUS_LOCAL_GEO",
    "E1B_LARGE_STATIC_SCALE",
    "A1_PERMUTATION",
    "A2_COORDINATION",
    "A3_SEED_SHARING",
    "M1_MESSAGE_LOAD",
    "M2_LINK_MODELS",
    "M3_MAC_CONSTANTS",
]
