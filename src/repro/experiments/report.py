"""Markdown report generation: experiment results → EXPERIMENTS.md rows.

EXPERIMENTS.md records paper-vs-measured for every Figure-1 cell. Its
tables are generated from :class:`~repro.experiments.registry.ExperimentResult`
objects by this module, so the document can be regenerated from scratch
with::

    python -m repro run-all --scale full > full_scale_results.txt
    # or programmatically:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.report import experiment_markdown
    print(experiment_markdown(ALL_EXPERIMENTS["E5"].run(scale="full")))
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.tables import render_markdown_table
from repro.experiments.registry import ExperimentResult

__all__ = ["experiment_markdown", "summary_markdown"]


def experiment_markdown(result: ExperimentResult) -> str:
    """One experiment's full Markdown section."""
    exp = result.experiment
    lines = [
        f"### {exp.exp_id} — {exp.figure_cell}",
        "",
        f"**Paper bound:** {exp.paper_bound}",
        "",
    ]
    if exp.notes:
        lines.extend([exp.notes, ""])

    params = (
        result.series_results[0].sweep.parameters() if result.series_results else []
    )
    headers = [exp.parameter_name] + [
        sr.series.label for sr in result.series_results
    ]
    rows = []
    for i, parameter in enumerate(params):
        row: list[object] = [parameter]
        for sr in result.series_results:
            row.append(sr.sweep.medians()[i])
        rows.append(row)
    lines.append(render_markdown_table(headers, rows))
    lines.append("")

    verdict_rows = []
    for sr in result.series_results:
        verdict_rows.append(
            [
                sr.series.label,
                sr.series.role,
                sr.growth_class or "-",
                sr.best_model or "-",
                f"{min(sr.sweep.success_rates()):.0%}",
            ]
        )
    lines.append(
        render_markdown_table(
            ["series", "role", "growth", "best-fit", "min success"], verdict_rows
        )
    )
    contrast_lines = []
    for claim, ratio, holds in result.contrast_outcomes():
        status = "**holds**" if holds else "**FAILED**"
        contrast_lines.append(
            f"- {claim.description or claim.slow_label}: measured "
            f"{ratio:.1f}× ({status}; claimed ≥ {claim.min_ratio:g}"
            + (f", ≤ {claim.max_ratio:g}" if claim.max_ratio is not None else "")
            + ")"
        )
    if contrast_lines:
        lines.append("")
        lines.extend(contrast_lines)
    return "\n".join(lines)


def summary_markdown(results: Iterable[ExperimentResult]) -> str:
    """A one-row-per-experiment overview table."""
    rows = []
    for result in results:
        exp = result.experiment
        claims = result.contrast_outcomes()
        contrast = (
            "; ".join(f"{ratio:.1f}×" for _, ratio, _ in claims) if claims else "-"
        )
        shape_checks = [
            sr.shape_matches_expectation()
            for sr in result.series_results
            if sr.shape_matches_expectation() is not None
        ]
        shapes = (
            f"{sum(1 for ok in shape_checks if ok)}/{len(shape_checks)}"
            if shape_checks
            else "-"
        )
        rows.append(
            [exp.exp_id, exp.paper_bound, shapes, contrast, result.scale]
        )
    return render_markdown_table(
        ["experiment", "paper bound", "growth claims OK", "contrasts", "scale"], rows
    )
