"""Figure 1, cell by cell, as runnable experiments.

Each :class:`~repro.experiments.registry.Experiment` here regenerates
one cell of the paper's Figure 1 (the summary table of bounds). Lower
bound cells instantiate the *proof's own adversary* against the
strongest reasonable victims — including each adversary's best-response
algorithm — so the measured growth is a faithful estimate of the
worst-case shape; upper bound cells run the paper's algorithm against a
suite of oblivious adversaries and check the polylog/linear-in-D
shapes.

Every series is expressed as a declarative
:class:`~repro.api.spec.ScenarioSpec` — component names plus JSON
parameters resolved through :mod:`repro.registry`. Specs rebuild
*fresh* networks, algorithms, adversaries, and problems per trial
(secret structure — bridges, clasps — is redrawn from labelled child
streams of each trial seed, and stateful adversaries are never reused),
and being plain data they are picklable, so any experiment fans out
across cores via :class:`repro.api.ParallelExecutor` unchanged.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.api.spec import ScenarioSpec
from repro.experiments.registry import ContrastClaim, Experiment, ScalePlan, Series

__all__ = [
    "E1A_STATIC_GLOBAL_DIAMETER",
    "E1B_STATIC_GLOBAL_CONTENTION",
    "E2A_STATIC_LOCAL_GEO",
    "E2B_STATIC_LOCAL_CLIQUE",
    "E3_OFFLINE_GLOBAL",
    "E4_OFFLINE_LOCAL",
    "E5_ONLINE_GLOBAL",
    "E6_ONLINE_LOCAL",
    "E7A_OBLIVIOUS_GLOBAL_N",
    "E7B_OBLIVIOUS_GLOBAL_D",
    "E8_OBLIVIOUS_LOCAL_GENERAL",
    "E9_OBLIVIOUS_LOCAL_GEO",
    "FIG1_EXPERIMENTS",
]


# ----------------------------------------------------------------------
# Spec helpers
# ----------------------------------------------------------------------
def _dual_clique_spec(
    half: int,
    algorithm,
    adversary,
    *,
    problem: str,
    cap_factor: float = 48.0,
) -> ScenarioSpec:
    """Dual clique with a per-trial secret bridge (never the source).

    The ``dual-clique`` graph factory redraws the bridge from each
    trial seed's ``"network"`` stream, avoiding the source side's
    trivially-informed node — the adversarial placement of the proofs.
    Cut-based adversaries target side A declaratively (``side: "A"``).
    """
    n = 2 * half
    if problem == "global":
        prob = ("global-broadcast", {"source": 0})
    else:
        prob = ("local-broadcast", {"side": "A"})
    return ScenarioSpec(
        graph=("dual-clique", {"half": half}),
        problem=prob,
        algorithm=algorithm,
        adversary=adversary,
        max_rounds=int(cap_factor * n) + 4096,
    )


def _online_threshold(n: int) -> float:
    """The dense/sparse threshold used across the adaptive rows."""
    return 2.0 * math.log2(max(n, 2))


def _geo_local_spec(n: int, adversary, *, algorithm: str = "geo", cap=None) -> ScenarioSpec:
    """Per-trial random geographic graph (constant grey ratio) with a
    random quarter of the nodes as the local broadcast set."""
    algorithms = {
        "geo": ("geo-local", {}),
        "static-decay": ("static-local-decay", {}),
        "uniform": ("uniform-local", {}),
        "round-robin": ("round-robin-local", {}),
    }
    return ScenarioSpec(
        graph=("geographic", {"n": n, "grey_ratio": 2.0}),
        problem=("local-broadcast", {"fraction": 0.25}),
        algorithm=algorithms[algorithm],
        adversary=adversary,
        max_rounds=cap if cap is not None else 64 * n + 8192,
    )


# ----------------------------------------------------------------------
# Row 4 — no dynamic links (protocol model): the reference points
# ----------------------------------------------------------------------
_E1A_TOTAL_NODES = 128

_E1A_ALGORITHMS = {
    "plain-decay": ("plain-decay", {}),
    "permuted-decay": ("permuted-decay", {}),
    # Random slot order: the identity schedule would luckily sweep the
    # chain in id order (see round_robin docstring).
    "round-robin": ("round-robin-global", {"random_slots": True}),
}


def _e1a_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(num_cliques: int) -> ScenarioSpec:
        clique_size = max(2, _E1A_TOTAL_NODES // num_cliques)
        n = num_cliques * clique_size
        return ScenarioSpec(
            graph=(
                "line-of-cliques",
                {"num_cliques": num_cliques, "clique_size": clique_size},
            ),
            problem=("global-broadcast", {"source": 0}),
            algorithm=_E1A_ALGORITHMS[algorithm],
            adversary=("none", {}),
            max_rounds=32 * n * num_cliques + 4096,
        )

    return scenario_for


E1A_STATIC_GLOBAL_DIAMETER = Experiment(
    exp_id="E1a",
    figure_cell="No dynamic links — global broadcast (diameter sweep)",
    paper_bound="Θ(D log(n/D) + log² n) [10, 1, 15]",
    parameter_name="D(cliques)",
    series=(
        Series(
            "plain-decay [2]",
            _e1a_series("plain-decay"),
            role="paper upper bound",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "permuted-decay §4.1",
            _e1a_series("permuted-decay"),
            role="paper upper bound (dual-graph-safe)",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "round-robin",
            _e1a_series("round-robin"),
            role="robust baseline (O(nD), n fixed ⇒ linear with slope n)",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(4, 8), trials=3),
        "small": ScalePlan(parameters=(4, 8, 16, 32), trials=5),
        "full": ScalePlan(parameters=(4, 8, 16, 32, 64), trials=8),
    },
    notes=(
        f"Total nodes fixed at {_E1A_TOTAL_NODES}; the parameter reshapes them "
        "into k cliques of 128/k, so D = Θ(k) varies at constant n. Decay "
        "pays Θ(log n) per hop, round robin Θ(n) per hop — both linear in D "
        "but a factor ≈ n/log n apart, which the contrast claim checks."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="round-robin",
            fast_label="plain-decay [2]",
            min_ratio=3.0,
            description="decay beats round robin by ~n/log n per hop",
        ),
    ),
)


def _e1b_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        return ScenarioSpec(
            graph=("funnel", {"n": n}),
            problem=("global-broadcast", {"source": 0}),
            algorithm=(algorithm, {}),
            adversary=("none", {}),
            max_rounds=64 * n + 4096,
        )

    return scenario_for


E1B_STATIC_GLOBAL_CONTENTION = Experiment(
    exp_id="E1b",
    figure_cell="No dynamic links — global broadcast (contention sweep)",
    paper_bound="Θ(D log(n/D) + log² n); D = O(1) ⇒ polylog",
    parameter_name="n",
    series=(
        Series(
            "plain-decay [2]",
            _e1b_series("plain-decay"),
            role="paper upper bound",
            expected_models=("constant", "log n", "log^2 n"),
            expected_growth="sublinear",
        ),
        Series(
            "permuted-decay §4.1",
            _e1b_series("permuted-decay"),
            role="paper upper bound (dual-graph-safe)",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
            expected_growth="sublinear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(16, 32), trials=3),
        "small": ScalePlan(parameters=(32, 64, 128, 256), trials=5),
        "full": ScalePlan(parameters=(32, 64, 128, 256, 512), trials=8),
    },
    notes=(
        "Funnel graph (source → (n-2)-clique → sink): the sink faces the "
        "whole informed middle layer, isolating the log² n contention term "
        "(a bare clique is trivial — the source's solo announcement informs "
        "everyone in one round)."
    ),
)


def _e2a_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        return _geo_local_spec(n, ("none", {}), algorithm=algorithm)

    return scenario_for


E2A_STATIC_LOCAL_GEO = Experiment(
    exp_id="E2a",
    figure_cell="No dynamic links — local broadcast (geographic)",
    paper_bound="Θ(log n log Δ) [2, 8]",
    parameter_name="n",
    series=(
        Series(
            "static-local-decay [8]",
            _e2a_series("static-decay"),
            role="paper upper bound",
            expected_models=("constant", "log n", "log^2 n"),
            expected_growth="sublinear",
        ),
        Series(
            "uniform(1/Δ)",
            _e2a_series("uniform"),
            role="naive baseline (O(Δ log n))",
            expected_models=("constant", "log n", "log^2 n"),
            expected_growth="sublinear",
        ),
        Series(
            "round-robin",
            _e2a_series("round-robin"),
            role="robust baseline (O(n))",
            expected_models=("n",),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=5),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=8),
    },
    notes="Random geographic graphs, B = random quarter of nodes, G'-edges never fire.",
)


def _e2b_series(phase_by_delta: bool) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        ladder = {} if phase_by_delta else {"ladder_delta": 1}
        return ScenarioSpec(
            graph=("clique", {"n": n}),
            problem=("local-broadcast", {"side": "all"}),
            algorithm=("static-local-decay", ladder),
            adversary=("none", {}),
            # The ladderless ablation burns this whole budget; keep it
            # tight enough that censored trials stay cheap while
            # staying 10x above the ladder series' needs.
            max_rounds=16 * n + 2048,
        )

    return scenario_for


E2B_STATIC_LOCAL_CLIQUE = Experiment(
    exp_id="E2b",
    figure_cell="No dynamic links — local broadcast (Δ sweep on cliques)",
    paper_bound="Θ(log n log Δ); Δ = n−1 ⇒ Θ(log² n)",
    parameter_name="n",
    series=(
        Series(
            "static-local-decay [8] (ladder to 1/Δ)",
            _e2b_series(True),
            role="paper upper bound",
            expected_models=("log n", "log^2 n", "log^3 n"),
            expected_growth="sublinear",
        ),
        Series(
            "uniform(1/2) ladderless",
            _e2b_series(False),
            role="ablated ladder (fails to scale)",
            expected_models=(),
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(16, 32), trials=3),
        "small": ScalePlan(parameters=(32, 64, 128, 256), trials=5),
        "full": ScalePlan(parameters=(32, 64, 128, 256, 512), trials=8),
    },
    notes=(
        "All-broadcasters clique: every receiver faces Δ = n−1 contenders. "
        "The ladderless series pins decay's ladder as the scaling mechanism."
    ),
)


# ----------------------------------------------------------------------
# Row 1 — offline adaptive: Ω(n) [11] / upper O(n)
# ----------------------------------------------------------------------
def _e3_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        half = n // 2
        algorithms = {
            "uniform-1/|A|": ("uniform-global", {"probability": 1.0 / half}),
            "permuted-decay": ("permuted-decay", {}),
            "round-robin": ("round-robin-global", {}),
        }
        return _dual_clique_spec(
            half,
            algorithms[algorithm],
            ("offline-solo-blocker", {"side": "A"}),
            problem="global",
        )

    return scenario_for


E3_OFFLINE_GLOBAL = Experiment(
    exp_id="E3",
    figure_cell="DG + offline adaptive — global broadcast",
    paper_bound="Ω(n) [11] / O(n log² n) [12] (round robin: O(nD))",
    parameter_name="n",
    series=(
        Series(
            "uniform(1/|A|) vs solo-blocker",
            _e3_series("uniform-1/|A|"),
            role="best-response victim (lower-bound shape)",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "permuted-decay §4.1 vs solo-blocker",
            _e3_series("permuted-decay"),
            role="paper's oblivious-model algorithm as victim",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "round-robin vs solo-blocker",
            _e3_series("round-robin"),
            role="robust upper bound (O(nD), D const)",
            expected_models=("n",),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=8),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=8),
    },
    notes=(
        "Dual clique, secret bridge per trial. The solo blocker floods on "
        "|X| ≥ 2 and severs the cut otherwise: crossing needs the lone "
        "transmitter to be the unknown bridge endpoint — Θ(n) rounds."
    ),
)


def _e4_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        half = n // 2
        algorithms = {
            "uniform-1/|A|": ("uniform-local", {"probability": 1.0 / half}),
            "static-decay": ("static-local-decay", {}),
            "round-robin": ("round-robin-local", {}),
        }
        return _dual_clique_spec(
            half,
            algorithms[algorithm],
            ("offline-solo-blocker", {"side": "A"}),
            problem="local",
        )

    return scenario_for


E4_OFFLINE_LOCAL = Experiment(
    exp_id="E4",
    figure_cell="DG + offline adaptive — local broadcast",
    paper_bound="Ω(n) [11] / O(n log n) [8] (round robin: O(n))",
    parameter_name="n",
    series=(
        Series(
            "uniform(1/|A|) vs solo-blocker",
            _e4_series("uniform-1/|A|"),
            role="best-response victim (lower-bound shape)",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "static-local-decay [8] vs solo-blocker",
            _e4_series("static-decay"),
            role="static-optimal algorithm as victim",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "round-robin vs solo-blocker",
            _e4_series("round-robin"),
            role="robust upper bound (≤ n rounds)",
            expected_models=("n",),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=8),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=8),
    },
    notes="B = clique A; the binding receiver is the secret bridge partner t_B.",
)


# ----------------------------------------------------------------------
# Row 2 — online adaptive: Ω(n / log n) (Theorem 3.1)
# ----------------------------------------------------------------------
def _e5_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        half = n // 2
        threshold = _online_threshold(n)
        algorithms = {
            "threshold-riding": (
                "uniform-global",
                {"probability": threshold / (2.0 * half)},
            ),
            "permuted-decay": ("permuted-decay", {}),
            "round-robin": ("round-robin-global", {}),
        }
        return _dual_clique_spec(
            half,
            algorithms[algorithm],
            ("online-dense-sparse", {"side": "A", "threshold": threshold}),
            problem="global",
        )

    return scenario_for


E5_ONLINE_GLOBAL = Experiment(
    exp_id="E5",
    figure_cell="DG + online adaptive — global broadcast (Theorem 3.1)",
    paper_bound="Ω(n / log n)",
    parameter_name="n",
    series=(
        Series(
            "threshold-riding uniform vs dense/sparse",
            _e5_series("threshold-riding"),
            role="best-response victim — matches Ω(n/log n)",
            expected_models=("n / log n", "n", "sqrt(n) log n"),
            expected_growth="near-linear",
        ),
        Series(
            "permuted-decay §4.1 vs dense/sparse",
            _e5_series("permuted-decay"),
            role="oblivious-model algorithm as victim (≥ bound)",
            expected_models=("n", "n / log n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "round-robin vs dense/sparse",
            _e5_series("round-robin"),
            role="robust upper bound",
            expected_models=("n",),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=8),
        "full": ScalePlan(parameters=(64, 128, 256, 512, 1024), trials=8),
    },
    notes=(
        "The online adversary thresholds E[|X| | S] at 2·log2 n: dense rounds "
        "are flooded (collisions), sparse rounds sever the cut. The best "
        "response rides just under the threshold, paying Θ(n / log n) — the "
        "log-factor gap from the offline row is the adversary's hedging cost."
    ),
)


def _e6_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        half = n // 2
        threshold = _online_threshold(n)
        algorithms = {
            "threshold-riding": (
                "uniform-local",
                {"probability": threshold / (2.0 * half)},
            ),
            "static-decay": ("static-local-decay", {}),
            "round-robin": ("round-robin-local", {}),
        }
        return _dual_clique_spec(
            half,
            algorithms[algorithm],
            ("online-dense-sparse", {"side": "A", "threshold": threshold}),
            problem="local",
        )

    return scenario_for


E6_ONLINE_LOCAL = Experiment(
    exp_id="E6",
    figure_cell="DG + online adaptive — local broadcast (Theorem 3.1)",
    paper_bound="Ω(n / log n)",
    parameter_name="n",
    series=(
        Series(
            "threshold-riding uniform vs dense/sparse",
            _e6_series("threshold-riding"),
            role="best-response victim — matches Ω(n/log n)",
            expected_models=("n / log n", "n", "sqrt(n) log n"),
            expected_growth="near-linear",
        ),
        Series(
            "static-local-decay [8] vs dense/sparse",
            _e6_series("static-decay"),
            role="static-optimal algorithm as victim",
            expected_models=("n", "n / log n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "round-robin vs dense/sparse",
            _e6_series("round-robin"),
            role="robust upper bound",
            expected_models=("n",),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=8),
        "full": ScalePlan(parameters=(64, 128, 256, 512, 1024), trials=8),
    },
    notes="B = clique A; same adversary as E5.",
)


# ----------------------------------------------------------------------
# Row 3 — oblivious: global O(D log n + log² n) (Theorem 4.1)
# ----------------------------------------------------------------------
_OBLIVIOUS_SUITE: dict[str, tuple[str, dict]] = {
    "G-only": ("none", {}),
    "G'-always": ("all", {}),
    "alternating": ("alternating", {"phase_lengths": [1, 1]}),
    "GE-fade": ("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
    "avg-schedule-attack": ("predicted-dense-sparse", {"side": "A"}),
}


def _e7a_series(adversary_name: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        return _dual_clique_spec(
            n // 2,
            ("permuted-decay", {}),
            _OBLIVIOUS_SUITE[adversary_name],
            problem="global",
            cap_factor=96.0,
        )

    return scenario_for


E7A_OBLIVIOUS_GLOBAL_N = Experiment(
    exp_id="E7a",
    figure_cell="DG + oblivious — global broadcast (Theorem 4.1, n sweep)",
    paper_bound="O(D log n + log² n); constant D ⇒ polylog",
    parameter_name="n",
    series=tuple(
        Series(
            f"permuted-decay vs {name}",
            _e7a_series(name),
            role="paper upper bound under oblivious suite",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
        )
        for name in _OBLIVIOUS_SUITE
    ),
    scales={
        "tiny": ScalePlan(parameters=(16, 32), trials=3),
        "small": ScalePlan(parameters=(32, 64, 128, 256), trials=5),
        "full": ScalePlan(parameters=(32, 64, 128, 256, 512), trials=8),
    },
    notes=(
        "The same dual clique that costs Ω(n/log n) online-adaptively (E5) "
        "costs only polylog against every oblivious adversary — the paper's "
        "central separation."
    ),
)


_E7B_TOTAL_NODES = 128

_E7B_ALGORITHMS = {
    "permuted-decay": ("permuted-decay", {}),
    "round-robin": ("round-robin-global", {"random_slots": True}),
}


def _e7b_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(num_cliques: int) -> ScenarioSpec:
        clique_size = max(2, _E7B_TOTAL_NODES // num_cliques)
        n = num_cliques * clique_size
        return ScenarioSpec(
            graph=(
                "line-of-cliques",
                {
                    "num_cliques": num_cliques,
                    "clique_size": clique_size,
                    "flaky_cross_links": True,
                },
            ),
            problem=("global-broadcast", {"source": 0}),
            algorithm=_E7B_ALGORITHMS[algorithm],
            adversary=("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
            max_rounds=64 * n * num_cliques + 4096,
        )

    return scenario_for


E7B_OBLIVIOUS_GLOBAL_D = Experiment(
    exp_id="E7b",
    figure_cell="DG + oblivious — global broadcast (Theorem 4.1, D sweep)",
    paper_bound="O(D log n + log² n): linear in D",
    parameter_name="D(cliques)",
    series=(
        Series(
            "permuted-decay vs GE-fade",
            _e7b_series("permuted-decay"),
            role="paper upper bound",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "round-robin vs GE-fade",
            _e7b_series("round-robin"),
            role="robust baseline (O(nD); fading slows sweeps further)",
            expected_models=("n", "n log n"),
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(4, 8), trials=3),
        "small": ScalePlan(parameters=(4, 8, 16, 32), trials=5),
        "full": ScalePlan(parameters=(4, 8, 16, 32, 64), trials=8),
    },
    notes=(
        f"Total nodes fixed at {_E7B_TOTAL_NODES}, reshaped into k cliques "
        "with flaky cross links, under bursty node fading. Both series are "
        "linear in D; the contrast claim checks the ~n/log n per-hop gap."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="round-robin vs GE-fade",
            fast_label="permuted-decay vs GE-fade",
            min_ratio=2.0,
            description="permuted decay beats round robin per hop, obliviously",
        ),
    ),
)


# ----------------------------------------------------------------------
# Row 3 — oblivious: local Ω(√n / log n) on general graphs (Theorem 4.3)
# ----------------------------------------------------------------------
_E8_THRESHOLD_FACTOR = 0.75


def _e8_series(kind: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        band_length = math.isqrt(n // 2)
        if 2 * band_length * band_length != n:
            raise ValueError(f"E8 parameters must be n = 2L²; got {n}")
        threshold = _E8_THRESHOLD_FACTOR * math.log(max(n, 3))
        if kind == "riding":
            # Rides the attacker's threshold: expected head count stays
            # τ/2 (every round sparse), crossing probability per round
            # ≈ τ / 2L — the Ω(√n / log n) shape exactly.
            algorithm = (
                "uniform-local",
                {"probability": min(0.5, threshold / (2.0 * band_length))},
            )
        else:
            algorithm = ("static-local-decay", {})
        if kind == "control":
            adversary = ("none", {})
        else:
            adversary = (
                "bracelet-attacker",
                {"threshold_factor": _E8_THRESHOLD_FACTOR},
            )
        return ScenarioSpec(
            graph=("bracelet", {"band_length": band_length}),
            problem=("local-broadcast", {"side": "A"}),
            algorithm=algorithm,
            adversary=adversary,
            max_rounds=64 * n + 8192,
        )

    return scenario_for


E8_OBLIVIOUS_LOCAL_GENERAL = Experiment(
    exp_id="E8",
    figure_cell="DG + oblivious — local broadcast, general graphs (Theorem 4.3)",
    paper_bound="Ω(√n / log n)",
    parameter_name="n",
    series=(
        Series(
            "threshold-riding uniform vs bracelet attacker",
            _e8_series("riding"),
            role="best-response victim — matches Ω(√n/log n)",
            expected_models=("sqrt(n)", "sqrt(n) / log n", "sqrt(n) log n"),
            expected_growth="sublinear",
        ),
        Series(
            "static-local-decay vs bracelet attacker",
            _e8_series("attacked"),
            role="static-optimal algorithm as victim",
            expected_models=(),
        ),
        Series(
            "static-local-decay, no attack",
            _e8_series("control"),
            role="control (polylog without the attacker)",
            expected_models=("constant", "log n", "log^2 n"),
            expected_growth="sublinear",
        ),
    ),
    scales={
        # Parameters are n = 2L² for band lengths L = 4, 6, 8, 16, 24, 32, 48.
        "tiny": ScalePlan(parameters=(32, 128), trials=3),
        "small": ScalePlan(parameters=(128, 512, 1152), trials=5),
        "full": ScalePlan(parameters=(128, 512, 1152, 2048, 4608), trials=8),
    },
    notes=(
        "Bracelet networks with n = 2L². The attacker simulates every band "
        "in isolation (Lemma 4.4), labels rounds dense/sparse, and commits "
        "the cross-edge schedule before round 0; the binding receiver is the "
        "secret clasp partner. The general-graph Ω(√n/log n) shape versus "
        "E9's geographic polylog is the row's second separation."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="threshold-riding uniform vs bracelet attacker",
            fast_label="static-local-decay, no attack",
            min_ratio=1.5,
            description="the oblivious attack slows local broadcast measurably",
        ),
    ),
)


# ----------------------------------------------------------------------
# Row 3 — oblivious: local O(log² n log Δ) on geographic graphs (Thm 4.6)
# ----------------------------------------------------------------------
_GEO_SUITE: dict[str, tuple[str, dict]] = {
    "G-only": ("none", {}),
    "G'-always": ("all", {}),
    "GE-fade": ("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
    "moving-fade": ("moving-fade", {"fade_radius": 1.5, "speed": 0.3}),
    "cut-jammer": (
        "cut-jammer",
        {"side": "first-half", "period": 8, "dense_rounds": 4},
    ),
}


def _e9_series(adversary_name: str, algorithm: str = "geo") -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        return _geo_local_spec(n, _GEO_SUITE[adversary_name], algorithm=algorithm)

    return scenario_for


E9_OBLIVIOUS_LOCAL_GEO = Experiment(
    exp_id="E9",
    figure_cell="DG + oblivious — local broadcast, geographic graphs (Theorem 4.6)",
    paper_bound="O(log² n log Δ)",
    parameter_name="n",
    series=tuple(
        Series(
            f"geo-local §4.3 vs {name}",
            _e9_series(name),
            role="paper upper bound under oblivious suite",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
        )
        for name in _GEO_SUITE
    )
    + (
        Series(
            "round-robin vs GE-fade",
            _e9_series("GE-fade", algorithm="round-robin"),
            role="robust baseline (O(n))",
            expected_models=("n", "n log n", "sqrt(n) log n"),
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=2),
        "small": ScalePlan(parameters=(64, 128, 256), trials=4),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=6),
    },
    notes=(
        "Random geographic graphs (grey ratio r = 2), B = random quarter. "
        "The two-stage algorithm runs its initialization every trial; round "
        "counts include it."
    ),
)


#: The Figure-1 registry: experiment id → definition.
FIG1_EXPERIMENTS: dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in (
        E1A_STATIC_GLOBAL_DIAMETER,
        E1B_STATIC_GLOBAL_CONTENTION,
        E2A_STATIC_LOCAL_GEO,
        E2B_STATIC_LOCAL_CLIQUE,
        E3_OFFLINE_GLOBAL,
        E4_OFFLINE_LOCAL,
        E5_ONLINE_GLOBAL,
        E6_ONLINE_LOCAL,
        E7A_OBLIVIOUS_GLOBAL_N,
        E7B_OBLIVIOUS_GLOBAL_D,
        E8_OBLIVIOUS_LOCAL_GENERAL,
        E9_OBLIVIOUS_LOCAL_GEO,
    )
}
