"""Ablation experiments: isolating the paper's design mechanisms.

The Section 4 algorithms stack three mechanisms on top of plain decay:
(1) a *hidden* probability schedule (permutation), (2) schedule bits
*shared* among the relevant senders (coordination), and (3) in the
local algorithm, an initialization stage that distributes the shared
bits to nearby nodes (seed sharing). Each ablation removes exactly one
mechanism and measures the damage the corresponding adversary inflicts:

* **A1 — permutation**: plain decay's public ladder vs. the oblivious
  schedule attacker (which predicts it perfectly) vs. permuted decay
  under the *same* attacker (whose prediction is now stale). This is
  the Section 4.1 motivation, quantified.
* **A2 — coordination**: permuted decay vs. its uncoordinated variant
  (private per-node rungs) on the flooded dual clique. Lemma 4.2 needs
  all senders on one rung; without it, the solo-transmission
  probability collapses exponentially in ``|informed| / log n``.
* **A3 — seed sharing**: the Section 4.3 algorithm with and without
  the initialization stage on dense geographic graphs with all nodes
  broadcasting; self-seeded nodes form singleton coordination classes
  and pay the uncoordinated penalty locally.

Like Figure 1, every series is a declarative
:class:`~repro.api.spec.ScenarioSpec` resolved through the component
registries, so ablations fan out across cores like any other workload.
"""

from __future__ import annotations

from typing import Callable

from repro.api.spec import ScenarioSpec
from repro.experiments.registry import ContrastClaim, Experiment, ScalePlan, Series

__all__ = [
    "A1_PERMUTATION",
    "A2_COORDINATION",
    "A3_SEED_SHARING",
    "ABLATION_EXPERIMENTS",
]


# ----------------------------------------------------------------------
# A1 — the permutation (hidden schedule)
# ----------------------------------------------------------------------
def _a1_series(algorithm: str, attacked: bool) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        if attacked:
            # The attacker predicts *plain* decay's expected transmitter
            # counts; against the permuted variant the same prediction
            # is stale — that staleness is the measured quantity.
            adversary = ("predicted-dense-sparse", {"side": "A"})
        else:
            adversary = ("none", {})
        return ScenarioSpec(
            graph=("dual-clique", {"half": n // 2}),
            problem=("global-broadcast", {"source": 0}),
            algorithm=(
                "plain-decay" if algorithm == "plain" else "permuted-decay",
                {},
            ),
            adversary=adversary,
            max_rounds=96 * n + 8192,
        )

    return scenario_for


A1_PERMUTATION = Experiment(
    exp_id="A1",
    figure_cell="Ablation — does the hidden schedule matter? (§4.1 motivation)",
    paper_bound="plain decay: ~n/log n under schedule attack; permuted: polylog",
    parameter_name="n",
    series=(
        Series(
            "plain-decay vs schedule attacker",
            _a1_series("plain", attacked=True),
            role="ablated (public schedule), attacked",
            expected_models=("n / log n", "n", "sqrt(n) log n"),
            expected_growth="near-linear",
        ),
        Series(
            "plain-decay, no attack",
            _a1_series("plain", attacked=False),
            role="ablated variant's control",
            expected_models=("constant", "log n", "log^2 n"),
            expected_growth="sublinear",
        ),
        Series(
            "permuted-decay vs same attacker",
            _a1_series("permuted", attacked=True),
            role="full mechanism (hidden schedule), attacked",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
            expected_growth="sublinear",
        ),
        Series(
            "permuted-decay, no attack",
            _a1_series("permuted", attacked=False),
            role="full mechanism's control",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
            expected_growth="sublinear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=6),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=8),
    },
    notes=(
        "Identical network; each variant is measured attacked and "
        "unattacked. The attack multiplies plain decay's cost (its "
        "prediction is exact) but leaves permuted decay within a constant "
        "of its control (the prediction is stale) — the pair of contrast "
        "claims below."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="plain-decay vs schedule attacker",
            fast_label="plain-decay, no attack",
            min_ratio=2.0,
            description="the schedule attack bites the public ladder",
        ),
        ContrastClaim(
            slow_label="permuted-decay vs same attacker",
            fast_label="permuted-decay, no attack",
            min_ratio=0.0,
            max_ratio=2.5,
            description="the same attack is neutralized by hidden rungs",
        ),
    ),
)


# ----------------------------------------------------------------------
# A2 — coordination (shared bits)
# ----------------------------------------------------------------------
_A2_ALGORITHMS = {
    "permuted": "permuted-decay",
    "plain": "plain-decay",
    "uncoordinated": "uncoordinated-decay",
}


def _a2_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        # The funnel is deterministic; coins vary per trial.
        return ScenarioSpec(
            graph=("funnel", {"n": n}),
            problem=("global-broadcast", {"source": 0}),
            algorithm=(_A2_ALGORITHMS[algorithm], {}),
            adversary=("none", {}),
            max_rounds=16 * n + 4096,
        )

    return scenario_for


A2_COORDINATION = Experiment(
    exp_id="A2",
    figure_cell="Ablation — do shared permutation rungs matter? (Lemma 4.2)",
    paper_bound="coordinated: polylog; uncoordinated: (k/log n)·e^{-k/log n} per-round stall",
    parameter_name="n",
    series=(
        Series(
            "permuted-decay (shared rungs)",
            _a2_series("permuted"),
            role="full mechanism",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
            expected_growth="sublinear",
        ),
        Series(
            "plain-decay (clock-coordinated)",
            _a2_series("plain"),
            role="classic coordination (public clock)",
            expected_models=("constant", "log n", "log^2 n", "log^3 n"),
            expected_growth="sublinear",
        ),
        Series(
            "uncoordinated decay (private rungs)",
            _a2_series("uncoordinated"),
            role="ablated (independent rungs) — expect cap hits",
            expected_models=(),
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(16, 32), trials=3),
        "small": ScalePlan(parameters=(32, 64, 128), trials=4),
        "full": ScalePlan(parameters=(32, 64, 128, 256), trials=6),
    },
    notes=(
        "Funnel graph (source → clique → sink), fully static: the sink hears "
        "the whole informed middle layer, so a delivery needs exactly one "
        "transmitter among k = n-2 peers. Success rate is the headline: "
        "uncoordinated decay stops solving once k/log n outgrows the solo "
        "window; medians for unsolved trials are censored at the round cap."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="uncoordinated decay (private rungs)",
            fast_label="permuted-decay (shared rungs)",
            min_ratio=3.0,
            description="shared rungs keep the solo window open",
        ),
    ),
)


# ----------------------------------------------------------------------
# A3 — seed sharing (the §4.3 initialization stage)
# ----------------------------------------------------------------------
def _a3_series(variant: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        # Four dense clusters in a chain: every receiver neighbors
        # Θ(n/4) broadcasters, so coordination classes dominate.
        num_clusters = 4
        cluster_size = max(2, n // num_clusters)
        total = num_clusters * cluster_size
        return ScenarioSpec(
            graph=(
                "cluster-chain",
                {"num_clusters": num_clusters, "cluster_size": cluster_size},
            ),
            problem=("local-broadcast", {"side": "all"}),  # everyone broadcasts
            algorithm=(
                "geo-local",
                {
                    "share_seeds": variant == "full",
                    "always_participate": variant == "naive",
                },
            ),
            adversary=("none", {}),
            max_rounds=24 * total + 4096,
        )

    return scenario_for


A3_SEED_SHARING = Experiment(
    exp_id="A3",
    figure_cell="Ablation — does the initialization stage matter? (§4.3)",
    paper_bound="shared seeds: O(log² n log Δ); unshared: solo window collapses in Δ/log n",
    parameter_name="n",
    series=(
        Series(
            "geo-local with init stage",
            _a3_series("full"),
            # With B = V the neighborhood bound is Δ = Θ(n), so the
            # paper's log²n·logΔ reads as log³n — whose apparent
            # exponent sits exactly on the sublinear/near-linear
            # boundary in this window; no coarse-class claim.
            role="full mechanism",
            expected_models=("log^2 n", "log^3 n"),
        ),
        Series(
            "geo-local, self-seeded (thinned)",
            _a3_series("self-seeded"),
            role="partial ablation (private seeds, lottery kept)",
            expected_models=(),
        ),
        Series(
            "naive permuted decay (no coordination)",
            _a3_series("naive"),
            role="full ablation (§4.1 applied verbatim) — expect cap hits",
            expected_models=(),
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=2),
        "small": ScalePlan(parameters=(64, 128, 256), trials=3),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=5),
    },
    notes=(
        "Cluster-chain geographic graphs (4 near-clique clusters) with "
        "B = V: receivers neighbor Θ(n/4) broadcasters. The naive variant "
        "runs §4.1's subroutine independently per node (no seeds, no "
        "participation lottery) — Section 4.2's point that the global "
        "strategy does not transfer to local broadcast. The partial "
        "ablation keeps the lottery and shows per-round rung randomness "
        "already buys some thinning at laptop Δ. All variants share stage "
        "timing; medians of unsolved trials are censored at the cap."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="naive permuted decay (no coordination)",
            fast_label="geo-local with init stage",
            min_ratio=2.0,
            description="§4.3's coordination is what makes local broadcast fast",
        ),
    ),
)


#: Ablation registry: experiment id → definition.
ABLATION_EXPERIMENTS: dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in (A1_PERMUTATION, A2_COORDINATION, A3_SEED_SHARING)
}
