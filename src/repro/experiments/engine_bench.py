"""Engine-scale benchmark experiments.

Unlike the Figure-1 cells (whose job is reproducing the paper's
bounds at laptop scale), these experiments exist to exercise the
engines where their implementation choices matter: n in the tens of
thousands, where round skipping, bitset classification, and sparse
graph validation each move wall-clock time by integer factors while
results stay bit-identical.

``E1b_large`` extends the static-graph story of ``E1b``/``E2a`` to
n ≥ 10⁴ on rings — the cheapest graphs to build (O(E) construction and
validation), so that measured time is engine time, not setup time. The
round-robin series is the round-skipping showcase: with a 1/64
broadcaster fraction, ~63/64 of its rounds are provably silent, which
a skipping engine fast-forwards through. The decay series pins the
paper's polylog bound at the same scale; the contrast claim between
them is Figure 1's static-row separation, two decades of n further out
than ``E2a`` measures it.
"""

from __future__ import annotations

from typing import Callable

from repro.api.spec import ScenarioSpec
from repro.experiments.registry import ContrastClaim, Experiment, ScalePlan, Series

__all__ = ["E1B_LARGE_STATIC_SCALE", "ENGINE_BENCH_EXPERIMENTS"]

#: 1/64 of the ring broadcasts: silence dominates (the skip showcase)
#: while every pass still makes progress on some receiver.
_BROADCAST_FRACTION = 1.0 / 64.0


def _e1b_large_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    algorithms = {
        "round-robin": ("round-robin-local", {}),
        "static-decay": ("static-local-decay", {}),
    }

    def scenario_for(n: int) -> ScenarioSpec:
        return ScenarioSpec(
            graph=("ring", {"n": n}),
            problem=("local-broadcast", {"fraction": _BROADCAST_FRACTION}),
            algorithm=algorithms[algorithm],
            adversary=("none", {}),
            max_rounds=4 * n + 4096,
        )

    return scenario_for


E1B_LARGE_STATIC_SCALE = Experiment(
    exp_id="E1b_large",
    figure_cell="No dynamic links — local broadcast at engine scale (n ≥ 10⁴)",
    paper_bound="Θ(log n log Δ) [2, 8] vs O(n) round robin, at n = 10⁴",
    parameter_name="n",
    series=(
        Series(
            "round-robin (1/64 broadcasters)",
            _e1b_large_series("round-robin"),
            role="skip showcase (O(n), ~63/64 of rounds provably silent)",
            expected_models=("n", "n log n"),
            expected_growth="near-linear",
        ),
        Series(
            "static-local-decay [8]",
            _e1b_large_series("static-decay"),
            role="paper upper bound (polylog at every n)",
            expected_models=("constant", "log n", "log^2 n"),
            expected_growth="sublinear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(256, 512), trials=2),
        "small": ScalePlan(parameters=(2500, 5000, 10000), trials=2),
        "full": ScalePlan(parameters=(2500, 5000, 10000, 20000), trials=3),
    },
    notes=(
        "Ring graphs, G = G', broadcasters a random 1/64 of the nodes. "
        "Rings keep construction O(E), so at n = 10⁴ the benches time the "
        "round loop itself; the round-robin series is ~63/64 silent rounds, "
        "the regime where event-driven round skipping pays. Round counts "
        "are engine- and skip-independent (see tests/test_skip_properties)."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="round-robin (1/64 broadcasters)",
            fast_label="static-local-decay [8]",
            min_ratio=5.0,
            description="decay's polylog beats the linear slot schedule at 10⁴",
        ),
    ),
)


#: Engine-benchmark registry: experiment id → definition.
ENGINE_BENCH_EXPERIMENTS: dict[str, Experiment] = {
    exp.exp_id: exp for exp in (E1B_LARGE_STATIC_SCALE,)
}
