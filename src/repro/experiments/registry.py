"""Experiment registry framework.

Every Figure-1 cell (and each ablation) is an :class:`Experiment`: a
swept parameter, one or more :class:`Series` (algorithm × adversary
combinations — lower-bound victims, upper-bound algorithms, baselines),
per-scale sweep plans, and the paper's bound string for the report.

Benches call :meth:`Experiment.run` at bench scale and print
:meth:`ExperimentResult.render`; integration tests run the ``tiny``
scale and assert the per-series shape/success expectations encoded in
the series definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.fitting import (
    STANDARD_MODELS,
    ModelFit,
    classify_growth,
    select_model,
)
from repro.analysis.runner import Scenario
from repro.analysis.sweep import SweepResult, run_sweep
from repro.analysis.tables import render_table
from repro.core.errors import ExperimentError

__all__ = [
    "Series",
    "ScalePlan",
    "Experiment",
    "ExperimentResult",
    "SeriesResult",
    "ContrastClaim",
]


@dataclass(frozen=True)
class ContrastClaim:
    """A within-experiment separation: one series slower than another.

    The lower-bound cells' real content is a *contrast* — the proof's
    adversary makes the victim measurably slower than a control on the
    same workload. ``slow_label`` / ``fast_label`` name the two series;
    the claim holds when ``median(slow) ≥ min_ratio · median(fast)`` at
    the largest swept parameter (censored medians included — a series
    that stops solving at all counts as maximally slow).

    ``max_ratio`` (optional) additionally bounds the ratio from above —
    the "this attack does *not* hurt" direction, e.g. permuted decay
    under the schedule attacker staying within a constant of its
    unattacked control.
    """

    slow_label: str
    fast_label: str
    min_ratio: float
    max_ratio: Optional[float] = None
    description: str = ""

    def holds(self, ratio: float) -> bool:
        if ratio < self.min_ratio:
            return False
        if self.max_ratio is not None and ratio > self.max_ratio:
            return False
        return True


@dataclass(frozen=True)
class Series:
    """One measured line of an experiment.

    ``scenario_for(parameter)`` returns the per-trial scenario factory.
    ``expected_growth`` is the coarse growth class
    (:data:`~repro.analysis.fitting.GROWTH_CLASSES`) the measured
    medians should land in — the robust, verdict-bearing claim.
    ``expected_models`` lists fine-grained candidate shapes for the
    report (informational; neighbouring shapes are indistinguishable at
    laptop scale). ``role`` labels the series in reports.
    """

    label: str
    scenario_for: Callable[[int], Scenario]
    role: str = "measurement"
    expected_models: tuple[str, ...] = ()
    expected_growth: Optional[str] = None


@dataclass(frozen=True)
class ScalePlan:
    """Sweep sizing for one scale tier."""

    parameters: tuple[int, ...]
    trials: int


@dataclass
class SeriesResult:
    """One series' sweep plus its shape analysis."""

    series: Series
    sweep: SweepResult[int]
    model_fits: list[ModelFit] = field(default_factory=list)
    growth_class: Optional[str] = None

    @property
    def best_model(self) -> Optional[str]:
        return self.model_fits[0].model_name if self.model_fits else None

    def shape_matches_expectation(self) -> Optional[bool]:
        """True/False when the series carries a growth claim, else None."""
        if self.series.expected_growth is None:
            return None
        return self.growth_class == self.series.expected_growth

    def to_record(self) -> dict:
        """JSON-safe, seed-determined summary (no timings, no host info)."""
        return {
            "label": self.series.label,
            "role": self.series.role,
            "sweep": self.sweep.to_dict(),
            "growth_class": self.growth_class,
            "best_model": self.best_model,
            "expected_growth": self.series.expected_growth,
            "growth_ok": self.shape_matches_expectation(),
        }


@dataclass
class ExperimentResult:
    """All series of one experiment at one scale."""

    experiment: "Experiment"
    scale: str
    series_results: list[SeriesResult]

    def series_by_label(self, label: str) -> SeriesResult:
        for result in self.series_results:
            if result.series.label == label:
                return result
        raise ExperimentError(f"no series labelled {label!r}")

    def contrast_outcomes(self) -> list[tuple[ContrastClaim, float, bool]]:
        """Evaluate each contrast claim at the largest swept parameter.

        Returns ``(claim, measured_ratio, holds)`` triples; the ratio is
        ``median(slow) / median(fast)`` at the final sweep point.
        """
        outcomes = []
        for claim in self.experiment.contrasts:
            slow = self.series_by_label(claim.slow_label).sweep.medians()[-1]
            fast = self.series_by_label(claim.fast_label).sweep.medians()[-1]
            ratio = slow / fast if fast > 0 else float("inf")
            outcomes.append((claim, ratio, claim.holds(ratio)))
        return outcomes

    def to_record(self) -> dict:
        """The experiment outcome as one JSON-safe aggregate record.

        This is the payload the campaign layer checkpoints: a pure
        function of ``(experiment, scale, master_seed)``, so an
        interrupted-and-resumed campaign reproduces it byte for byte.
        Wall-clock time and host details deliberately live *outside*
        this dict (in the shard record's ``meta``).
        """

        def json_safe_ratio(ratio: float):
            # A fast series whose censored median is 0 yields inf, which
            # json.dumps would emit as the non-RFC token ``Infinity``.
            return ratio if math.isfinite(ratio) else "inf"

        return {
            "experiment": self.experiment.exp_id,
            "figure_cell": self.experiment.figure_cell,
            "paper_bound": self.experiment.paper_bound,
            "parameter_name": self.experiment.parameter_name,
            "scale": self.scale,
            "series": [r.to_record() for r in self.series_results],
            "contrasts": [
                {
                    "slow": claim.slow_label,
                    "fast": claim.fast_label,
                    "min_ratio": claim.min_ratio,
                    "max_ratio": claim.max_ratio,
                    "description": claim.description,
                    "ratio": json_safe_ratio(ratio),
                    "holds": holds,
                }
                for claim, ratio, holds in self.contrast_outcomes()
            ],
        }

    def render(self) -> str:
        """Human-readable report: per-series medians, ratios, and fits."""
        exp = self.experiment
        lines = [
            f"== {exp.exp_id}: {exp.figure_cell} ==",
            f"paper bound : {exp.paper_bound}",
            f"sweep       : {exp.parameter_name} = "
            f"{list(self.series_results[0].sweep.parameters()) if self.series_results else []}"
            f" (scale={self.scale})",
        ]
        if exp.notes:
            lines.append(f"notes       : {exp.notes}")
        headers = [exp.parameter_name] + [
            f"{r.series.label}" for r in self.series_results
        ]
        params = self.series_results[0].sweep.parameters() if self.series_results else []
        rows = []
        for i, p in enumerate(params):
            row = [p]
            for r in self.series_results:
                row.append(r.sweep.medians()[i])
            rows.append(row)
        lines.append(render_table(headers, rows, title="median rounds:"))
        for r in self.series_results:
            ratios = ", ".join(f"{x:.2f}" for x in r.sweep.growth_ratios())
            fit = r.best_model or "-"
            growth = r.growth_class or "-"
            verdict = ""
            if r.series.expected_growth is not None:
                verdict = (
                    "  [growth OK]"
                    if r.shape_matches_expectation()
                    else f"  [expected {r.series.expected_growth}]"
                )
            success = min(r.sweep.success_rates()) if r.sweep.points else 0.0
            lines.append(
                f"  {r.series.label} ({r.series.role}): growth {growth} "
                f"(ratios [{ratios}]), best-fit {fit}, "
                f"min success {success:.0%}{verdict}"
            )
        for claim, ratio, holds in self.contrast_outcomes():
            bound = f"≥ {claim.min_ratio:g}"
            if claim.max_ratio is not None:
                bound += f", ≤ {claim.max_ratio:g}"
            status = "OK" if holds else f"FAILED (need {bound})"
            lines.append(
                f"  contrast: {claim.slow_label!r} / {claim.fast_label!r} = "
                f"{ratio:.1f}x at max {exp.parameter_name} — {status}"
                + (f" ({claim.description})" if claim.description else "")
            )
        return "\n".join(lines)


def _with_overrides(
    scenario_for: Callable[[int], Scenario], overrides: Mapping[str, object]
) -> Callable[[int], Scenario]:
    """Wrap a series factory so every derived spec carries ``overrides``.

    ``overrides`` maps spec field paths (``"engine"``, ``"skip"``) to
    values. Relies on the scenario being a
    :class:`~repro.api.spec.ScenarioSpec` (anything exposing
    ``with_param``); raises a clear error otherwise — closure-based
    scenarios predate these knobs.
    """

    def scenario_with_overrides(parameter: int) -> Scenario:
        spec = scenario_for(parameter)
        for path, value in overrides.items():
            with_param = getattr(spec, "with_param", None)
            if with_param is None:
                raise ExperimentError(
                    f"{path} override requires spec-based series; "
                    f"{spec!r} has no with_param"
                )
            spec = with_param(path, value)
        return spec

    return scenario_with_overrides


@dataclass(frozen=True)
class Experiment:
    """A Figure-1 cell or ablation as a runnable sweep bundle."""

    exp_id: str
    figure_cell: str
    paper_bound: str
    parameter_name: str
    series: tuple[Series, ...]
    scales: Mapping[str, ScalePlan]
    notes: str = ""
    #: Restrict model selection to these candidates (None = all standard).
    candidate_models: Optional[tuple[str, ...]] = None
    #: Within-experiment separation claims, checked at the largest parameter.
    contrasts: tuple[ContrastClaim, ...] = ()

    def plan(self, scale: str) -> ScalePlan:
        if scale not in self.scales:
            raise ExperimentError(
                f"{self.exp_id} has no scale {scale!r}; choose from {sorted(self.scales)}"
            )
        return self.scales[scale]

    def run(
        self,
        *,
        scale: str = "small",
        master_seed: int = 2013,
        progress: Optional[Callable[[str, int], None]] = None,
        executor=None,
        engine: Optional[str] = None,
        skip: Optional[bool] = None,
    ) -> ExperimentResult:
        """Run every series' sweep at the given scale.

        ``executor`` (a :class:`repro.api.executor.TrialExecutor`) fans
        each series' trials out — results are identical to serial runs
        because trials are pure functions of their derived seeds.

        ``engine`` (optional) overrides every series spec's round-loop
        implementation (``"reference"`` / ``"bitset"`` / ``"bank"``),
        and ``skip`` (optional) overrides event-driven round skipping;
        round counts are independent of both, so these only change
        wall-clock time.
        Requires spec-based series (all registry experiments are).
        """
        plan = self.plan(scale)
        models = (
            {name: STANDARD_MODELS[name] for name in self.candidate_models}
            if self.candidate_models
            else None
        )
        series_results = []
        for series in self.series:
            if progress is not None:
                progress(series.label, 0)
            scenario_for = series.scenario_for
            overrides: dict[str, object] = {}
            if engine is not None:
                overrides["engine"] = engine
            if skip is not None:
                overrides["skip"] = skip
            if overrides:
                scenario_for = _with_overrides(scenario_for, overrides)
            sweep = run_sweep(
                f"{self.exp_id}:{series.label}",
                list(plan.parameters),
                scenario_for,
                trials=plan.trials,
                master_seed=master_seed,
                executor=executor,
            )
            fits: list[ModelFit] = []
            growth_class: Optional[str] = None
            medians = sweep.medians()
            if len(medians) >= 2 and all(m > 0 for m in medians):
                params = [float(p) for p in sweep.parameters()]
                fits = select_model(params, medians, models=models)
                growth_class = classify_growth(params, medians)
            series_results.append(
                SeriesResult(
                    series=series,
                    sweep=sweep,
                    model_fits=fits,
                    growth_class=growth_class,
                )
            )
        return ExperimentResult(
            experiment=self, scale=scale, series_results=series_results
        )
