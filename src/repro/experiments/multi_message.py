"""The multi-message experiment family (``M1``–``M3``).

Where ``E1``–``E9`` regenerate the paper's Figure-1 cells, the ``M*``
experiments measure the *new workload axis* the dual-graph model was
designed to host: multi-message broadcast over abstract MAC layers
(Ghaffari–Kantor–Lynch–Newport) with simple back-off contention
resolution (Gilbert–Lynch–Newport–Pajak) as the counterpoint.

* ``M1`` — message-load sweep: completion rounds versus ``k`` at fixed
  ``n``, GKLN's ack-paced queueing against simple back-off, under
  bursty link fading. The GKLN discipline serializes ``k`` ack windows
  through every relay, so its completion grows near-linearly in ``k``.
* ``M2`` — link-model sweep: the same GKLN protocol versus ``n``
  across three link regimes — no dynamic links, stochastic fading, and
  the offline adaptive solo blocker ([11]'s attacker, here throttling
  a node cut). The offline attacker is the only regime that changes
  the *shape*, not just the constant.
* ``M3`` — ack/progress constants: the simulated MAC realization
  versus the oracle MAC that samples the same ``f_ack``/``f_prog``
  envelopes directly. The oracle is the idealized baseline; the
  measured ratio between the curves is the realization overhead of the
  decay-window resolver.

Like every registry experiment, each series is a declarative
:class:`~repro.api.spec.ScenarioSpec` — here exercising the spec's
``mac=`` and ``messages=`` sections — so the whole family runs through
``repro run``, the campaign layer, and both engines unchanged.
"""

from __future__ import annotations

from typing import Callable

from repro.api.spec import ScenarioSpec
from repro.experiments.registry import ContrastClaim, Experiment, ScalePlan, Series

__all__ = [
    "M1_MESSAGE_LOAD",
    "M2_LINK_MODELS",
    "M3_MAC_CONSTANTS",
    "MULTI_MESSAGE_EXPERIMENTS",
]


# ----------------------------------------------------------------------
# M1 — completion vs message load k
# ----------------------------------------------------------------------
_M1_TOTAL_NODES = 64

_M1_ALGORITHMS = {
    "gkln": ("gkln-multi-message", {}),
    "backoff": ("backoff-multi-message", {}),
}


def _m1_series(algorithm: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(k: int) -> ScenarioSpec:
        return ScenarioSpec(
            graph=("geographic", {"n": _M1_TOTAL_NODES, "grey_ratio": 2.0}),
            problem=("multi-message", {}),
            algorithm=_M1_ALGORITHMS[algorithm],
            adversary=("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
            mac=("simulated", {}),
            messages={"k": k, "sources": "random"},
        )

    return scenario_for


M1_MESSAGE_LOAD = Experiment(
    exp_id="M1",
    figure_cell="Multi-message broadcast — message-load sweep (GKLN vs back-off)",
    paper_bound="GKLN BMMB: O((D + k)·f_ack) ⇒ linear in k at fixed n",
    parameter_name="k",
    series=(
        Series(
            "gkln-queued vs GE-fade",
            _m1_series("gkln"),
            role="GKLN ack-paced queueing (simulated MAC)",
            expected_models=("n", "n log n"),
        ),
        Series(
            "backoff-concurrent vs GE-fade",
            _m1_series("backoff"),
            role="GLNP simple back-off (no ack pacing)",
            expected_models=("n", "n log n", "sqrt(n) log n"),
            expected_growth="near-linear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(4, 8), trials=3),
        "small": ScalePlan(parameters=(2, 4, 8, 16), trials=5),
        "full": ScalePlan(parameters=(2, 4, 8, 16, 32), trials=8),
    },
    notes=(
        f"Random geographic graphs (n fixed at {_M1_TOTAL_NODES}), k messages at "
        "random sources, bursty GE node fading. The measured crossover is "
        "the family's finding: ack-paced queueing wins at moderate load "
        "(~4x faster at k ≤ 8) but collapses superlinearly once per-node "
        "queues and window failures compound (k ≥ 16), while GLNP simple "
        "back-off degrades gracefully — near-linear in k across the whole "
        "range, exactly its robustness pitch."
    ),
)


# ----------------------------------------------------------------------
# M2 — completion vs n across link models
# ----------------------------------------------------------------------
_M2_ADVERSARIES = {
    "G-only": ("none", {}),
    "GE-fade": ("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
    "offline-solo-blocker": ("offline-solo-blocker", {"side": "first-half"}),
}

_M2_MESSAGES = 4


def _m2_series(adversary: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        return ScenarioSpec(
            graph=("geographic", {"n": n, "grey_ratio": 2.0}),
            problem=("multi-message", {}),
            algorithm=("gkln-multi-message", {}),
            adversary=_M2_ADVERSARIES[adversary],
            mac=("simulated", {}),
            messages={"k": _M2_MESSAGES, "sources": "random"},
        )

    return scenario_for


M2_LINK_MODELS = Experiment(
    exp_id="M2",
    figure_cell="Multi-message broadcast — link-model sweep (GKLN vs adversaries)",
    paper_bound="abstract-MAC completion under unreliable links (GKLN §5)",
    parameter_name="n",
    series=tuple(
        Series(
            f"gkln-queued vs {name}",
            _m2_series(name),
            role=(
                "offline adaptive victim"
                if name == "offline-solo-blocker"
                else "oblivious link model"
            ),
            expected_models=(),
        )
        for name in _M2_ADVERSARIES
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=5),
        "full": ScalePlan(parameters=(64, 128, 256, 512), trials=8),
    },
    notes=(
        f"k = {_M2_MESSAGES} messages at random sources on random "
        "geographic graphs. The oblivious regimes (static G, GE fading) "
        "only move constants; the offline solo blocker throttles the "
        "first-half cut whenever a lone transmitter could cross it — the "
        "adaptive-adversary tax, now on a multi-message workload. The "
        "offline series runs on the reference engine (the bitset fast "
        "path declines adaptive adversaries with a warning)."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="gkln-queued vs offline-solo-blocker",
            fast_label="gkln-queued vs G-only",
            min_ratio=1.2,
            description="the offline adaptive attacker measurably slows multi-message completion",
        ),
    ),
)


# ----------------------------------------------------------------------
# M3 — simulated realization vs oracle envelope
# ----------------------------------------------------------------------
_M3_MESSAGES = 4

_M3_MACS = {
    "simulated": ("simulated", {}),
    "oracle": ("oracle", {}),
}


def _m3_series(mac: str) -> Callable[[int], ScenarioSpec]:
    def scenario_for(n: int) -> ScenarioSpec:
        return ScenarioSpec(
            graph=("geographic", {"n": n, "grey_ratio": 2.0}),
            problem=("multi-message", {}),
            algorithm=("gkln-multi-message", {}),
            adversary=("none", {}),
            mac=_M3_MACS[mac],
            messages={"k": _M3_MESSAGES, "sources": "random"},
        )

    return scenario_for


M3_MAC_CONSTANTS = Experiment(
    exp_id="M3",
    figure_cell="Multi-message broadcast — ack/progress constants (simulated vs oracle MAC)",
    paper_bound="f_ack = Θ(log n log Δ), f_prog ≤ f_ack (abstract MAC envelopes)",
    parameter_name="n",
    series=(
        Series(
            "gkln on simulated MAC",
            _m3_series("simulated"),
            role="realized layer (decay-window resolver on the engine)",
            expected_models=(),
        ),
        Series(
            "gkln on oracle MAC",
            _m3_series("oracle"),
            role="idealized layer (delays sampled from the envelopes)",
            expected_models=(),
            expected_growth="sublinear",
        ),
    ),
    scales={
        "tiny": ScalePlan(parameters=(32, 64), trials=3),
        "small": ScalePlan(parameters=(64, 128, 256), trials=5),
        "full": ScalePlan(parameters=(128, 256, 512, 1024), trials=8),
    },
    notes=(
        f"k = {_M3_MESSAGES} messages, no link adversary, matched "
        "f_ack/f_prog formulas on both layers. The oracle ignores the "
        "radio engine entirely (event-driven delay sampling), so its "
        "series is cheap even at the full scale; the gap between the "
        "curves is the simulated resolver's realization overhead."
    ),
    contrasts=(
        ContrastClaim(
            slow_label="gkln on simulated MAC",
            fast_label="gkln on oracle MAC",
            min_ratio=1.0,
            description="the realized layer is never faster than its idealized envelope",
        ),
    ),
)


#: The multi-message registry: experiment id → definition.
MULTI_MESSAGE_EXPERIMENTS: dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in (M1_MESSAGE_LOAD, M2_LINK_MODELS, M3_MAC_CONSTANTS)
}
