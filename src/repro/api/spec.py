"""The declarative scenario description: :class:`ScenarioSpec`.

A spec names the four components of a trial — graph family, problem,
algorithm, adversary — by registry key plus JSON-safe parameters, and
carries the round cap. A spec plus a trial seed fully determines a
:class:`~repro.analysis.runner.PreparedTrial`; all per-trial randomness
(secret bridges, geographic placements, broadcaster samples) is drawn
from labelled child streams of the seed inside the registered
factories. That gives specs three properties the closure-based
scenarios never had:

* **serializable** — ``to_dict()``/``from_dict()`` round-trip through
  JSON, so scenarios live in files, configs, and CLI arguments;
* **picklable** — a spec is plain data, so the parallel executor can
  ship it to worker processes;
* **deterministic** — ``spec(seed)`` is a pure function, so serial and
  parallel execution produce identical results.

A spec is itself a :data:`~repro.analysis.runner.Scenario` (calling it
with a seed builds the trial), so every existing sweep/trial entry
point accepts one unchanged.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.analysis.runner import PreparedTrial, default_round_cap
from repro.core.engine import ENGINE_NAMES
from repro.core.errors import SpecError
from repro.registry import (
    ADVERSARIES,
    ALGORITHMS,
    GRAPHS,
    MACS,
    PROBLEMS,
    ScenarioContext,
)

__all__ = ["ComponentRef", "ScenarioSpec", "build_prepared_trial"]


_JSON_SCALARS = (str, int, float, bool, type(None))


def _check_json_value(value: Any, where: str) -> Any:
    """Validate (and normalize tuples in) a parameter value for JSON."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_json_value(v, where) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_check_json_value(v, where) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _check_json_value(v, where) for k, v in value.items()}
    raise SpecError(
        f"{where}: parameter value {value!r} is not JSON-serializable"
    )


@dataclass(frozen=True)
class ComponentRef:
    """A registry key plus its JSON parameters.

    Accepts several shorthands through :meth:`of` — a bare name, a
    ``(name, params)`` pair, or a ``{"name": ..., "params": ...}``
    dict — so spec literals stay compact.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError(f"component needs a non-empty string name, got {self.name!r}")
        object.__setattr__(
            self,
            "params",
            {str(k): _check_json_value(v, self.name) for k, v in dict(self.params).items()},
        )

    @classmethod
    def of(cls, value: object, *, kind: str = "component") -> "ComponentRef":
        if isinstance(value, ComponentRef):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            extra = set(value) - {"name", "params"}
            if "name" not in value or extra:
                raise SpecError(
                    f"{kind} dict needs 'name' (+ optional 'params'); got keys {sorted(value)}"
                )
            return cls(name=value["name"], params=dict(value.get("params") or {}))
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return cls(name=value[0], params=dict(value[1]))
        raise SpecError(
            f"cannot interpret {value!r} as a {kind}; pass a name, "
            "(name, params), or {'name': ..., 'params': ...}"
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    def with_param(self, key: str, value: object) -> "ComponentRef":
        params = dict(self.params)
        params[key] = value
        return ComponentRef(name=self.name, params=params)


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the scenario space, declaratively.

    Build order is graph → problem → algorithm → adversary, so problem
    params may reference graph structure (``side: "A"``) and algorithm
    params may omit roles the problem already fixes (source ``B``).

    ``max_rounds=None`` falls back to the generous
    :func:`~repro.analysis.runner.default_round_cap`.

    ``engine`` picks the round-loop implementation
    (:data:`~repro.core.engine.ENGINE_NAMES`): ``"reference"``
    (default), ``"bitset"`` (the vectorized fast path), or ``"bank"``
    (the trial-batched engine — executors run a ``"bank"`` scenario's
    whole seed list as one lockstep bank). Both fast engines are
    seed-for-seed identical to the reference loop and auto-fall-back
    (with a warning) for adaptive adversaries. Because it cannot change results, the engine
    is a *performance* knob: it serializes with the spec so a saved
    scenario reruns the way it was tuned, but editing it never alters
    the measured rounds.

    ``skip`` controls event-driven round skipping (see
    ``docs/architecture.md`` "Round skipping"): ``None`` (default)
    resolves to the engine's default — on for the fast engines, off
    for ``reference`` — while ``True``/``False`` force it. Like the
    engine, skipping is trace-identical by construction, so this is a
    performance knob too; it is omitted from the serialized form (and
    the spec hash) when ``None`` so stored specs and artifacts keep
    their identities.
    """

    graph: ComponentRef
    problem: ComponentRef
    algorithm: ComponentRef
    adversary: ComponentRef
    max_rounds: Optional[int] = None
    validate_topologies: bool = False
    name: Optional[str] = None
    engine: str = "reference"
    skip: Optional[bool] = None
    #: Optional abstract MAC layer (``repro.mac``): a registry ref such
    #: as ``("simulated", {})`` or ``("oracle", {"f_ack_factor": 2})``.
    #: ``None`` means "no MAC indirection" — multi-message algorithms
    #: then default to a plain simulated layer.
    mac: Optional[ComponentRef] = None
    #: Optional multi-message workload, e.g. ``{"k": 4, "sources":
    #: "random"}`` — resolved per trial seed into a
    #: :class:`~repro.mac.base.MessageAssignment` and consumed by the
    #: ``multi-message`` problem and the MAC-level algorithms.
    messages: Optional[dict] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "graph", ComponentRef.of(self.graph, kind="graph"))
        object.__setattr__(self, "problem", ComponentRef.of(self.problem, kind="problem"))
        object.__setattr__(
            self, "algorithm", ComponentRef.of(self.algorithm, kind="algorithm")
        )
        object.__setattr__(
            self, "adversary", ComponentRef.of(self.adversary, kind="adversary")
        )
        if self.mac is not None:
            object.__setattr__(self, "mac", ComponentRef.of(self.mac, kind="mac"))
        if self.messages is not None:
            if not isinstance(self.messages, Mapping):
                raise SpecError(
                    f"messages must be a mapping, got {type(self.messages).__name__}"
                )
            object.__setattr__(
                self,
                "messages",
                {
                    str(k): _check_json_value(v, "messages")
                    for k, v in self.messages.items()
                },
            )
        if self.max_rounds is not None:
            # Coerce: a float cap (e.g. 96.0 * n from a scale formula)
            # must serialize and compare identically after a JSON trip.
            object.__setattr__(self, "max_rounds", int(self.max_rounds))
            if self.max_rounds < 1:
                raise SpecError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.engine not in ENGINE_NAMES:
            raise SpecError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_NAMES}"
            )
        if self.skip is not None:
            if not isinstance(self.skip, bool):
                raise SpecError(
                    f"skip must be true, false, or null, got {self.skip!r}"
                )

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def build(self, seed: int) -> PreparedTrial:
        """Resolve every component and assemble the trial for ``seed``."""
        return build_prepared_trial(self, seed)

    def __call__(self, seed: int) -> PreparedTrial:
        """A spec is a Scenario: ``spec(seed)`` builds the trial."""
        return self.build(seed)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "graph": self.graph.to_dict(),
            "problem": self.problem.to_dict(),
            "algorithm": self.algorithm.to_dict(),
            "adversary": self.adversary.to_dict(),
            "max_rounds": self.max_rounds,
            "validate_topologies": self.validate_topologies,
            "engine": self.engine,
        }
        if self.skip is not None:
            data["skip"] = self.skip
        if self.mac is not None:
            data["mac"] = self.mac.to_dict()
        if self.messages is not None:
            data["messages"] = dict(self.messages)
        if self.name is not None:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a mapping, got {type(data).__name__}")
        known = {
            "graph",
            "problem",
            "algorithm",
            "adversary",
            "max_rounds",
            "validate_topologies",
            "name",
            "engine",
            "skip",
            "mac",
            "messages",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec keys {sorted(unknown)}; known: {sorted(known)}")
        missing = {"graph", "problem", "algorithm", "adversary"} - set(data)
        if missing:
            raise SpecError(f"spec is missing sections {sorted(missing)}")
        max_rounds = data.get("max_rounds")
        return cls(
            graph=ComponentRef.of(data["graph"], kind="graph"),
            problem=ComponentRef.of(data["problem"], kind="problem"),
            algorithm=ComponentRef.of(data["algorithm"], kind="algorithm"),
            adversary=ComponentRef.of(data["adversary"], kind="adversary"),
            max_rounds=None if max_rounds is None else int(max_rounds),
            validate_topologies=bool(data.get("validate_topologies", False)),
            name=data.get("name"),
            engine=str(data.get("engine", "reference")),
            skip=data.get("skip"),
            mac=(
                None
                if data.get("mac") is None
                else ComponentRef.of(data["mac"], kind="mac")
            ),
            messages=data.get("messages"),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def canonical_dict(self) -> dict:
        """The result-determining fields only.

        ``name`` is a display label — two specs differing only in name
        produce identical trials — so it is excluded from the identity
        surface. Everything else (including ``engine``: it is a grid
        axis for campaigns and shard keys, even though results are
        engine-independent) participates.
        """
        data = self.to_dict()
        data.pop("name", None)
        return data

    def spec_hash(self) -> str:
        """Stable content hash of the spec: the serve-layer cache key.

        Canonical-JSON SHA-256 (:func:`repro.core.canonical.stable_hash`)
        of :meth:`canonical_dict`, domain-separated from campaign and
        shard hashes. Stable across dict insertion order, JSON
        round-trips, processes, and Python versions — so it doubles as
        a durable artifact name for benches and store records. A spec
        hash plus a master seed fully determines a trial batch, which
        is why ``(spec_hash, seed)`` is the dedup key of
        :meth:`repro.campaign.store.ResultStore.find` and of
        ``POST /v1/runs``.
        """
        from repro.core.canonical import stable_hash

        return stable_hash({"kind": "scenario", "spec": self.canonical_dict()})

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation (sweeps)
    # ------------------------------------------------------------------
    _SECTIONS = ("graph", "problem", "algorithm", "adversary", "mac")

    def with_param(self, path: str, value: object) -> "ScenarioSpec":
        """A copy with one dotted-path parameter replaced.

        ``"graph.n"`` sets the graph's ``n`` parameter; ``"mac.<p>"``
        sets a MAC-layer parameter (the spec must already carry a
        ``mac``); ``"messages.<key>"`` edits the message workload (so
        ``sweep(spec, "messages.k", …)`` sweeps the message load); the
        bare field names ``"max_rounds"`` / ``"validate_topologies"``
        / ``"name"`` / ``"engine"`` / ``"skip"`` set the spec's own
        fields. This is
        how :func:`repro.api.sweep` derives one spec per swept value
        and how ``--engine`` overrides ride along an experiment.
        """
        if path in ("max_rounds", "validate_topologies", "name", "engine", "skip"):
            return dataclasses.replace(self, **{path: value})
        section, dot, key = path.partition(".")
        if section == "messages" and dot and key:
            messages = dict(self.messages or {})
            messages[key] = value
            return dataclasses.replace(self, messages=messages)
        if not dot or section not in self._SECTIONS or not key:
            raise SpecError(
                f"bad parameter path {path!r}; use '<section>.<param>' with "
                f"section in {self._SECTIONS + ('messages',)} or a top-level "
                "field name"
            )
        ref: Optional[ComponentRef] = getattr(self, section)
        if ref is None:
            raise SpecError(
                f"cannot set {path!r}: the spec has no {section} section "
                "(set one before deriving its parameters)"
            )
        return dataclasses.replace(self, **{section: ref.with_param(key, value)})

    def describe(self) -> str:
        """Compact one-line label for tables and progress output."""
        return self.name or (
            f"{self.algorithm.name} vs {self.adversary.name} "
            f"on {self.graph.name} ({self.problem.name})"
        )


#: Shared builds of deterministic graph families, keyed by
#: ``(name, canonical params JSON)``. DualGraphs are immutable, so one
#: instance can back every trial of a sweep point; this removes graph
#: construction + validation from the per-trial hot path (it dominated
#: short executions on large fixed topologies). Bounded FIFO — a sweep
#: only ever touches a handful of keys.
_DETERMINISTIC_NETWORKS: dict = {}
_DETERMINISTIC_NETWORKS_MAX = 64


def _build_network(spec: "ScenarioSpec", ctx: ScenarioContext):
    """Build (or reuse) the spec's network for this trial."""
    name, params = spec.graph.name, spec.graph.params
    if not GRAPHS.is_deterministic(name):
        return GRAPHS.build(name, ctx, params)
    key = (name, json.dumps(params, sort_keys=True))
    network = _DETERMINISTIC_NETWORKS.get(key)
    if network is None:
        network = GRAPHS.build(name, ctx, params)
        if len(_DETERMINISTIC_NETWORKS) >= _DETERMINISTIC_NETWORKS_MAX:
            _DETERMINISTIC_NETWORKS.pop(next(iter(_DETERMINISTIC_NETWORKS)))
        _DETERMINISTIC_NETWORKS[key] = network
    return network


def build_prepared_trial(spec: ScenarioSpec, seed: int) -> PreparedTrial:
    """Resolve a spec's components through the registries for one seed.

    Build order: graph → messages → MAC → problem → algorithm →
    adversary — the message workload and MAC layer come right after
    the graph because the multi-message problem and the MAC-level
    algorithms both read them from the context.
    """
    ctx = ScenarioContext(seed=seed)
    network = _build_network(spec, ctx)
    ctx.network = network
    ctx.graph = getattr(network, "graph", network)
    if spec.messages is not None:
        from repro.mac.base import resolve_messages

        ctx.messages = resolve_messages(ctx, spec.messages)
    if spec.mac is not None:
        ctx.mac = MACS.build(spec.mac.name, ctx, spec.mac.params)
    ctx.problem = PROBLEMS.build(spec.problem.name, ctx, spec.problem.params)
    ctx.algorithm = ALGORITHMS.build(spec.algorithm.name, ctx, spec.algorithm.params)
    adversary = ADVERSARIES.build(spec.adversary.name, ctx, spec.adversary.params)
    cap = (
        int(spec.max_rounds)
        if spec.max_rounds is not None
        else default_round_cap(ctx.graph.n)
    )
    return PreparedTrial(
        network=ctx.graph,
        algorithm=ctx.algorithm,
        link_process=adversary,
        problem=ctx.problem,
        max_rounds=cap,
        validate_topologies=spec.validate_topologies,
        engine=spec.engine,
        mac=ctx.mac,
        skip=spec.skip,
        label=spec.describe(),
    )
