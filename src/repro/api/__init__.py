"""The stable public facade for declarative scenarios.

Everything a caller needs to describe, serialize, and execute scenario
cross-products lives here:

* :class:`ScenarioSpec` / :class:`ComponentRef` — declarative, JSON
  round-trippable trial descriptions;
* the component registries and ``register_*`` decorators for plugging
  in new graph families, algorithms, adversaries, and problems;
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  trial backends (the parallel one fans out across cores);
* :class:`Simulation`, :func:`sweep`, :func:`run_spec` — the high-level
  entry points;
* :class:`CampaignSpec` / :class:`CampaignRunner` / :class:`ResultStore`
  — the campaign layer (re-exported from :mod:`repro.campaign`): whole
  experiment grids as sharded, checkpointed, resumable runs.

See README.md for a quickstart and a JSON spec example.
"""

from repro.api.executor import ParallelExecutor, SerialExecutor, TrialExecutor
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    Shard,
    load_campaign,
)
from repro.api.facade import Simulation, load_spec, run_spec, sweep
from repro.api.spec import ComponentRef, ScenarioSpec, build_prepared_trial
from repro.registry import (
    ADVERSARIES,
    ALGORITHMS,
    GRAPHS,
    PROBLEMS,
    Registry,
    ScenarioContext,
    register_adversary,
    register_algorithm,
    register_graph,
    register_problem,
)

__all__ = [
    "ScenarioSpec",
    "ComponentRef",
    "build_prepared_trial",
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "Simulation",
    "sweep",
    "run_spec",
    "load_spec",
    "Registry",
    "ScenarioContext",
    "GRAPHS",
    "ALGORITHMS",
    "ADVERSARIES",
    "PROBLEMS",
    "register_graph",
    "register_algorithm",
    "register_adversary",
    "register_problem",
    "CampaignSpec",
    "CampaignRunner",
    "ResultStore",
    "Shard",
    "load_campaign",
]
