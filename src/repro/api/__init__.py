"""The stable public facade for declarative scenarios.

Everything a caller needs to describe, serialize, and execute scenario
cross-products lives here:

* :class:`ScenarioSpec` / :class:`ComponentRef` — declarative, JSON
  round-trippable trial descriptions;
* the component registries and ``register_*`` decorators for plugging
  in new graph families, algorithms, adversaries, and problems;
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  trial backends (the parallel one fans out across cores);
* :class:`Simulation`, :func:`sweep`, :func:`run_spec` — the high-level
  entry points;
* :class:`CampaignSpec` / :class:`CampaignRunner` / :class:`ResultStore`
  — the campaign layer (re-exported from :mod:`repro.campaign`): whole
  experiment grids as sharded, checkpointed, resumable runs;
* :class:`SimulatedMACLayer` / :class:`OracleMACLayer` — the abstract
  MAC layers (re-exported from :mod:`repro.mac`) behind a spec's
  ``mac=`` / ``messages=`` sections and the multi-message workloads.

See README.md for a quickstart and a JSON spec example.
"""

from repro.api.executor import ParallelExecutor, SerialExecutor, TrialExecutor
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    Shard,
    load_campaign,
)
from repro.api.facade import Simulation, load_spec, run_spec, sweep
from repro.api.spec import ComponentRef, ScenarioSpec, build_prepared_trial
from repro.mac import (
    AbstractMACLayer,
    MessageAssignment,
    OracleMACLayer,
    SimulatedMACLayer,
    multi_message_detail,
)
from repro.registry import (
    ADVERSARIES,
    ALGORITHMS,
    GRAPHS,
    MACS,
    PROBLEMS,
    Registry,
    ScenarioContext,
    register_adversary,
    register_algorithm,
    register_graph,
    register_mac,
    register_problem,
)

__all__ = [
    "ScenarioSpec",
    "ComponentRef",
    "build_prepared_trial",
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "Simulation",
    "sweep",
    "run_spec",
    "load_spec",
    "Registry",
    "ScenarioContext",
    "GRAPHS",
    "ALGORITHMS",
    "ADVERSARIES",
    "PROBLEMS",
    "MACS",
    "register_graph",
    "register_algorithm",
    "register_adversary",
    "register_problem",
    "register_mac",
    "AbstractMACLayer",
    "SimulatedMACLayer",
    "OracleMACLayer",
    "MessageAssignment",
    "multi_message_detail",
    "CampaignSpec",
    "CampaignRunner",
    "ResultStore",
    "Shard",
    "load_campaign",
]
