"""Trial executors: where a batch of independent trials actually runs.

The runner hands an executor a scenario and the full list of derived
trial seeds; the executor returns one :class:`TrialResult` per seed *in
seed order*. Because every trial is a pure function of ``(scenario,
seed)``, the execution backend is interchangeable:

* :class:`SerialExecutor` — in-process loop; the default and the
  reference semantics.
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out across cores. Requires a *picklable* scenario — which is the
  point of :class:`~repro.api.spec.ScenarioSpec`: specs are plain data,
  while the legacy closure scenarios are not and raise a clear error.

Determinism: both executors produce identical results for identical
inputs — seeds fully determine trials and ``pool.map`` preserves input
order — so aggregated :class:`~repro.analysis.runner.TrialStats` are
bit-for-bit equal across backends.
"""

from __future__ import annotations

import abc
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from repro.analysis.runner import Scenario, TrialResult, run_prepared_trial
from repro.core.errors import SpecError

__all__ = ["TrialExecutor", "SerialExecutor", "ParallelExecutor"]


class TrialExecutor(abc.ABC):
    """Strategy for running a batch of independent trials."""

    @abc.abstractmethod
    def run_trials(self, scenario: Scenario, seeds: Sequence[int]) -> list[TrialResult]:
        """Run ``scenario(seed)`` for every seed, in order."""

    def shutdown(self, *, wait: bool = True) -> None:
        """Release any backend resources; a no-op for in-process backends."""

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(TrialExecutor):
    """One process, one trial at a time — the reference backend.

    ``engine="bank"`` scenarios are the one structured deviation from
    the literal loop: the whole seed batch is handed to
    :func:`~repro.analysis.runner.run_bank_trials`, which runs it as
    lockstep lanes of one struct-of-arrays kernel — lanes may carry
    different round caps, retiring individually as they hit them.
    Results are seed-for-seed identical to the plain loop — the batch
    only changes where the numpy work happens.

    A scenario that degrades (adaptive adversary forcing the reference
    engine, or a component without the skip contract) warns exactly
    once per ``run_trials`` batch — the first trial carries the
    :class:`~repro.core.errors.EngineFallbackWarning`, every later
    trial runs silenced. ``warn_fallback=False`` silences the batch
    entirely (the parallel executor's workers use this; the parent has
    already warned).
    """

    #: Class-level default so subclasses that override ``__init__``
    #: without chaining up still get first-trial warning semantics.
    warn_fallback = True

    def __init__(self, *, warn_fallback: bool = True) -> None:
        self.warn_fallback = warn_fallback

    def run_trials(self, scenario: Scenario, seeds: Sequence[int]) -> list[TrialResult]:
        seeds = list(seeds)
        if not seeds:
            return []
        first = scenario(seeds[0])
        if getattr(first, "engine", None) == "bank":
            from repro.analysis.runner import run_bank_trials

            return run_bank_trials(
                scenario, seeds, first=first, warn_fallback=self.warn_fallback
            )
        results = [
            run_prepared_trial(first, seeds[0], warn_fallback=self.warn_fallback)
        ]
        results.extend(
            run_prepared_trial(scenario(seed), seed, warn_fallback=False)
            for seed in seeds[1:]
        )
        return results


def _run_chunk(item: tuple[Scenario, Sequence[int]]) -> list[TrialResult]:
    """Worker entry point: run one seed chunk (module-level for pickle).

    Chunks delegate to :class:`SerialExecutor`, so workers bank-batch
    their chunk when the scenario selects ``engine="bank"`` and results
    stay identical to a fully serial run by construction. Fallback
    warnings are silenced — the parent process probed the scenario and
    warned once before fanning out.
    """
    scenario, chunk = item
    return SerialExecutor(warn_fallback=False).run_trials(scenario, chunk)


class ParallelExecutor(TrialExecutor):
    """Fan trials out across worker processes.

    The worker pool is created lazily on first use and *reused* across
    ``run_trials`` calls — a sweep calls the executor once per point,
    and respawning workers each time (expensive under the spawn start
    method) would dominate small batches. The pool is released by
    :meth:`shutdown`, by using the executor as a context manager, or
    with the executor object itself.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Trials per task handed to a worker; defaults to spreading the
        batch ~4 tasks per worker (amortizes IPC without starving the
        pool on heavy-tailed trial times). Each chunk runs through a
        worker-side :class:`SerialExecutor`, so ``engine="bank"``
        scenarios bank-batch per chunk.
    """

    def __init__(self, max_workers: Optional[int] = None, *, chunksize: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    def _resolve_chunksize(self, batch: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, batch // (workers * 4))

    def run_trials(self, scenario: Scenario, seeds: Sequence[int]) -> list[TrialResult]:
        seeds = list(seeds)
        if not seeds:
            return []
        try:
            pickle.dumps(scenario)
        except Exception as exc:
            raise SpecError(
                "ParallelExecutor needs a picklable scenario; closure-based "
                "scenarios are not — describe the trial as a "
                "repro.api.ScenarioSpec instead"
            ) from exc
        # Probe the scenario's engine resolution once in the parent and
        # warn here; workers run fully silenced, so a degraded scenario
        # yields exactly one EngineFallbackWarning per batch regardless
        # of how many chunks or processes it fans out to.
        from repro.analysis.runner import probe_engine_fallbacks
        from repro.core.errors import EngineFallbackWarning
        from repro.obs.recorder import inc as _obs_inc

        for note in probe_engine_fallbacks(scenario(seeds[0]), seeds[0]):
            _obs_inc("engine.fallback.warned")
            warnings.warn(note, EngineFallbackWarning, stacklevel=2)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        size = self._resolve_chunksize(len(seeds))
        chunks = [seeds[start : start + size] for start in range(0, len(seeds), size)]
        try:
            return [
                result
                for chunk_results in self._pool.map(
                    _run_chunk, [(scenario, chunk) for chunk in chunks]
                )
                for result in chunk_results
            ]
        except Exception:
            # A broken pool (crashed worker) cannot be reused; drop it
            # so the next call starts fresh, and surface the error.
            self.shutdown(wait=False)
            raise

    def shutdown(self, *, wait: bool = True) -> None:
        """Release the worker pool (idempotent).

        Safe on a half-constructed instance (``__init__`` validation
        raised before ``_pool`` existed) — ``__del__`` routes here.
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # best-effort; shutdown() is the real API
        import sys

        if sys.is_finalizing():  # pragma: no cover - teardown race
            # concurrent.futures' own atexit hooks already reap the
            # workers; touching the pool now hits closed descriptors.
            return
        self.shutdown(wait=False)

    def describe(self) -> str:
        workers = self.max_workers or os.cpu_count() or 1
        return f"ParallelExecutor(workers={workers})"
