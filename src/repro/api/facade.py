"""The stable high-level entry points: Simulation, sweep, run_spec.

These wrap the spec/registry/executor machinery in the three calls
almost every user wants::

    from repro.api import ScenarioSpec, Simulation, sweep, ParallelExecutor

    spec = ScenarioSpec(
        graph=("geographic", {"n": 128}),
        problem=("global-broadcast", {"source": 0}),
        algorithm=("permuted-decay", {}),
        adversary=("ge-fade", {"p_fail": 0.25, "p_recover": 0.35}),
    )
    stats = Simulation.from_spec(spec).run(trials=20, master_seed=7)
    result = sweep(spec, "graph.n", [64, 128, 256], trials=10,
                   executor=ParallelExecutor())
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Union

from repro.analysis.runner import (
    PreparedTrial,
    TrialResult,
    TrialStats,
    run_broadcast_trials,
    run_prepared_trial,
)
from repro.analysis.sweep import SweepResult, run_sweep
from repro.api.executor import TrialExecutor
from repro.api.spec import ScenarioSpec
from repro.core.errors import SpecError

__all__ = ["Simulation", "sweep", "load_spec", "run_spec"]

SpecLike = Union[ScenarioSpec, dict, str]


def _coerce_spec(spec: SpecLike) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, dict):
        return ScenarioSpec.from_dict(spec)
    if isinstance(spec, str):
        return ScenarioSpec.from_json(spec)
    raise SpecError(
        f"cannot interpret {type(spec).__name__} as a spec; pass a "
        "ScenarioSpec, a spec dict, or a JSON string"
    )


def load_spec(path: Union[str, os.PathLike]) -> ScenarioSpec:
    """Read a :class:`ScenarioSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return ScenarioSpec.from_json(handle.read())


class Simulation:
    """A scenario bound to the trial-running machinery.

    Thin by design: it owns a spec and forwards to the runner, so the
    same object serves one-off trials, repeated trials, and inspection
    of the built components.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    @classmethod
    def from_spec(
        cls,
        spec: SpecLike,
        *,
        engine: Optional[str] = None,
        skip: Optional[bool] = None,
    ) -> "Simulation":
        """Build from a :class:`ScenarioSpec`, spec dict, or JSON string.

        ``engine`` (optional) overrides the spec's round-loop
        implementation — e.g. ``engine="bitset"`` opts a stored
        scenario into the vectorized fast path without editing the
        file. ``skip`` (optional) likewise overrides event-driven round
        skipping. Results are independent of both; only wall-clock
        changes.
        """
        resolved = _coerce_spec(spec)
        if engine is not None:
            resolved = resolved.with_param("engine", engine)
        if skip is not None:
            resolved = resolved.with_param("skip", skip)
        return cls(resolved)

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "Simulation":
        return cls(load_spec(path))

    def prepared_trial(self, seed: int) -> PreparedTrial:
        """The fully built (but unrun) trial for one seed — for inspection."""
        return self.spec.build(seed)

    def run_trial(self, seed: int) -> TrialResult:
        """Execute a single trial."""
        return run_prepared_trial(self.spec.build(seed), seed)

    def run(
        self,
        *,
        trials: int,
        master_seed: int = 2013,
        executor: Optional[TrialExecutor] = None,
        label: Optional[object] = None,
    ) -> TrialStats:
        """Run independent trials (optionally fanned out by an executor).

        The seed-derivation label defaults to a constant — never the
        spec's cosmetic ``name`` — so editing the name of an otherwise
        identical scenario cannot change its results. Pass ``label``
        explicitly to decorrelate batches of the same scenario.
        """
        return run_broadcast_trials(
            self.spec,
            trials=trials,
            master_seed=master_seed,
            label=label if label is not None else "trial",
            executor=executor,
        )


def sweep(
    spec: SpecLike,
    param: str,
    values: Iterable[object],
    *,
    trials: int,
    master_seed: int = 2013,
    executor: Optional[TrialExecutor] = None,
    name: Optional[str] = None,
) -> SweepResult:
    """Sweep one spec parameter across values.

    ``param`` is a dotted path into the spec (``"graph.n"``,
    ``"adversary.p_fail"``, ``"max_rounds"``); each point runs
    ``trials`` independent executions of the derived spec. Seeds derive
    per ``(master_seed, sweep name, value)``, so the whole sweep is
    reproducible from one seed regardless of the executor. The default
    sweep name depends only on ``param`` — never the spec's cosmetic
    ``name`` — so relabelling a scenario cannot change its results;
    pass ``name`` explicitly to decorrelate repeated sweeps.
    """
    base = _coerce_spec(spec)
    return run_sweep(
        name or f"sweep[{param}]",
        list(values),
        lambda value: base.with_param(param, value),
        trials=trials,
        master_seed=master_seed,
        executor=executor,
    )


def run_spec(
    spec: SpecLike,
    *,
    trials: int = 1,
    master_seed: int = 2013,
    executor: Optional[TrialExecutor] = None,
    engine: Optional[str] = None,
    skip: Optional[bool] = None,
) -> TrialStats:
    """Convenience: coerce, run, aggregate — the ``repro run-spec`` verb."""
    return Simulation.from_spec(spec, engine=engine, skip=skip).run(
        trials=trials, master_seed=master_seed, executor=executor
    )
