"""Command-line interface: run experiments and trials from a shell.

Entry points (also available as ``python -m repro``):

* ``list`` — show the experiment registry (every Figure-1 cell and
  ablation, with its paper bound and available scales);
* ``run EXP_ID [--scale S] [--seed N]`` — run one experiment and print
  its full report;
* ``run-all [--scale S]`` — run the whole registry in order (this is
  how ``full_scale_results.txt`` and the EXPERIMENTS.md numbers are
  produced);
* ``trial`` — one ad-hoc broadcast trial: pick a network family, an
  algorithm, and an adversary by name, and watch the round count;
* ``paper`` — print the reproduced Figure-1 table with experiment ids.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis.tables import render_table

__all__ = ["main", "build_parser"]


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    rows = []
    for exp_id in sorted(ALL_EXPERIMENTS):
        exp = ALL_EXPERIMENTS[exp_id]
        rows.append(
            [
                exp_id,
                exp.figure_cell,
                exp.paper_bound,
                ", ".join(sorted(exp.scales)),
                len(exp.series),
            ]
        )
    print(
        render_table(
            ["id", "figure cell", "paper bound", "scales", "series"],
            rows,
            title="Experiment registry (see DESIGN.md §4 for the index):",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    if args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; try: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    experiment = ALL_EXPERIMENTS[args.experiment]
    started = time.time()
    result = experiment.run(
        scale=args.scale,
        master_seed=args.seed,
        progress=(
            (lambda label, _: print(f"  … {label}", file=sys.stderr))
            if args.verbose
            else None
        ),
    )
    print(result.render())
    print(f"\n[{time.time() - started:.1f}s at scale={args.scale}, seed={args.seed}]")
    failures = [
        claim for claim, _, holds in result.contrast_outcomes() if not holds
    ]
    return 1 if failures else 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    status = 0
    for exp_id in sorted(ALL_EXPERIMENTS):
        sub = argparse.Namespace(
            experiment=exp_id,
            scale=args.scale,
            seed=args.seed,
            verbose=args.verbose,
        )
        print()
        status |= _cmd_run(sub)
    return status


_NETWORKS = {
    "geographic": "random geographic graph (grey ratio 2)",
    "dual-clique": "two cliques, secret bridge, complete G'",
    "bracelet": "Theorem 4.3's band construction",
    "line-of-cliques": "8 cliques of n/8 chained by bridges",
    "funnel": "source → clique → sink (static)",
}

_ALGORITHMS = {
    "permuted-decay": "Section 4.1 global broadcast",
    "plain-decay": "classic BGI global broadcast [2]",
    "round-robin": "footnote-5 O(nD) global broadcast",
    "geo-local": "Section 4.3 local broadcast (B = random quarter)",
    "static-local": "[8]-style local broadcast (B = random quarter)",
}

_ADVERSARIES = {
    "none": "no flaky links (static G)",
    "all": "all flaky links (static G')",
    "ge-fade": "Gilbert–Elliott bursty node fading",
    "online-dense-sparse": "Theorem 3.1's online adaptive attacker",
    "offline-solo-blocker": "[11]'s offline adaptive attacker",
}


def _build_trial(args: argparse.Namespace):
    import random

    from repro.adversaries import (
        AllFlakyLinks,
        GilbertElliottNodeFade,
        NoFlakyLinks,
        OfflineSoloBlockerAttacker,
        OnlineDenseSparseAttacker,
    )
    from repro.algorithms import (
        make_geographic_local_broadcast,
        make_oblivious_global_broadcast,
        make_plain_decay_global_broadcast,
        make_round_robin_global_broadcast,
        make_static_local_broadcast,
    )
    from repro.core.rng import derive_seed
    from repro.graphs import (
        bracelet,
        dual_clique,
        funnel_dual,
        line_of_cliques,
        random_geographic,
    )

    n = args.n
    cut_mask = None
    if args.network == "geographic":
        network = random_geographic(n, seed=derive_seed(args.seed, "net"))
    elif args.network == "dual-clique":
        dc = dual_clique(
            n // 2, rng=random.Random(derive_seed(args.seed, "net"))
        )
        network, cut_mask = dc.graph, dc.side_a_mask
    elif args.network == "bracelet":
        import math

        br = bracelet(
            max(2, math.isqrt(n // 2)),
            rng=random.Random(derive_seed(args.seed, "net")),
        )
        network = br.graph
        cut_mask = 0
        for head in br.heads_a():
            cut_mask |= 1 << head
    elif args.network == "line-of-cliques":
        network = line_of_cliques(8, max(2, n // 8))
    else:
        network = funnel_dual(n)
    n = network.n

    if args.algorithm == "permuted-decay":
        spec = make_oblivious_global_broadcast(n, 0)
    elif args.algorithm == "plain-decay":
        spec = make_plain_decay_global_broadcast(n, 0)
    elif args.algorithm == "round-robin":
        spec = make_round_robin_global_broadcast(
            n, 0, slot_seed=derive_seed(args.seed, "slots")
        )
    else:
        rng = random.Random(derive_seed(args.seed, "B"))
        broadcasters = frozenset(rng.sample(range(n), max(1, n // 4)))
        if args.algorithm == "geo-local":
            spec = make_geographic_local_broadcast(
                n, broadcasters, network.max_degree
            )
        else:
            spec = make_static_local_broadcast(n, broadcasters, network.max_degree)

    if args.adversary == "none":
        adversary = NoFlakyLinks()
    elif args.adversary == "all":
        adversary = AllFlakyLinks()
    elif args.adversary == "ge-fade":
        adversary = GilbertElliottNodeFade(p_fail=0.3, p_recover=0.3)
    elif args.adversary == "online-dense-sparse":
        adversary = OnlineDenseSparseAttacker(
            cut_mask if cut_mask is not None else (1 << (n // 2)) - 1
        )
    else:
        adversary = OfflineSoloBlockerAttacker(
            cut_mask if cut_mask is not None else (1 << (n // 2)) - 1
        )
    return network, spec, adversary


def _cmd_trial(args: argparse.Namespace) -> int:
    from repro.analysis import run_broadcast_trial

    network, spec, adversary = _build_trial(args)
    print(f"network  : {network.summary()}")
    print(f"algorithm: {spec.name}")
    print(f"adversary: {adversary.describe()}")
    result = run_broadcast_trial(
        network=network,
        algorithm=spec,
        link_process=adversary,
        seed=args.seed,
        max_rounds=args.max_rounds,
    )
    print(f"solved   : {result.solved}")
    print(f"rounds   : {result.rounds}")
    return 0 if result.solved else 1


def _cmd_paper(args: argparse.Namespace) -> int:
    rows = [
        ["DG + offline adaptive", "Ω(n) [11] / O(n log² n) [12]", "Ω(n) [11] / O(n log n) [8]", "E3 / E4"],
        ["DG + online adaptive", "Ω(n / log n)  (Thm 3.1)", "Ω(n / log n)  (Thm 3.1)", "E5 / E6"],
        ["DG + oblivious", "O(D log n + log² n)  (Thm 4.1)",
         "general: Ω(√n/log n) (Thm 4.3); geographic: O(log² n log Δ) (Thm 4.6)",
         "E7a,E7b / E8, E9"],
        ["no dynamic links", "Θ(D log(n/D) + log² n)", "Θ(log n log Δ)", "E1a,E1b / E2a,E2b"],
    ]
    print(
        render_table(
            ["model", "global broadcast", "local broadcast", "experiments"],
            rows,
            title="Figure 1 of Ghaffari, Lynch, Newport (PODC 2013), with experiment ids:",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dual-graph radio broadcast reproduction (PODC 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the experiment registry").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("paper", help="print the reproduced Figure-1 table").set_defaults(
        func=_cmd_paper
    )

    run = sub.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", help="experiment id, e.g. E5 or A1")
    run.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    run.add_argument("--seed", type=int, default=2013)
    run.add_argument("--verbose", action="store_true")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="run the whole registry")
    run_all.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    run_all.add_argument("--seed", type=int, default=2013)
    run_all.add_argument("--verbose", action="store_true")
    run_all.set_defaults(func=_cmd_run_all)

    trial = sub.add_parser("trial", help="one ad-hoc broadcast trial")
    trial.add_argument("--network", default="geographic", choices=sorted(_NETWORKS))
    trial.add_argument("--algorithm", default="permuted-decay", choices=sorted(_ALGORITHMS))
    trial.add_argument("--adversary", default="ge-fade", choices=sorted(_ADVERSARIES))
    trial.add_argument("--n", type=int, default=128)
    trial.add_argument("--seed", type=int, default=2013)
    trial.add_argument("--max-rounds", type=int, default=None)
    trial.set_defaults(func=_cmd_trial)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
