"""Command-line interface: run experiments and trials from a shell.

Entry points (also available as ``python -m repro``):

* ``list`` — show the experiment registry (every Figure-1 cell and
  ablation, with its paper bound and available scales);
* ``run EXP_ID [--scale S] [--seed N] [--parallel [W]]`` — run one
  experiment and print its full report;
* ``run-all [--scale S] [--parallel [W]]`` — run the whole registry in
  order (this is how ``full_scale_results.txt`` and the EXPERIMENTS.md
  numbers are produced);
* ``run-spec SPEC.json [--trials N] [--parallel [W]] [--trace PATH]``
  — execute a declarative :class:`~repro.api.spec.ScenarioSpec` from a
  JSON file (``--trace`` writes a :mod:`repro.obs` JSONL trace);
* ``trace TARGET [--json] [--profile]`` — render a trace file's
  per-engine phase-time table, or run a spec traced and render it;
* ``components [--json]`` — list every registered graph family,
  algorithm, adversary, problem, MAC layer, engine, and experiment id
  a spec may name (``--json`` emits the machine-readable payload that
  ``tools/check_docs.py`` consumes);
* ``campaign run|status|report`` — sharded, resumable grid runs
  (experiments × scales × engines × seeds) with per-shard checkpoints
  in a persistent result store, and the ``docs/results.md`` generator
  (see :mod:`repro.campaign`);
* ``trial`` — one ad-hoc broadcast trial: pick a network family, an
  algorithm, and an adversary by name, and watch the round count;
* ``serve [--port P] [--workers W]`` — start the long-running
  simulation service (:mod:`repro.serve`): an HTTP/JSON API with a
  warm worker pool and spec-hash result caching;
* ``submit DOC.json`` — send a ScenarioSpec/CampaignSpec document to a
  running service, follow its shard events, print the result
  (``--json`` emits the final job payload);
* ``jobs`` — list a running service's jobs and their shard counters;
* ``paper`` — print the reproduced Figure-1 table with experiment ids.

``--parallel`` fans trials out across worker processes (optionally
capped at ``W`` workers) with results identical to serial runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.analysis.tables import render_table

__all__ = ["main", "build_parser", "components_payload"]


#: nargs='?' const for a bare ``--parallel``. A non-string sentinel:
#: argparse would run a string const through ``type=int``.
_ALL_CORES = object()


def _executor_from_args(args: argparse.Namespace):
    """Build the trial executor the ``--parallel`` flag asks for."""
    workers = getattr(args, "parallel", None)
    if workers is None:
        return None
    from repro.api import ParallelExecutor

    if workers is _ALL_CORES:
        return ParallelExecutor(max_workers=None)
    if workers < 1:
        raise SystemExit(f"--parallel expects a positive worker count, got {workers}")
    return ParallelExecutor(max_workers=workers)


def _add_parallel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel",
        type=int,
        nargs="?",
        const=_ALL_CORES,
        default=None,
        metavar="WORKERS",
        help="fan trials out across processes (default: all cores)",
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    from repro.core.engine import ENGINE_NAMES

    parser.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default=None,
        help=(
            "round-loop implementation: 'bitset' is the vectorized fast "
            "path, seed-for-seed identical to 'reference' (auto-falls "
            "back, with a warning, for adaptive adversaries)"
        ),
    )
    parser.add_argument(
        "--skip",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "force event-driven round skipping on (--skip) or off "
            "(--no-skip); default: the engine's own default (on for "
            "bitset/bank, off for reference). Trial results are "
            "identical either way"
        ),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    rows = []
    for exp_id in sorted(ALL_EXPERIMENTS):
        exp = ALL_EXPERIMENTS[exp_id]
        rows.append(
            [
                exp_id,
                exp.figure_cell,
                exp.paper_bound,
                ", ".join(sorted(exp.scales)),
                len(exp.series),
            ]
        )
    print(
        render_table(
            ["id", "figure cell", "paper bound", "scales", "series"],
            rows,
            title="Experiment registry (see DESIGN.md §4 for the index):",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    if args.experiment not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; try: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    experiment = ALL_EXPERIMENTS[args.experiment]
    started = time.time()
    executor = _executor_from_args(args)
    try:
        result = experiment.run(
            scale=args.scale,
            master_seed=args.seed,
            progress=(
                (lambda label, _: print(f"  … {label}", file=sys.stderr))
                if args.verbose
                else None
            ),
            executor=executor,
            engine=getattr(args, "engine", None),
            skip=getattr(args, "skip", None),
        )
    finally:
        if executor is not None:
            executor.shutdown()
    print(result.render())
    print(f"\n[{time.time() - started:.1f}s at scale={args.scale}, seed={args.seed}]")
    failures = [
        claim for claim, _, holds in result.contrast_outcomes() if not holds
    ]
    return 1 if failures else 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    status = 0
    for exp_id in sorted(ALL_EXPERIMENTS):
        sub = argparse.Namespace(
            experiment=exp_id,
            scale=args.scale,
            seed=args.seed,
            verbose=args.verbose,
            parallel=getattr(args, "parallel", None),
            engine=getattr(args, "engine", None),
            skip=getattr(args, "skip", None),
        )
        print()
        status |= _cmd_run(sub)
    return status


def _print_multi_message_detail(spec, master_seed: int) -> None:
    """Per-message completion rounds for the batch's first trial seed.

    Re-runs trial 0 (executors cannot ship problem observers back from
    worker processes, and one extra deterministic trial is cheaper than
    threading observer state through the pool protocol). A spec whose
    problem is not multi-message has nothing to report — its unused
    ``messages`` section is noted rather than crashing the verb.
    """
    from repro.core.errors import ReproError
    from repro.core.rng import derive_seed
    from repro.mac import multi_message_detail

    try:
        detail = multi_message_detail(spec, derive_seed(master_seed, "trial", 0))
    except ReproError as exc:
        print(f"(no per-message detail: {exc})", file=sys.stderr)
        return
    print(
        render_table(
            ["message", "source", "completed round"],
            detail.rows(),
            title=(
                f"per-message completion (trial 0, seed {detail.seed}, "
                f"total {'—' if not detail.solved else detail.rounds} rounds):"
            ),
        )
    )


def _cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.api import Simulation, load_spec
    from repro.core.errors import ReproError

    try:
        if args.spec == "-":
            from repro.api import ScenarioSpec

            spec = ScenarioSpec.from_json(sys.stdin.read())
        else:
            spec = load_spec(args.spec)
    except (OSError, ReproError) as exc:
        print(f"cannot load spec: {exc}", file=sys.stderr)
        return 2
    simulation = Simulation.from_spec(
        spec,
        engine=getattr(args, "engine", None),
        skip=getattr(args, "skip", None),
    )
    print(f"scenario : {simulation.spec.describe()}")
    print(f"engine   : {simulation.spec.engine}")
    started = time.time()
    executor = _executor_from_args(args)
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        from repro.obs.recorder import enable as _obs_enable

        _obs_enable(trace_path)
    try:
        stats = simulation.run(
            trials=args.trials,
            master_seed=args.seed,
            executor=executor,
        )
    except ReproError as exc:
        print(f"cannot run spec: {exc}", file=sys.stderr)
        return 2
    finally:
        if executor is not None:
            executor.shutdown()
        if trace_path is not None:
            from repro.obs.recorder import disable as _obs_disable

            rec = _obs_disable()
            if rec is not None:
                print(
                    f"trace    : {trace_path} ({rec.records_emitted} records) "
                    f"— render with `repro trace {trace_path}`"
                )
    row = stats.summary_row()
    print(
        render_table(
            list(row), [list(row.values())], title="aggregated trials:"
        )
    )
    if simulation.spec.messages is not None:
        # Multi-message workloads report per message too: the problem's
        # acceptance question is when *each* message finished.
        _print_multi_message_detail(simulation.spec, args.seed)
    if args.verbose:
        for result in stats.results:
            status = "solved" if result.solved else "cap hit"
            print(f"  seed={result.seed:>20}  rounds={result.rounds:>8}  {status}")
    print(f"[{time.time() - started:.1f}s, trials={stats.trials}, seed={args.seed}]")
    return 0 if stats.successes == stats.trials else 1


def components_payload() -> dict:
    """Machine-readable registry contents: section name → sorted names.

    The single source of truth for "what exists": the ``repro
    components`` verb renders it (``--json`` emits it verbatim) and
    ``tools/check_docs.py`` consumes it to hold the documentation to
    the live registries — tooling reads this payload instead of
    importing registry modules ad hoc.
    """
    from repro.core.engine import ENGINE_NAMES
    from repro.experiments import ALL_EXPERIMENTS
    from repro.registry import ADVERSARIES, ALGORITHMS, GRAPHS, MACS, PROBLEMS

    payload = {
        registry.plural: registry.names()
        for registry in (GRAPHS, ALGORITHMS, ADVERSARIES, PROBLEMS, MACS)
    }
    # Engines and experiment ids are registries too — the docs catalog
    # (docs/experiments.md) and campaign specs name them, so the CLI
    # must list them for the two to stay checkable against each other.
    payload["engines"] = list(ENGINE_NAMES)
    payload["experiments"] = sorted(ALL_EXPERIMENTS)
    return payload


def _cmd_components(args: argparse.Namespace) -> int:
    import json

    payload = components_payload()
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for section, names in payload.items():
        print(f"{section}:")
        for name in names:
            print(f"  {name}")
    return 0


# The `trial` verb's vocabularies. One table per choice drives *both*
# the argparse choices and the spec mapping, so they cannot diverge:
# values are (description, spec_entry) where a network's spec entry is
# a callable ``n -> ComponentRef-like`` (parameters depend on --n).
def _isqrt_band(n: int) -> int:
    import math

    return max(2, math.isqrt(n // 2))


_NETWORKS = {
    "geographic": (
        "random geographic graph (grey ratio 2)",
        lambda n: ("geographic", {"n": n}),
    ),
    "dual-clique": (
        "two cliques, secret bridge, complete G'",
        lambda n: ("dual-clique", {"half": n // 2}),
    ),
    "bracelet": (
        "Theorem 4.3's band construction",
        lambda n: ("bracelet", {"band_length": _isqrt_band(n)}),
    ),
    "line-of-cliques": (
        "8 cliques of n/8 chained by bridges",
        lambda n: ("line-of-cliques", {"num_cliques": 8, "clique_size": max(2, n // 8)}),
    ),
    "funnel": (
        "source → clique → sink (static)",
        lambda n: ("funnel", {"n": n}),
    ),
}

#: values: (description, spec_entry, problem_kind)
_ALGORITHMS = {
    "permuted-decay": (
        "Section 4.1 global broadcast",
        ("permuted-decay", {}),
        "global",
    ),
    "plain-decay": (
        "classic BGI global broadcast [2]",
        ("plain-decay", {}),
        "global",
    ),
    "round-robin": (
        "footnote-5 O(nD) global broadcast",
        ("round-robin-global", {"random_slots": True}),
        "global",
    ),
    "geo-local": (
        "Section 4.3 local broadcast (B = random quarter)",
        ("geo-local", {}),
        "local",
    ),
    "static-local": (
        "[8]-style local broadcast (B = random quarter)",
        ("static-local-decay", {}),
        "local",
    ),
}

_ADVERSARIES = {
    "none": ("no flaky links (static G)", ("none", {})),
    "all": ("all flaky links (static G')", ("all", {})),
    "ge-fade": (
        "Gilbert–Elliott bursty node fading",
        ("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
    ),
    "online-dense-sparse": (
        "Theorem 3.1's online adaptive attacker",
        ("online-dense-sparse", {"side": "A"}),
    ),
    "offline-solo-blocker": (
        "[11]'s offline adaptive attacker",
        ("offline-solo-blocker", {"side": "A"}),
    ),
}


def _trial_spec(args: argparse.Namespace):
    """Assemble the ad-hoc trial as a declarative ScenarioSpec."""
    from repro.api import ScenarioSpec

    _, graph = _NETWORKS[args.network]
    _, algorithm, problem_kind = _ALGORITHMS[args.algorithm]
    _, adversary = _ADVERSARIES[args.adversary]
    if problem_kind == "global":
        problem = ("global-broadcast", {"source": 0})
    else:
        problem = ("local-broadcast", {"fraction": 0.25})
    return ScenarioSpec(
        graph=graph(args.n),
        problem=problem,
        algorithm=algorithm,
        adversary=adversary,
        max_rounds=args.max_rounds,
        engine=getattr(args, "engine", None) or "reference",
        skip=getattr(args, "skip", None),
    )


def _cmd_trial(args: argparse.Namespace) -> int:
    from repro.analysis import run_prepared_trial
    from repro.core.errors import ReproError

    try:
        spec = _trial_spec(args)
        trial = spec.build(args.seed)
    except ReproError as exc:
        print(f"cannot build trial: {exc}", file=sys.stderr)
        return 2
    print(f"network  : {trial.network.summary()}")
    print(f"algorithm: {trial.algorithm.name}")
    print(f"adversary: {trial.link_process.describe()}")
    result = run_prepared_trial(trial, args.seed)
    print(f"solved   : {result.solved}")
    print(f"rounds   : {result.rounds}")
    return 0 if result.solved else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: render a trace, or run a spec traced and render.

    ``TARGET`` is either a JSONL trace file (written by ``--trace`` on
    ``run-spec``/``campaign run``) or a ScenarioSpec JSON file — a spec
    is recognized by its ``graph`` section and is run traced first
    (``--trials``/``--seed``/``--engine`` apply; ``--out`` keeps the
    trace file). Either way the result is the per-engine, per-phase
    wall-time table; ``--json`` emits the summary document instead, and
    ``--profile`` (spec targets only) adds a cProfile hot-spot listing.
    """
    import json

    from repro.obs import read_trace, render_phase_table, summarize

    document: object = None
    try:
        with open(args.target, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        print(f"cannot read {args.target}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError:
        document = None  # multi-line JSONL (or garbage read_trace rejects)

    if isinstance(document, dict) and "graph" in document:
        return _trace_spec_run(args)
    if args.profile:
        print(
            "--profile re-runs a spec under cProfile; give a ScenarioSpec "
            "JSON file as the target, not a trace",
            file=sys.stderr,
        )
        return 2
    try:
        records = read_trace(args.target)
    except ValueError as exc:
        print(f"not a trace file: {exc}", file=sys.stderr)
        return 2
    summary = summarize(records)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(render_phase_table(summary, title=f"phase breakdown ({args.target}):"))
    return 0


def _trace_spec_run(args: argparse.Namespace) -> int:
    """Run a ScenarioSpec traced, then render its phase table."""
    import json
    import os
    import tempfile

    from repro.api import Simulation, load_spec
    from repro.core.errors import ReproError
    from repro.obs import profile_text, profiled, read_trace, render_phase_table, summarize
    from repro.obs.recorder import disable as _obs_disable
    from repro.obs.recorder import enable as _obs_enable

    try:
        spec = load_spec(args.target)
    except (OSError, ReproError) as exc:
        print(f"cannot load spec: {exc}", file=sys.stderr)
        return 2
    simulation = Simulation.from_spec(
        spec,
        engine=getattr(args, "engine", None),
        skip=getattr(args, "skip", None),
    )
    trace_path = args.out
    cleanup = False
    if trace_path is None:
        fd, trace_path = tempfile.mkstemp(prefix="repro-trace-", suffix=".jsonl")
        os.close(fd)
        cleanup = True
    profiler = None
    _obs_enable(trace_path)
    try:
        if args.profile:
            with profiled() as profiler:
                simulation.run(trials=args.trials, master_seed=args.seed)
        else:
            simulation.run(trials=args.trials, master_seed=args.seed)
    except ReproError as exc:
        print(f"cannot run spec: {exc}", file=sys.stderr)
        return 2
    finally:
        _obs_disable()
    try:
        summary = summarize(read_trace(trace_path))
    finally:
        if cleanup:
            os.unlink(trace_path)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        title = f"phase breakdown ({spec.describe()}, trials={args.trials}):"
        print(render_phase_table(summary, title=title))
        if not cleanup:
            print(f"trace    : {trace_path}")
    if profiler is not None:
        print()
        print(profile_text(profiler, limit=args.profile_limit))
    return 0


#: Default directory for campaign checkpoints (kept out of git).
_DEFAULT_STORE = "campaigns/store"


def _campaign_spec_from_args(args: argparse.Namespace):
    """Resolve the campaign grid: a spec file, or flags, or defaults.

    With ``--spec`` the file is authoritative (mixing it with grid
    flags is rejected — half-overridden grids silently change shard
    ids and break resume). Without it, flags assemble a spec named
    ``--name`` (default ``"default"``, so two bare ``repro campaign
    run`` invocations share checkpoints and resume each other).
    """
    from repro.campaign import CampaignSpec, load_campaign
    from repro.core.errors import ReproError

    grid_flags = [
        ("experiments", list(args.experiments or [])),
        ("--scale", args.scale or []),
        ("--engine", args.engine or []),
        ("--seed", args.seed or []),
    ]
    if args.spec is not None:
        used = [name for name, values in grid_flags if values]
        if used or args.name is not None:
            conflicting = used + (["--name"] if args.name is not None else [])
            raise SystemExit(
                f"--spec is authoritative; drop {', '.join(conflicting)}"
            )
        try:
            campaign = load_campaign(args.spec)
        except (OSError, ReproError) as exc:
            raise SystemExit(f"cannot load campaign spec: {exc}")
        if getattr(args, "skip", None) is not None:
            # Unlike grid flags, --skip cannot change shard ids or
            # results, so overriding a spec file is resume-safe.
            import dataclasses

            campaign = dataclasses.replace(campaign, skip=args.skip)
        return campaign
    if args.experiments:
        experiments = list(args.experiments)
    else:
        from repro.experiments import ALL_EXPERIMENTS

        experiments = sorted(ALL_EXPERIMENTS)
    try:
        return CampaignSpec(
            name=args.name or "default",
            experiments=tuple(experiments),
            scales=tuple(args.scale or ["tiny"]),
            engines=tuple(args.engine or ["reference"]),
            seeds=tuple(args.seed or [2013]),
            skip=getattr(args, "skip", None),
        )
    except ReproError as exc:
        raise SystemExit(f"invalid campaign grid: {exc}")


def _campaign_store(args: argparse.Namespace):
    from repro.campaign import ResultStore

    return ResultStore(args.store, bench_dir=getattr(args, "bench_dir", None))


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner
    from repro.core.errors import ReproError

    spec = _campaign_spec_from_args(args)
    store = _campaign_store(args)
    started = time.time()

    def progress(shard, status, seconds):
        if status == "start":
            print(f"  …       {shard.shard_id}", file=sys.stderr)
        elif status == "resumed":
            print(f"  resumed {shard.shard_id}")
        else:
            print(f"  done    {shard.shard_id}  [{seconds:.2f}s]")

    runner = CampaignRunner(
        spec, store, executor=_executor_from_args(args), progress=progress
    )
    print(spec.describe())
    print(f"store    : {store.shard_path(spec.name)}")
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        from repro.obs.recorder import enable as _obs_enable

        _obs_enable(trace_path)
    try:
        outcomes = runner.run(resume=not args.fresh)
    except ReproError as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 2
    finally:
        if runner.executor is not None:
            runner.executor.shutdown()
        if trace_path is not None:
            from repro.obs.recorder import disable as _obs_disable

            rec = _obs_disable()
            if rec is not None:
                print(
                    f"trace    : {trace_path} ({rec.records_emitted} records) "
                    f"— render with `repro trace {trace_path}`"
                )
    ran = sum(1 for o in outcomes if o.ran)
    resumed = len(outcomes) - ran
    print(
        f"campaign {spec.name!r} complete: {ran} shards run, "
        f"{resumed} resumed from checkpoints "
        f"[{time.time() - started:.1f}s]"
    )
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner
    from repro.core.errors import ReproError

    spec = _campaign_spec_from_args(args)
    store = _campaign_store(args)
    try:
        status = CampaignRunner(spec, store).status()
    except ReproError as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "json", False):
        import json

        print(json.dumps(status.to_payload(), indent=2, sort_keys=True))
        return 0 if status.finished else 1
    done_ids = {shard.shard_id for shard in status.completed}
    rows = [
        [shard.experiment, shard.scale, shard.engine, shard.master_seed,
         "done" if shard.shard_id in done_ids else "pending"]
        for shard in spec.shards()
    ]
    print(
        render_table(
            ["experiment", "scale", "engine", "seed", "state"],
            rows,
            title=status.summary() + ":",
        )
    )
    return 0 if status.finished else 1


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import is_stale, render_results_markdown, write_report

    store = _campaign_store(args)
    text = render_results_markdown(store)
    if args.check:
        target = args.out or "docs/results.md"
        try:
            with open(target, encoding="utf-8") as handle:
                existing: Optional[str] = handle.read()
        except OSError:
            existing = None
        if is_stale(existing, text):
            print(
                f"{target} is stale — regenerate with "
                f"`repro campaign report --store {args.store} --out {target}`",
                file=sys.stderr,
            )
            return 1
        print(f"{target} is up to date with the store")
        return 0
    if args.out:
        write_report(store, args.out)
        print(f"wrote {args.out}")
        return 0
    print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore
    from repro.serve import ReproServer

    store = ResultStore(args.store, bench_dir=args.bench_dir)
    server = ReproServer(
        store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quiet=not args.verbose,
    )
    print(f"repro-serve listening on {server.url}")
    print(f"store    : {store.root}")
    print(f"workers  : {args.workers} (spawn, warm)")
    print("endpoints: POST /v1/runs · GET /v1/runs[/<id>[/events]] · "
          "GET /v1/components · GET /v1/results · GET /v1/health · "
          "GET /v1/metrics")
    server.serve_forever()
    return 0


def _load_submission(args: argparse.Namespace) -> object:
    import json

    if args.document == "-":
        raw = sys.stdin.read()
    else:
        with open(args.document, encoding="utf-8") as handle:
            raw = handle.read()
    document = json.loads(raw)
    # --seed / --trials wrap a bare spec document the same way the
    # explicit {"scenario": ...} envelope would.
    if (args.seed is not None or args.trials is not None) and isinstance(
        document, dict
    ):
        if "graph" in document:
            document = {"scenario": document}
        if "scenario" in document:
            if args.seed is not None:
                document["seed"] = args.seed
            if args.trials is not None:
                document["trials"] = args.trials
        else:
            raise SystemExit(
                "--seed/--trials apply to ScenarioSpec submissions only "
                "(campaign grids carry their own seed bank)"
            )
    return document


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import ReproError
    from repro.serve import SimulationClient

    client = SimulationClient(args.url)
    try:
        document = _load_submission(args)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load submission: {exc}", file=sys.stderr)
        return 2
    try:
        submitted = client.submit(document)
        job_id = submitted["id"]
        if args.no_wait:
            payload = submitted
        else:
            for event in client.events(job_id):
                if args.verbose and event.get("event") == "shard":
                    print(
                        f"  {event['status']:<8} {event.get('shard', '')}",
                        file=sys.stderr,
                    )
            payload = client.job(job_id)
    except ReproError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        shards = payload["shards"]
        print(f"job      : {payload['id']} [{payload['state']}]")
        print(f"spec     : {payload['description']}")
        print(
            f"shards   : {shards['completed']}/{shards['total']} done "
            f"({shards['executed']} executed, {shards['cached']} cached)"
        )
        if payload.get("result"):
            result = payload["result"]
            print(
                f"result   : {result['successes']}/{result['trials']} solved, "
                f"median {result['median_rounds']} rounds"
            )
    return 0 if payload["state"] in ("done", "queued", "running") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import ReproError
    from repro.serve import SimulationClient

    client = SimulationClient(args.url)
    try:
        jobs = client.jobs()
    except ReproError as exc:
        print(f"cannot list jobs: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"jobs": jobs}, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            job["id"],
            job["kind"],
            job["state"],
            f"{job['shards']['completed']}/{job['shards']['total']}",
            job["shards"]["executed"],
            job["shards"]["cached"],
            job["spec_hash"][:12],
        ]
        for job in jobs
    ]
    print(
        render_table(
            ["job", "kind", "state", "shards", "executed", "cached", "spec hash"],
            rows,
            title=f"jobs at {args.url}:",
        )
    )
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    rows = [
        ["DG + offline adaptive", "Ω(n) [11] / O(n log² n) [12]", "Ω(n) [11] / O(n log n) [8]", "E3 / E4"],
        ["DG + online adaptive", "Ω(n / log n)  (Thm 3.1)", "Ω(n / log n)  (Thm 3.1)", "E5 / E6"],
        ["DG + oblivious", "O(D log n + log² n)  (Thm 4.1)",
         "general: Ω(√n/log n) (Thm 4.3); geographic: O(log² n log Δ) (Thm 4.6)",
         "E7a,E7b / E8, E9"],
        ["no dynamic links", "Θ(D log(n/D) + log² n)", "Θ(log n log Δ)", "E1a,E1b / E2a,E2b"],
    ]
    print(
        render_table(
            ["model", "global broadcast", "local broadcast", "experiments"],
            rows,
            title="Figure 1 of Ghaffari, Lynch, Newport (PODC 2013), with experiment ids:",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dual-graph radio broadcast reproduction (PODC 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the experiment registry").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("paper", help="print the reproduced Figure-1 table").set_defaults(
        func=_cmd_paper
    )
    components = sub.add_parser(
        "components", help="list registered ScenarioSpec components"
    )
    components.add_argument(
        "--json",
        action="store_true",
        help="emit the registry contents as JSON for tooling",
    )
    components.set_defaults(func=_cmd_components)

    run = sub.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", help="experiment id, e.g. E5, A1, or M1")
    run.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    run.add_argument("--seed", type=int, default=2013)
    run.add_argument("--verbose", action="store_true")
    _add_parallel_flag(run)
    _add_engine_flag(run)
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="run the whole registry")
    run_all.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    run_all.add_argument("--seed", type=int, default=2013)
    run_all.add_argument("--verbose", action="store_true")
    _add_parallel_flag(run_all)
    _add_engine_flag(run_all)
    run_all.set_defaults(func=_cmd_run_all)

    run_spec = sub.add_parser(
        "run-spec", help="run trials of a ScenarioSpec JSON file"
    )
    run_spec.add_argument("spec", help="path to a spec JSON file ('-' for stdin)")
    run_spec.add_argument("--trials", type=int, default=1)
    run_spec.add_argument("--seed", type=int, default=2013)
    run_spec.add_argument("--verbose", action="store_true")
    run_spec.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL phase/counter trace (render with `repro trace PATH`)",
    )
    _add_parallel_flag(run_spec)
    _add_engine_flag(run_spec)
    run_spec.set_defaults(func=_cmd_run_spec)

    trace = sub.add_parser(
        "trace",
        help="render a JSONL trace's phase-time table (or run a spec traced)",
    )
    trace.add_argument(
        "target",
        help="a JSONL trace file, or a ScenarioSpec JSON file to run traced",
    )
    trace.add_argument(
        "--trials", type=int, default=1, help="trials when the target is a spec"
    )
    trace.add_argument(
        "--seed", type=int, default=2013, help="master seed when the target is a spec"
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="keep the trace JSONL here when the target is a spec",
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the summary document as JSON"
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help="re-run a spec target under cProfile and print the hot spots",
    )
    trace.add_argument(
        "--profile-limit", type=int, default=20, help="profile rows to print"
    )
    _add_engine_flag(trace)
    trace.set_defaults(func=_cmd_trace)

    campaign = sub.add_parser(
        "campaign",
        help="sharded, resumable grid runs with a persistent result store",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "experiments",
            nargs="*",
            help="experiment ids (default: every registered experiment)",
        )
        p.add_argument("--spec", default=None, help="campaign spec JSON file")
        p.add_argument("--name", default=None, help="campaign name (default: 'default')")
        p.add_argument(
            "--scale",
            action="append",
            choices=["tiny", "small", "full"],
            help="scale tier(s); repeatable (default: tiny)",
        )
        from repro.core.engine import ENGINE_NAMES

        p.add_argument(
            "--engine",
            action="append",
            choices=list(ENGINE_NAMES),
            help="engine(s); repeatable (default: reference)",
        )
        p.add_argument(
            "--seed",
            action="append",
            type=int,
            help="master seed(s) of the seed bank; repeatable (default: 2013)",
        )
        p.add_argument(
            "--skip",
            action=argparse.BooleanOptionalAction,
            default=None,
            help=(
                "force round skipping on/off for every shard (not a grid "
                "axis: results and shard ids are skip-independent, so it "
                "combines with --spec)"
            ),
        )
        p.add_argument(
            "--store",
            default=_DEFAULT_STORE,
            help=f"result store directory (default: {_DEFAULT_STORE})",
        )
        p.add_argument(
            "--bench-dir",
            default=None,
            help="BENCH_*.json directory to merge (default: benchmarks/results)",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="run pending shards, checkpointing each one"
    )
    _add_grid_args(campaign_run)
    campaign_run.add_argument(
        "--fresh",
        action="store_true",
        help="discard this campaign's checkpoints and re-run every shard",
    )
    campaign_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL phase/counter trace (render with `repro trace PATH`)",
    )
    _add_parallel_flag(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_status = campaign_sub.add_parser(
        "status", help="show done/pending shards (exit 1 while pending)"
    )
    _add_grid_args(campaign_status)
    campaign_status.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable status (shards with spec hashes)",
    )
    campaign_status.set_defaults(func=_cmd_campaign_status)

    campaign_report = campaign_sub.add_parser(
        "report", help="render the store as Markdown (docs/results.md)"
    )
    campaign_report.add_argument(
        "--store",
        default=_DEFAULT_STORE,
        help=f"result store directory (default: {_DEFAULT_STORE})",
    )
    campaign_report.add_argument(
        "--bench-dir",
        default=None,
        help="BENCH_*.json directory to merge (default: benchmarks/results)",
    )
    campaign_report.add_argument(
        "--out", default=None, help="write to this file instead of stdout"
    )
    campaign_report.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if --out (default docs/results.md) is stale "
        "(runtimes are ignored)",
    )
    campaign_report.set_defaults(func=_cmd_campaign_report)

    from repro.serve.server import DEFAULT_PORT

    serve = sub.add_parser(
        "serve", help="start the long-running simulation service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--workers", type=int, default=2, help="warm worker processes (default: 2)"
    )
    serve.add_argument(
        "--store",
        default=_DEFAULT_STORE,
        help=f"result store directory (default: {_DEFAULT_STORE})",
    )
    serve.add_argument(
        "--bench-dir",
        default=None,
        help="BENCH_*.json directory to merge (default: benchmarks/results)",
    )
    serve.add_argument("--verbose", action="store_true", help="log requests")
    serve.set_defaults(func=_cmd_serve)

    default_url = f"http://127.0.0.1:{DEFAULT_PORT}"
    submit = sub.add_parser(
        "submit", help="submit a spec document to a running service"
    )
    submit.add_argument(
        "document", help="spec/campaign JSON document ('-' for stdin)"
    )
    submit.add_argument("--url", default=default_url)
    submit.add_argument(
        "--seed", type=int, default=None, help="master seed (ScenarioSpec runs)"
    )
    submit.add_argument(
        "--trials", type=int, default=None, help="trial count (ScenarioSpec runs)"
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the submission receipt instead of following events",
    )
    submit.add_argument(
        "--json", action="store_true", help="emit the job payload as JSON"
    )
    submit.add_argument(
        "--verbose", action="store_true", help="print shard events while waiting"
    )
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser("jobs", help="list a running service's jobs")
    jobs.add_argument("--url", default=default_url)
    jobs.add_argument(
        "--json", action="store_true", help="emit the job list as JSON"
    )
    jobs.set_defaults(func=_cmd_jobs)

    trial = sub.add_parser("trial", help="one ad-hoc broadcast trial")
    trial.add_argument("--network", default="geographic", choices=sorted(_NETWORKS))
    trial.add_argument("--algorithm", default="permuted-decay", choices=sorted(_ALGORITHMS))
    trial.add_argument("--adversary", default="ge-fade", choices=sorted(_ADVERSARIES))
    trial.add_argument("--n", type=int, default=128)
    trial.add_argument("--seed", type=int, default=2013)
    trial.add_argument("--max-rounds", type=int, default=None)
    _add_engine_flag(trial)
    trial.set_defaults(func=_cmd_trial)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
