"""The oracle MAC layer: sample the guarantees, skip the engine.

Where the simulated layer *realizes* the abstract MAC contract round
by round on the radio engines, the oracle layer *assumes* it: each
``bcast`` is acknowledged after a delay sampled from the ``f_ack``
envelope, and each reliable neighbor receives the message after a
delay sampled from the ``f_prog`` envelope. Executions become sparse
event-driven simulations — ``O(k · |E|)`` sampled events instead of
``Ω(rounds · n)`` engine work — which is what makes large-``n``
multi-message sweeps (experiment ``M3``) affordable.

What the oracle deliberately idealizes away:

* **the link adversary** — GKLN's abstract MAC absorbs link
  unreliability into the delay functions, so the oracle ignores the
  spec's adversary (completion depends on it only through the chosen
  ``f_ack``/``f_prog`` constants);
* **collisions between far-apart senders** — delays are sampled
  independently per (sender, receiver, message).

Comparing the oracle curve against the simulated realization under a
real adversary is exactly how the ``M3`` experiment turns the ack/
progress *constants* into a measured quantity.

Determinism: every delay is drawn from its own
:func:`~repro.core.rng.derive_seed`-labelled stream keyed by
``(sender, receiver, message)``, so results are independent of event
processing order and identical across serial/parallel executors.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.recorder import observe as _obs_observe

if TYPE_CHECKING:  # the runner imports this module lazily; avoid a cycle
    from repro.analysis.runner import PreparedTrial, TrialResult

from repro.core.errors import SpecError
from repro.core.rng import derive_seed
from repro.core.trace import iter_bits
from repro.mac.base import AbstractMACLayer, default_f_ack, default_f_prog
from repro.registry import register_mac

__all__ = ["OracleMACLayer", "OracleOutcome", "simulate_oracle", "run_oracle_trial"]


@dataclass(frozen=True)
class OracleMACLayer(AbstractMACLayer):
    """Idealized MAC: ack/progress delays sampled from the guarantees.

    Parameters
    ----------
    f_ack_factor / f_prog_factor:
        Scale the default ``Θ(log n log Δ)`` envelopes — the knobs for
        matching (or deliberately mismatching) a simulated layer's
        constants.
    ack_bound / prog_bound:
        Explicit envelopes in rounds; override the factors.
    """

    f_ack_factor: float = 1.0
    f_prog_factor: float = 1.0
    ack_bound: Optional[int] = None
    prog_bound: Optional[int] = None

    mode = "oracle"

    def __post_init__(self) -> None:
        if self.f_ack_factor <= 0 or self.f_prog_factor <= 0:
            raise SpecError("oracle MAC factors must be positive")
        for bound in (self.ack_bound, self.prog_bound):
            if bound is not None and bound < 1:
                raise SpecError(f"oracle MAC bounds must be ≥ 1, got {bound}")

    def f_ack(self, n: int, max_degree: int) -> int:
        if self.ack_bound is not None:
            return int(self.ack_bound)
        return max(1, round(self.f_ack_factor * default_f_ack(n, max_degree)))

    def f_prog(self, n: int, max_degree: int) -> int:
        if self.prog_bound is not None:
            return int(self.prog_bound)
        return max(1, round(self.f_prog_factor * default_f_prog(n, max_degree)))

    def describe(self) -> str:
        if self.ack_bound is not None or self.prog_bound is not None:
            return f"oracle-mac(ack={self.ack_bound}, prog={self.prog_bound})"
        return (
            f"oracle-mac(ack×{self.f_ack_factor:g}, prog×{self.f_prog_factor:g})"
        )


@register_mac("oracle")
def _spec_oracle(
    ctx,
    *,
    f_ack_factor: float = 1.0,
    f_prog_factor: float = 1.0,
    ack_bound: Optional[int] = None,
    prog_bound: Optional[int] = None,
) -> OracleMACLayer:
    return OracleMACLayer(
        f_ack_factor=float(f_ack_factor),
        f_prog_factor=float(f_prog_factor),
        ack_bound=None if ack_bound is None else int(ack_bound),
        prog_bound=None if prog_bound is None else int(prog_bound),
    )


@dataclass(frozen=True)
class OracleOutcome:
    """Everything one oracle execution determined.

    ``learn_rounds[u][i]`` is the (1-based) round node ``u`` learned
    message ``i`` (0 for the source, ``None`` if never — unreachable
    under a connected ``G``, kept for type honesty).
    ``message_rounds[i]`` is when message ``i`` reached the last node.
    """

    rounds: int
    solved: bool
    message_rounds: tuple[Optional[int], ...]
    learn_rounds: tuple[tuple[Optional[int], ...], ...]


def _delay(seed: int, *label: object, low: int, high: int) -> int:
    """One order-independent delay draw from a labelled child stream."""
    if high <= low:
        return low
    return random.Random(derive_seed(seed, *label)).randint(low, high)


def simulate_oracle(trial: "PreparedTrial", seed: int) -> OracleOutcome:
    """Run one multi-message execution at MAC granularity.

    Dijkstra-style relaxation: events ``(time, node, message)`` pop in
    time order; popping finalizes when ``node`` learned ``message``,
    assigns the node's next service slot (FIFO under the ``"queued"``
    discipline, immediate under ``"concurrent"``), and pushes sampled
    delivery times to its reliable neighbors. All future events exceed
    the current pop time, so the first finalized time per (node,
    message) is minimal — the classic label-setting argument.
    """
    mac = trial.mac
    if mac is None or mac.mode != "oracle":
        raise SpecError("simulate_oracle needs a PreparedTrial with an oracle MAC")
    problem = trial.problem
    assignment = getattr(problem, "assignment", None)
    if assignment is None:
        raise SpecError(
            "the oracle MAC runs multi-message workloads only; pair it with "
            "the 'multi-message' problem"
        )
    network = trial.network
    n, k = network.n, assignment.k
    max_degree = network.max_degree
    f_ack = mac.f_ack(n, max_degree)
    f_prog = mac.f_prog(n, max_degree)
    discipline = trial.algorithm.metadata.get("mac_discipline", "queued")
    # Concurrent service shares the channel between all k messages, so
    # each delivery's envelope stretches by the worst-case load.
    prog_high = f_prog if discipline == "queued" else f_prog * k

    learn: list[list[Optional[int]]] = [[None] * k for _ in range(n)]
    next_free = [0] * n
    heap: list[tuple[int, int, int]] = []
    for index, source in enumerate(assignment.sources):
        if learn[source][index] is None:
            learn[source][index] = 0
            heapq.heappush(heap, (0, source, index))

    while heap:
        t, u, m = heapq.heappop(heap)
        if learn[u][m] != t:
            continue  # superseded by an earlier delivery
        if discipline == "queued":
            start = max(t, next_free[u])
            ack = _delay(
                seed, "mac-oracle", "ack", u, m, low=max(1, f_ack // 2), high=f_ack
            )
            next_free[u] = start + ack
            _obs_observe("mac.f_ack_delay", ack)
        else:
            start = t
        for v in iter_bits(network.g_masks[u]):
            delay = _delay(
                seed, "mac-oracle", "prog", u, v, m, low=1, high=prog_high
            )
            _obs_observe("mac.f_prog_delay", delay)
            arrival = start + delay
            known = learn[v][m]
            if known is None or arrival < known:
                learn[v][m] = arrival
                heapq.heappush(heap, (arrival, v, m))

    message_rounds: list[Optional[int]] = []
    for index in range(k):
        times = [learn[u][index] for u in range(n)]
        message_rounds.append(None if any(t is None for t in times) else max(times))
    unsolved = any(t is None for t in message_rounds)
    total = 0 if unsolved else max(message_rounds or [0])
    solved = not unsolved and total <= trial.max_rounds
    return OracleOutcome(
        rounds=total if solved else trial.max_rounds,
        solved=solved,
        message_rounds=tuple(message_rounds),
        learn_rounds=tuple(tuple(row) for row in learn),
    )


def run_oracle_trial(trial: "PreparedTrial", seed: int) -> "TrialResult":
    """The oracle-mode counterpart of engine execution.

    Censoring matches the engine runner: an execution whose completion
    exceeds ``max_rounds`` reports ``solved=False`` at the cap, so
    oracle sweeps aggregate through the same
    :class:`~repro.analysis.runner.TrialStats` unchanged.
    """
    from repro.analysis.runner import TrialResult

    outcome = simulate_oracle(trial, seed)
    return TrialResult(solved=outcome.solved, rounds=outcome.rounds, seed=seed)
