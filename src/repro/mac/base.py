"""The abstract MAC layer: ack/progress guarantees as an interface.

Ghaffari–Kantor–Lynch–Newport (*Multi-Message Broadcast with Abstract
MAC Layers and Unreliable Links*) decouple multi-message dissemination
from contention resolution through an **abstract MAC layer**: a node
hands the layer a message to ``bcast``; the layer delivers it to the
node's reliable (``G``) neighbors and eventually *acknowledges* the
broadcast. Two delay functions summarize the layer's quality:

* ``f_ack`` — an upper bound on the rounds between a ``bcast`` and its
  acknowledgment (by then every ``G``-neighbor has the message);
* ``f_prog`` — an upper bound on the rounds a listening node waits
  before receiving *some* pending neighbor's message (``f_prog ≤
  f_ack``: making one message land somewhere is easier than landing a
  specific message everywhere).

:class:`AbstractMACLayer` captures exactly this contract, plus a
``mode`` telling the trial runner how the layer is realized:

* ``mode="engine"`` (:class:`~repro.mac.simulated.SimulatedMACLayer`)
  — the layer compiles into per-node contention resolution executed by
  the real radio engines (reference or bitset), under any registered
  adversary: the guarantees are *targets* the decay-style resolver is
  engineered to meet, and experiments measure how the realization
  actually behaves.
* ``mode="oracle"`` (:class:`~repro.mac.oracle.OracleMACLayer`) — the
  layer is *assumed*: ack/progress delays are sampled directly from
  the guarantee envelopes in an event-driven simulation, skipping the
  radio engine entirely. Orders of magnitude faster at large ``n``,
  and the idealized baseline the simulated realization is compared
  against (experiment ``M3``).

The module also defines :class:`MessageAssignment` — the resolved
``messages=`` workload of a :class:`~repro.api.spec.ScenarioSpec`:
``k`` messages at explicit, evenly spread, or per-trial random source
nodes.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.errors import SpecError
from repro.registry import ScenarioContext

__all__ = [
    "AbstractMACLayer",
    "MessageAssignment",
    "resolve_messages",
    "spec_messages",
    "default_f_ack",
    "default_f_prog",
]


def _log2_ceil(value: int) -> int:
    """``max(1, ⌈log2 value⌉)`` — duplicated from ``repro.algorithms.base``
    to keep this module importable by the algorithm package (the MAC
    layer sits *below* the algorithms that consume its guarantees)."""
    return max(1, math.ceil(math.log2(value))) if value > 1 else 1


def default_f_ack(n: int, max_degree: int) -> int:
    """The default acknowledgment bound: ``Θ(log n · log Δ)`` rounds.

    One decay phase over the ladder ``1/2 … 2^{-⌈log(Δ+1)⌉}`` delivers
    to each listener with constant probability; ``Θ(log n)`` phases
    drive the failure probability below ``1/n`` — the static local
    broadcast bound the simulated resolver inherits from [8].
    """
    return max(1, _log2_ceil(max(n, 2)) * _log2_ceil(max_degree + 1))


def default_f_prog(n: int, max_degree: int) -> int:
    """The default progress bound: one ladder sweep plus slack.

    Progress needs only one lucky rung (*some* neighbor landing *some*
    message), which a single ``Θ(log Δ)`` ladder sweep repeated
    ``O(log n)``-independently supplies; the default keeps the paper's
    ``f_prog ≤ f_ack`` ordering by construction.
    """
    return max(1, default_f_ack(n, max_degree) // 2)


class AbstractMACLayer(abc.ABC):
    """Ack/progress guarantees plus a realization mode.

    Subclasses declare :attr:`mode` (``"engine"`` or ``"oracle"``) and
    implement the two guarantee functions. Layers are plain data bound
    at spec-build time — one instance serves a whole trial and must not
    carry per-execution state (the executors may build trials in any
    order across processes).
    """

    #: How the layer is realized: ``"engine"`` layers compile into
    #: radio-engine processes; ``"oracle"`` layers replace the engine
    #: with direct delay sampling (see ``repro.mac.oracle``).
    mode: str = "engine"

    @abc.abstractmethod
    def f_ack(self, n: int, max_degree: int) -> int:
        """Rounds within which a ``bcast`` is acknowledged."""

    @abc.abstractmethod
    def f_prog(self, n: int, max_degree: int) -> int:
        """Rounds within which a pending neighbor makes progress."""

    def describe(self) -> str:
        return f"{type(self).__name__}(mode={self.mode})"


@dataclass(frozen=True)
class MessageAssignment:
    """The resolved multi-message workload: ``k`` messages at sources.

    ``sources[i]`` is the node originating message ``i``. Sources need
    not be distinct (one node may originate several messages — GKLN
    place no restriction), but every id must be a valid node. Message
    *identity* is positional: payload ``("mm", i)`` tags message ``i``
    everywhere (processes, observers, the oracle), so the engine-side
    and oracle-side views of "who knows what" agree by construction.
    """

    k: int
    sources: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SpecError(f"messages.k must be ≥ 1, got {self.k}")
        if len(self.sources) != self.k:
            raise SpecError(
                f"messages: {self.k} messages but {len(self.sources)} sources"
            )

    def payload(self, index: int) -> Hashable:
        """The canonical payload tagging message ``index``."""
        return ("mm", index)

    def index_of(self, payload: object) -> Optional[int]:
        """Message index of a payload, or ``None`` for foreign payloads."""
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "mm"
            and isinstance(payload[1], int)
            and 0 <= payload[1] < self.k
        ):
            return payload[1]
        return None

    def indices_at(self, node: int) -> tuple[int, ...]:
        """Message indices originating at ``node``, ascending."""
        return tuple(i for i, src in enumerate(self.sources) if src == node)

    def describe(self) -> str:
        return f"k={self.k} messages at sources {list(self.sources)}"


def resolve_messages(ctx: ScenarioContext, config: Optional[dict]) -> Optional[MessageAssignment]:
    """Resolve a spec's ``messages`` section against the built graph.

    Accepted shapes (all JSON-safe)::

        {"k": 4}                          # k random sources per trial
        {"k": 4, "sources": "random"}     # same, explicit
        {"k": 4, "sources": "spread"}     # evenly spaced node ids
        {"sources": [0, 5, 9, 13]}        # explicit (k inferred)

    ``"random"`` draws ``k`` *distinct* nodes from the trial seed's
    ``"messages"`` stream — the same labelled-stream discipline every
    other per-trial secret uses, so serial and parallel executions
    agree. ``"spread"`` is deterministic: sources ``⌊i·n/k⌋``.
    """
    if config is None:
        return None
    n = ctx.graph.n
    sources = config.get("sources", "random")
    k = config.get("k")
    if isinstance(sources, str):
        if k is None:
            raise SpecError("messages: 'k' is required unless 'sources' is a list")
        k = int(k)
        if k < 1:
            raise SpecError(f"messages.k must be ≥ 1, got {k}")
        if sources == "random":
            if k > n:
                raise SpecError(
                    f"messages: k={k} distinct random sources exceed n={n} nodes"
                )
            chosen = tuple(ctx.rng("messages").sample(range(n), k))
        elif sources == "spread":
            chosen = tuple((i * n) // k for i in range(k))
        else:
            raise SpecError(
                f"messages: unknown source selector {sources!r}; "
                "use 'random', 'spread', or an explicit node list"
            )
    else:
        chosen = tuple(int(u) for u in sources)
        if k is not None and int(k) != len(chosen):
            raise SpecError(
                f"messages: k={k} disagrees with {len(chosen)} explicit sources"
            )
        k = len(chosen)
    for u in chosen:
        if not 0 <= u < n:
            raise SpecError(f"messages: source {u} outside [0, {n})")
    return MessageAssignment(k=k, sources=chosen)


def spec_messages(ctx: ScenarioContext) -> MessageAssignment:
    """The context's resolved message workload, or a clear spec error."""
    if ctx.messages is None:
        raise SpecError(
            "multi-message components need a message workload: set "
            'messages={"k": ..., "sources": ...} on the ScenarioSpec'
        )
    return ctx.messages
