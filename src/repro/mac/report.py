"""Per-message reporting for multi-message trials.

``repro run-spec`` aggregates trials into round statistics, but the
multi-message acceptance question is finer: *when did each message
finish?* :func:`multi_message_detail` answers it for one seed on
either execution path — the radio engines (reading the
:class:`~repro.problems.multi_message.MultiMessageObserver`) or the
oracle MAC (reading the event simulation's learn times) — so the CLI
can print one row per message next to the aggregate table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import SpecError

__all__ = ["MultiMessageDetail", "multi_message_detail"]


@dataclass(frozen=True)
class MultiMessageDetail:
    """One trial's per-message completion picture.

    ``message_rounds[i]`` is the round message ``i`` reached its last
    node (``None`` if it never did within the cap; ``-1`` if complete
    before round 0). ``rounds`` is the execution's total round count,
    censored at the cap when unsolved.
    """

    seed: int
    solved: bool
    rounds: int
    sources: tuple[int, ...]
    message_rounds: tuple[Optional[int], ...]

    @property
    def k(self) -> int:
        return len(self.message_rounds)

    def rows(self) -> list[list[object]]:
        """Table rows: message index, source, completion round."""
        return [
            [index, source, "—" if complete is None else complete]
            for index, (source, complete) in enumerate(
                zip(self.sources, self.message_rounds)
            )
        ]


def _engine_detail(trial, seed: int) -> tuple[bool, int, Sequence[Optional[int]]]:
    """One engine execution, reading the multi-message observer."""
    from repro.analysis.runner import run_prepared_trial

    observer = trial.problem.make_observer()
    result = run_prepared_trial(trial, seed, observer=observer)
    return result.solved, result.rounds, observer.message_complete_round


def multi_message_detail(spec, seed: int) -> MultiMessageDetail:
    """Run one trial of a multi-message spec and report per message.

    ``spec`` is anything whose ``build(seed)`` yields a
    :class:`~repro.analysis.runner.PreparedTrial` (normally a
    :class:`~repro.api.spec.ScenarioSpec` with ``messages=`` set).
    """
    trial = spec.build(seed)
    assignment = getattr(trial.problem, "assignment", None)
    if assignment is None:
        raise SpecError(
            "per-message detail needs the 'multi-message' problem "
            f"(got {trial.problem.describe()})"
        )
    mac = getattr(trial, "mac", None)
    if mac is not None and mac.mode == "oracle":
        from repro.mac.oracle import simulate_oracle

        outcome = simulate_oracle(trial, seed)
        solved, rounds = outcome.solved, outcome.rounds
        # Censor like the engine path: a message whose completion lies
        # beyond the cap was never observed to finish within it.
        per_message = tuple(
            None if r is None or r > trial.max_rounds else r
            for r in outcome.message_rounds
        )
    else:
        solved, rounds, per_message = _engine_detail(trial, seed)
    return MultiMessageDetail(
        seed=seed,
        solved=solved,
        rounds=rounds,
        sources=tuple(assignment.sources),
        message_rounds=tuple(per_message),
    )
