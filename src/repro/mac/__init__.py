"""Abstract MAC layers and the multi-message broadcast machinery.

The package implements the Ghaffari–Kantor–Lynch–Newport abstract MAC
abstraction on top of the dual-graph model:

* :class:`~repro.mac.base.AbstractMACLayer` — ack/progress guarantees
  (``f_ack``, ``f_prog``) plus a realization mode;
* :class:`~repro.mac.simulated.SimulatedMACLayer` (``"simulated"``) —
  decay-window contention resolution executed by the real radio
  engines under any registered adversary;
* :class:`~repro.mac.oracle.OracleMACLayer` (``"oracle"``) — the
  idealized layer: delays sampled from the guarantee envelopes in an
  event-driven simulation, for fast large-``n`` sweeps;
* :class:`~repro.mac.base.MessageAssignment` — the resolved
  ``messages=`` workload of a spec (``k`` messages at sources);
* :func:`~repro.mac.report.multi_message_detail` — per-message
  completion rounds for one trial, on either execution path.

Select a layer declaratively: ``ScenarioSpec(..., mac=("simulated",
{}), messages={"k": 4, "sources": "random"})``; the ``"multi-message"``
problem and the ``gkln-multi-message`` / ``backoff-multi-message``
algorithms consume the resolved workload through the build context.
"""

from repro.mac.base import (
    AbstractMACLayer,
    MessageAssignment,
    default_f_ack,
    default_f_prog,
    resolve_messages,
    spec_messages,
)
from repro.mac.simulated import SimulatedMACLayer
from repro.mac.oracle import (
    OracleMACLayer,
    OracleOutcome,
    run_oracle_trial,
    simulate_oracle,
)
from repro.mac.report import MultiMessageDetail, multi_message_detail

__all__ = [
    "AbstractMACLayer",
    "SimulatedMACLayer",
    "OracleMACLayer",
    "OracleOutcome",
    "MessageAssignment",
    "MultiMessageDetail",
    "default_f_ack",
    "default_f_prog",
    "multi_message_detail",
    "resolve_messages",
    "run_oracle_trial",
    "simulate_oracle",
    "spec_messages",
]
