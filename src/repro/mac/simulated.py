"""The simulated MAC layer: contention resolution on the real engines.

This layer realizes the abstract MAC contract *inside* the dual-graph
radio model: a ``bcast`` becomes an **ack window** of ``f_ack(n, Δ)``
rounds during which the sender runs decay-style contention resolution
(cycle the ladder ``1/2, 1/4, …, 2^{-⌈log(Δ+1)⌉}``), after which the
layer acknowledges locally and the next queued message may start. This
is the standard time-bounded MAC realization: the guarantee is
probabilistic ("by the window's end every ``G``-neighbor heard the
message w.h.p."), and because the execution happens on the real
engines, experiments measure how the realized layer behaves under
every registered link adversary — including ones the guarantee
analysis never promised anything about.

The layer itself stays plain data (window sizing + ladder geometry);
the per-node state machines that consume it live in
:mod:`repro.algorithms.multi_message`. Both registered multi-message
protocols work on the ``reference`` and ``bitset`` engines — adaptive
adversaries fall back to the reference engine with the usual
:class:`~repro.core.errors.EngineFallbackWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SpecError
from repro.obs.recorder import observe as _obs_observe
from repro.mac.base import (
    AbstractMACLayer,
    _log2_ceil,
    default_f_ack,
    default_f_prog,
)
from repro.registry import register_mac

__all__ = ["SimulatedMACLayer"]


@dataclass(frozen=True)
class SimulatedMACLayer(AbstractMACLayer):
    """Decay-window contention resolution over the radio engines.

    Parameters
    ----------
    ack_window_factor:
        Multiplies the default ``Θ(log n log Δ)`` ack window. Raising
        it trades completion time for delivery confidence (more decay
        phases per bcast); lowering it below 1 makes the realized layer
        *violate* its nominal guarantee measurably — a knob experiment
        ``M3`` exists to explore.
    ack_window:
        Explicit window in rounds; overrides the factor entirely.
    """

    ack_window_factor: float = 1.0
    ack_window: int | None = None

    mode = "engine"

    def __post_init__(self) -> None:
        if self.ack_window_factor <= 0:
            raise SpecError(
                f"ack_window_factor must be positive, got {self.ack_window_factor}"
            )
        if self.ack_window is not None and self.ack_window < 1:
            raise SpecError(f"ack_window must be ≥ 1, got {self.ack_window}")

    # ------------------------------------------------------------------
    # Guarantees
    # ------------------------------------------------------------------
    def ladder_rungs(self, max_degree: int) -> int:
        """Rungs of the contention ladder: ``⌈log2(Δ+1)⌉``."""
        return _log2_ceil(max_degree + 1)

    def f_ack(self, n: int, max_degree: int) -> int:
        if self.ack_window is not None:
            value = int(self.ack_window)
        else:
            window = round(self.ack_window_factor * default_f_ack(n, max_degree))
            # Never shorter than one full ladder sweep: an ack window
            # that skips rungs would leave some contention level
            # untried.
            value = max(self.ladder_rungs(max_degree), int(window))
        _obs_observe("mac.f_ack_window", value)
        return value

    def f_prog(self, n: int, max_degree: int) -> int:
        if self.ack_window is not None:
            value = max(1, int(self.ack_window) // 2)
        else:
            window = round(self.ack_window_factor * default_f_prog(n, max_degree))
            value = max(1, int(window))
        _obs_observe("mac.f_prog_window", value)
        return value

    def contention_probability(self, slot: int, max_degree: int) -> float:
        """The ladder probability for slot ``slot`` of an ack window.

        Slots cycle through the decay ladder: slot ``j`` transmits with
        probability ``2^{-(j mod rungs) - 1}`` — rung 0 is ``1/2``, the
        deepest rung ``≈ 1/(Δ+1)``, then the cycle restarts. For any
        actual contender count some rung is within a factor of two of
        its inverse, which is the constant-probability-per-phase fact
        the ``f_ack`` sizing rests on.
        """
        rungs = self.ladder_rungs(max_degree)
        return 2.0 ** (-(slot % rungs) - 1)

    def describe(self) -> str:
        if self.ack_window is not None:
            return f"simulated-mac(window={self.ack_window})"
        return f"simulated-mac(factor={self.ack_window_factor:g})"


@register_mac("simulated")
def _spec_simulated(
    ctx, *, ack_window_factor: float = 1.0, ack_window: int | None = None
) -> SimulatedMACLayer:
    return SimulatedMACLayer(
        ack_window_factor=float(ack_window_factor),
        ack_window=None if ack_window is None else int(ack_window),
    )
