"""Exception hierarchy for the dual-graph radio network simulator.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library-level failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphValidationError(ReproError):
    """A dual graph violated a structural invariant.

    Typical causes: an edge of ``G`` missing from ``G'``, asymmetric
    adjacency, a self-loop, or a node id outside ``range(n)``.
    """


class TopologyViolationError(ReproError):
    """A link process chose a round topology outside ``[G, G']``.

    The engine (when validation is enabled) checks every round that the
    chosen communication topology contains every reliable edge of ``G``
    and no edge absent from ``G'``.
    """


class PlanError(ReproError):
    """A process declared an invalid round plan.

    Raised when a plan's transmit probability is outside ``[0, 1]`` or
    when a positive probability is declared without a message to send.
    """


class BitStreamError(ReproError):
    """A bit stream was consumed past its end with cycling disabled."""


class AdversaryUsageError(ReproError):
    """A link process was driven with the wrong view for its class."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or failed to build."""


class RegistryError(ReproError):
    """A component registry lookup or registration failed.

    Raised for unknown component names, duplicate registrations under
    one name, and factories invoked with parameters they do not accept.
    """


class SpecError(ReproError):
    """A :class:`~repro.api.spec.ScenarioSpec` is malformed.

    Typical causes: a missing component section in a spec dict, a
    parameter value that is not JSON-serializable, or a component that
    requires network structure the named graph family does not provide.
    """


class ServeError(ReproError):
    """A simulation-service request or job failed.

    Raised by :mod:`repro.serve` for malformed submission documents,
    unknown job ids, jobs that finished in the ``failed`` state, and
    client-side transport errors against a ``repro serve`` endpoint.
    """


class EngineError(ReproError):
    """An engine selection or configuration is invalid.

    Raised for unknown engine names passed to
    :func:`repro.core.engine.create_engine` (and therefore to
    ``ScenarioSpec(engine=...)`` and the CLI ``--engine`` flag).
    """


class EngineFallbackWarning(RuntimeWarning):
    """The bitset fast path declined a scenario and used the reference engine.

    Emitted by :func:`repro.core.engine.create_engine` when
    ``engine="bitset"`` is requested against an *adaptive* link process:
    online/offline adaptive adversaries are entitled to per-node plan
    introspection (the declared probability vector, and for offline
    adversaries the realized coins) every round, which is exactly the
    per-node materialization the fast path exists to avoid. Results are
    unaffected — the reference engine is used instead.

    A deliberate :class:`RuntimeWarning` rather than a ``ReproError``
    subclass: the run proceeds correctly, only slower than asked.
    """
