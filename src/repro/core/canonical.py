"""Canonical JSON and stable content hashing.

The cache keys of the serve layer (and the ``spec_hash`` stamped into
result-store records and bench artifacts) must be *stable*: the same
logical spec must hash to the same digest regardless of dict insertion
order, whitespace, which Python version serialized it, or which
process computed the hash. :func:`canonical_json` pins every degree of
freedom JSON leaves open:

* object keys are sorted;
* separators carry no whitespace;
* non-ASCII characters are escaped (``ensure_ascii``), so the byte
  encoding is locale-independent;
* floats serialize via ``repr`` (shortest round-trip form, identical
  across supported Python versions).

:func:`stable_hash` is then simply the SHA-256 hex digest of those
bytes. Sibling of :func:`repro.core.rng.derive_seed` (stable *seeds*
from label paths); this module derives stable *identities* from JSON
documents.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "stable_hash"]


def canonical_json(document: object) -> str:
    """Serialize a JSON-safe document to its one canonical form.

    ``allow_nan=False`` because NaN/Infinity are not JSON and would
    make equal-looking documents unequal across parsers; callers encode
    non-finite values explicitly (``ExperimentResult.to_record`` uses
    the string ``"inf"``).
    """
    return json.dumps(
        document,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def stable_hash(document: object) -> str:
    """SHA-256 hex digest of a document's canonical JSON.

    This is the content-addressing primitive behind
    ``ScenarioSpec.spec_hash()`` / ``CampaignSpec.spec_hash()`` /
    ``Shard.spec_hash()`` and therefore behind every dedup decision the
    serve layer makes. Two documents hash equal iff they are the same
    JSON value.
    """
    return hashlib.sha256(canonical_json(document).encode("ascii")).hexdigest()
