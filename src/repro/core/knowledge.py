"""Per-node message-set state for multi-message workloads.

The multi-message broadcast problem (Ghaffari–Kantor–Lynch–Newport,
*Multi-Message Broadcast with Abstract MAC Layers and Unreliable
Links*) starts ``k`` messages at arbitrary sources and is solved when
every node holds every message. Everything that tracks that state —
the problem observer, the oracle MAC's event simulation, diagnostics —
shares this module's :class:`KnowledgeVector`: one ``k``-bit knowledge
mask per node, with per-message holder counts maintained incrementally
so "is message ``i`` everywhere yet?" is O(1) per delivery rather than
an O(n·k) rescan.

Kept in :mod:`repro.core` (not the problem module) deliberately: the
MAC layer's oracle runs *without* the radio engine and must agree with
the engine-side observer about what "node ``u`` knows message ``i``"
means; a single shared structure keeps the two execution paths honest
against each other.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.trace import popcount

__all__ = ["KnowledgeVector"]


class KnowledgeVector:
    """Which of ``k`` messages each of ``n`` nodes currently holds.

    ``masks[u]`` is an int bitmask over message indices; bit ``i`` set
    means node ``u`` holds message ``i``. ``holders(i)`` counts the
    nodes holding message ``i``; :attr:`complete` is true once every
    node holds every message.
    """

    __slots__ = ("n", "k", "masks", "_holders", "_full", "_complete_count")

    def __init__(self, n: int, k: int) -> None:
        if n < 1 or k < 1:
            raise ValueError(f"need n ≥ 1 and k ≥ 1, got n={n}, k={k}")
        self.n = n
        self.k = k
        self.masks: List[int] = [0] * n
        self._holders: List[int] = [0] * k
        self._full = (1 << k) - 1
        self._complete_count = 0  # nodes already holding every message

    def add(self, node: int, index: int) -> bool:
        """Record that ``node`` holds message ``index``.

        Returns ``True`` iff this was new knowledge.
        """
        bit = 1 << index
        mask = self.masks[node]
        if mask & bit:
            return False
        mask |= bit
        self.masks[node] = mask
        self._holders[index] += 1
        if mask == self._full:
            self._complete_count += 1
        return True

    def knows(self, node: int, index: int) -> bool:
        return bool((self.masks[node] >> index) & 1)

    def holders(self, index: int) -> int:
        """How many nodes currently hold message ``index``."""
        return self._holders[index]

    def message_complete(self, index: int) -> bool:
        """Does every node hold message ``index``?"""
        return self._holders[index] == self.n

    @property
    def complete(self) -> bool:
        """Does every node hold every message?"""
        return self._complete_count == self.n

    def known_count(self, node: int) -> int:
        return popcount(self.masks[node])

    def known_indices(self, node: int) -> Iterator[int]:
        """Message indices held by ``node``, ascending."""
        mask = self.masks[node]
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def missing_nodes(self, index: int) -> list[int]:
        """Nodes not yet holding message ``index`` (diagnostics)."""
        return [u for u in range(self.n) if not self.knows(u, index)]

    def progress(self) -> float:
        """Fraction of the ``n·k`` knowledge facts established."""
        return sum(self._holders) / (self.n * self.k)

    def first_incomplete(self) -> Optional[int]:
        """Lowest message index not yet known everywhere, if any."""
        for index, count in enumerate(self._holders):
            if count != self.n:
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeVector(n={self.n}, k={self.k}, "
            f"progress={self.progress():.2f})"
        )
