"""Bit streams: the shared-randomness currency of the paper.

Three of the paper's constructions are, at bottom, strings of random
bits with a precise consumption discipline:

* The global broadcast algorithm of Section 4.1 has the source draw a
  string ``S`` of ``32 log² n log log n`` bits *after the execution
  begins* and append it to the message; downstream nodes read aligned
  windows of ``S`` to permute their decay probabilities.
* The local broadcast algorithm of Section 4.3 has leaders commit to
  seeds of ``O(log³ n (log log n)²)`` bits which coordinate the
  participation and permutation choices of every node that adopted the
  seed.
* The lower bound of Section 4.2 defines *support sequences* — bit
  strings long enough to resolve every random choice of a band for
  ``√(n/2)`` rounds — that feed the isolated broadcast functions of
  Lemma 4.4.

:class:`BitStream` models all three. It is immutable and supports two
access styles:

* **cursor reads** (:meth:`take`, :meth:`take_uniform`) for sequential
  consumption, and
* **window reads** (:meth:`window`, :meth:`window_value`,
  :meth:`uniform_at`) for the offset-indexed access the broadcast
  algorithms need so that *every node holding the same string derives
  the same value for the same round* without sharing a cursor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import BitStreamError

__all__ = ["BitStream", "BitCursor", "bits_for_uniform"]


def bits_for_uniform(num_outcomes: int) -> int:
    """Number of bits a fixed-width uniform draw over ``num_outcomes`` uses.

    The draw reads this many bits and reduces them modulo
    ``num_outcomes``. When ``num_outcomes`` is a power of two (the
    paper's standing assumption — it takes ``n`` to be a power of two)
    the draw is exactly uniform; otherwise the bias is at most
    ``num_outcomes / 2**width`` and we widen by two extra bits to keep
    it below 25%.
    """
    if num_outcomes < 1:
        raise ValueError(f"num_outcomes must be >= 1, got {num_outcomes}")
    if num_outcomes == 1:
        return 1
    width = (num_outcomes - 1).bit_length()
    if num_outcomes & (num_outcomes - 1):  # not a power of two: pad against bias
        width += 2
    return width


@dataclass(frozen=True)
class BitStream:
    """An immutable string of ``length`` bits stored as a big integer.

    Bit ``i`` (0-indexed from the *front* of the stream) is
    ``(value >> i) & 1``; multi-bit reads return the little-endian
    integer formed by the window, which is an arbitrary but fixed
    convention — all consumers only need determinism, not a particular
    endianness.

    Parameters
    ----------
    value:
        The packed bits.
    length:
        Number of valid bits in ``value``.
    cyclic:
        If true, reads past the end wrap around (used where the paper's
        constant-sized strings must feed an execution whose length the
        source cannot know, see DESIGN.md §5.4). If false, overruns
        raise :class:`~repro.core.errors.BitStreamError`.
    """

    value: int
    length: int
    cyclic: bool = False

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if self.value < 0:
            raise ValueError("value must be non-negative")
        if self.length and self.value >> self.length:
            raise ValueError("value has bits beyond the declared length")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, rng: random.Random, length: int, *, cyclic: bool = False) -> "BitStream":
        """Draw a uniformly random stream of ``length`` bits from ``rng``."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        value = rng.getrandbits(length) if length else 0
        return cls(value=value, length=length, cyclic=cyclic)

    @classmethod
    def from_bits(cls, bits: "list[int] | tuple[int, ...] | str", *, cyclic: bool = False) -> "BitStream":
        """Build a stream from an explicit bit sequence.

        ``bits`` may be a list/tuple of 0/1 integers or a string of
        ``'0'``/``'1'`` characters, front bit first.
        """
        value = 0
        count = 0
        for bit in bits:
            bit_int = int(bit)
            if bit_int not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
            value |= bit_int << count
            count += 1
        return cls(value=value, length=count, cyclic=cyclic)

    # ------------------------------------------------------------------
    # Window (offset-indexed) access
    # ------------------------------------------------------------------
    def window_value(self, offset: int, width: int) -> int:
        """Read ``width`` bits starting at absolute position ``offset``.

        With ``cyclic=True`` the offset and any overrun wrap modulo the
        stream length; otherwise reads must fit inside the stream.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width == 0:
            return 0
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if not self.cyclic:
            if offset + width > self.length:
                raise BitStreamError(
                    f"read of {width} bits at offset {offset} overruns "
                    f"stream of length {self.length} (cyclic=False)"
                )
            return (self.value >> offset) & ((1 << width) - 1)
        if self.length == 0:
            raise BitStreamError("cannot read from an empty cyclic stream")
        result = 0
        for i in range(width):
            pos = (offset + i) % self.length
            result |= ((self.value >> pos) & 1) << i
        return result

    def window(self, offset: int, width: int) -> "BitStream":
        """Return the ``width``-bit substream starting at ``offset``."""
        return BitStream(value=self.window_value(offset, width), length=width)

    def uniform_at(self, offset: int, num_outcomes: int) -> int:
        """Fixed-width uniform draw over ``range(num_outcomes)`` at ``offset``.

        This is the deterministic draw shared by all nodes holding the
        same stream: the consumed width is :func:`bits_for_uniform`
        regardless of the drawn value, so different nodes reading the
        same offset always agree on both the value and the layout of
        subsequent windows.
        """
        width = bits_for_uniform(num_outcomes)
        return self.window_value(offset, width) % num_outcomes

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 or 1)."""
        return self.window_value(index, 1)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    def __iter__(self):
        for i in range(self.length):
            yield (self.value >> i) & 1

    def to_bitstring(self) -> str:
        """Render as a front-bit-first string of ``'0'``/``'1'``."""
        return "".join(str(b) for b in self)

    def cursor(self) -> "BitCursor":
        """Return a fresh sequential reader over this stream."""
        return BitCursor(stream=self)


@dataclass
class BitCursor:
    """A mutable sequential reader over a :class:`BitStream`.

    Support sequences in the lower-bound machinery are consumed front to
    back ("δ bits per round"); the cursor tracks that position.
    """

    stream: BitStream
    position: int = field(default=0)

    def take(self, width: int) -> int:
        """Read the next ``width`` bits and advance."""
        value = self.stream.window_value(self.position, width)
        self.position += width
        return value

    def take_uniform(self, num_outcomes: int) -> int:
        """Fixed-width uniform draw over ``range(num_outcomes)``, advancing."""
        width = bits_for_uniform(num_outcomes)
        return self.take(width) % num_outcomes

    def take_bernoulli(self, probability_num: int, probability_den: int) -> bool:
        """Draw a Bernoulli(p) with rational ``p = num/den``, advancing.

        Reads ``bits_for_uniform(den)`` bits; returns true iff the value
        lands in ``[0, num)``. Exact when ``den`` is a power of two.
        """
        if not 0 <= probability_num <= probability_den:
            raise ValueError("need 0 <= num <= den")
        return self.take_uniform(probability_den) < probability_num

    @property
    def remaining(self) -> int:
        """Bits left before the end (may be negative for cyclic streams)."""
        return self.stream.length - self.position
