"""The randomized-process abstraction executed at each network node.

The dual graph model runs ``n`` randomized processes in synchronous
rounds; in each round a process either transmits a message or listens.
Every algorithm in the paper takes the form "given my current state,
transmit message *m* with probability *p*" — decay uses
``p ∈ {1/2, 1/4, …, 1/n}``, round robin uses ``p ∈ {0, 1}``, the
initialization stage of Section 4.3 uses ``p = 1/log n``, and so on.

We therefore split each round into a deterministic *plan* and a coin:

* :meth:`Process.plan` returns a :class:`RoundPlan` — the transmit
  probability and the message that would be sent — as a deterministic
  function of the process state at the start of the round.
* The engine flips the Bernoulli coin and tells the process what
  happened through :meth:`Process.on_feedback`.

This split is not merely convenient; it *is* the information structure
the paper's adversaries are graded on. The online adaptive link process
of Theorem 3.1 is entitled to the conditional expectation
``E[|X| | S]`` of the transmitter count given the start-of-round states
— exactly the sum of declared plan probabilities — while the offline
adaptive process additionally sees the realized coins. Keeping the plan
declarative makes those two quantities honest engine-level facts rather
than adversary-side guesswork.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.core.errors import PlanError
from repro.core.messages import Message

__all__ = [
    "RoundPlan",
    "ProcessContext",
    "Process",
    "SilentProcess",
    "SILENT_SIGNATURE",
]

#: The universal plan signature of a process that certainly listens this
#: round. Returning it from :meth:`Process.plan_signature` lets the
#: bitset fast path collapse every silent node into one shared
#: :meth:`RoundPlan.silence` without calling :meth:`Process.plan` —
#: the dominant win on broadcast workloads, where most nodes are
#: uninformed listeners for most of the execution.
SILENT_SIGNATURE: tuple = ("silent",)

#: A plan that listens for the round (probability zero, no message).
_SILENCE_SENTINEL = None


@dataclass(frozen=True)
class RoundPlan:
    """A process's declared behavior for one round.

    ``probability`` is the chance of transmitting ``message`` this
    round; with the complementary probability the process listens.
    ``probability = 0`` means the process certainly listens and
    ``message`` may be ``None``; any positive probability requires a
    message.
    """

    probability: float
    message: Optional[Message] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise PlanError(f"transmit probability {self.probability} outside [0, 1]")
        if self.probability > 0.0 and self.message is None:
            raise PlanError("a plan with positive transmit probability needs a message")

    @classmethod
    def silence(cls) -> "RoundPlan":
        """The listening plan (probability zero)."""
        return _SILENCE

    @classmethod
    def certain(cls, message: Message) -> "RoundPlan":
        """A deterministic transmission (probability one)."""
        return cls(probability=1.0, message=message)


_SILENCE = RoundPlan(probability=0.0, message=None)


@dataclass(frozen=True, slots=True)
class ProcessContext:
    """Per-node immutable context handed to a process at construction.

    Matches the knowledge the model grants processes: the network size
    ``n`` and the maximum degree ``Δ`` (of ``G'``) are "known to
    processes in advance" (Section 2); the node's own id models the
    unique identifiers standard in this literature; ``rng`` is the
    node's private randomness for state updates that are not the
    transmission coin itself (e.g. leader self-election).

    Processes must *not* inspect the network topology — the adversary
    assigns processes to nodes and the assignment is unknown to them.
    """

    node_id: int
    n: int
    max_degree: int
    rng: random.Random


class Process(abc.ABC):
    """Base class for node processes.

    Subclasses implement :meth:`plan` and (usually) :meth:`on_feedback`.
    The engine guarantees the calling order per round ``r``::

        plan(r)  →  [engine flips coin, resolves radio reception]  →
        on_feedback(r, sent, received)

    and that ``begin()`` runs exactly once before round 0.

    Two *optional* fast-path hooks let the bitset engine
    (:mod:`repro.core.fastpath`) skip per-node Python work without
    changing any observable behavior; both default to the conservative
    "no promise" setting, so subclasses that ignore them are simulated
    exactly as before:

    * :attr:`idle_feedback_noop` — class-level promise that
      ``on_feedback(r, sent=False, received=None)`` (the node listened
      and heard silence/collision) does not change process state.
    * :meth:`plan_signature` — per-round plan-sharing key; see its
      docstring for the exact contract.
    """

    #: Promise that an *idle* feedback call — ``sent=False`` and
    #: ``received=None`` — is a state no-op, letting the fast path skip
    #: it. Processes whose feedback consumes randomness every round
    #: (e.g. private rung redraws, leader-election coins) must leave
    #: this ``False``: skipping their idle calls would desynchronize
    #: their RNG streams. Subclasses that do not override
    #: :meth:`on_feedback` at all are detected automatically and need
    #: not set it.
    idle_feedback_noop: ClassVar[bool] = False

    #: Promise that a *transmit* feedback call — ``sent=True`` (which
    #: implies ``received=None``: a transmitting node never receives) —
    #: is a state no-op. True for every algorithm whose state machine
    #: reacts only to receptions (decay ladders, round robin, uniform
    #: relays); it lets the fast path skip the per-transmitter Python
    #: calls that dominate dense rounds. Same caveats as
    #: :attr:`idle_feedback_noop`.
    transmit_feedback_noop: ClassVar[bool] = False

    def __init__(self, ctx: ProcessContext) -> None:
        self.ctx = ctx

    @property
    def node_id(self) -> int:
        """The node this process is assigned to."""
        return self.ctx.node_id

    def begin(self) -> None:  # noqa: B027 - intentional optional hook
        """Hook run once before the first round (optional)."""

    @abc.abstractmethod
    def plan(self, round_index: int) -> RoundPlan:
        """Declare the transmit plan for ``round_index``.

        Must be a deterministic function of the process state at the
        start of the round. State mutation belongs in
        :meth:`on_feedback`, not here — the engine may, in principle,
        call :meth:`plan` more than once per round (the lower-bound
        reduction players do exactly that when re-simulating).
        """

    def on_feedback(self, round_index: int, sent: bool, received: Optional[Message]) -> None:
        """Learn the outcome of ``round_index``.

        ``sent`` reports whether this node's coin came up transmit.
        ``received`` is the message delivered to this node, or ``None``
        — which deliberately conflates silence with collision, since the
        model has no collision detection. A transmitting node never
        receives (``sent`` implies ``received is None``).
        """

    def plan_signature(self, round_index: int) -> Optional[tuple]:
        """Optional plan-sharing key for the bitset fast path.

        Contract: if two processes of the *same concrete class* in the
        same execution return equal non-``None`` signatures for round
        ``r``, their :meth:`plan` calls for ``r`` must be
        interchangeable — equal transmit probability, and messages that
        are equal (for broadcast relays this is typically the *same*
        :class:`~repro.core.messages.Message` object). The fast path
        then calls :meth:`plan` once per distinct signature and shares
        the result, which collapses the per-node Python cost of ladder
        algorithms (all informed decay nodes march in lockstep).

        Return ``None`` (the default) to opt out for this round — the
        engine falls back to an ordinary per-node :meth:`plan` call.
        Return :data:`SILENT_SIGNATURE` (the exact object) if and only
        if :meth:`plan` would return :meth:`RoundPlan.silence` — the
        engine substitutes the silence plan directly, without a
        :meth:`plan` call or any per-class bookkeeping. Signatures must
        be cheap: include only the state attributes :meth:`plan`
        actually reads (plus ``id()`` of any shared message object),
        never recompute the plan itself.
        """
        return None

    def plan_signature_expiry(self, round_index: int) -> Optional[int]:
        """How long the signature just returned stays valid.

        Returns the first round strictly after ``round_index`` at which
        :meth:`plan_signature` may return a *different* value without
        this process having received an ``on_feedback`` call in
        between; ``None`` means "only feedback can change it".

        Overriding this (together with :meth:`plan_signature`) unlocks
        the bitset engine's *incremental* mode: instead of polling
        every node every round, the engine tracks signature-class
        membership as bitmasks and re-polls a node only when its
        expiry round arrives or after delivering feedback to it. With
        the registered broadcast algorithms this drops the Python work
        per round from Θ(n) to O(state-change events + distinct
        signatures) — the uninformed masses cost nothing at all.

        The default makes no promise (expires next round), which the
        engine reads as "poll this node every round" — exactly the
        non-incremental behavior.
        """
        return round_index + 1

    def next_state_change(self, round_index: int) -> Optional[int]:
        """The skip contract: first round the *plan* itself can change.

        Returns the first round strictly after ``round_index`` at which
        :meth:`plan` may return a different :class:`RoundPlan`
        (probability *or* message) without this process having received
        an ``on_feedback`` call in between; ``None`` means "only
        feedback can change my plan".

        This is deliberately stronger than
        :meth:`plan_signature_expiry`: a signature can stay stable
        while the plan it names changes every round (a decay ladder's
        rung advances with the clock under one constant signature).
        The round-skipping engines use this promise to fast-forward
        through spans ``[r, r')`` in which no plan can change — see
        ``docs/architecture.md`` ("Round skipping").

        Contract requirements for overrides:

        * the promise must hold *absent feedback*: if no
          ``on_feedback`` call is delivered in ``[round_index, c)``,
          then ``plan(r') == plan(round_index)`` for every ``r'`` in
          that span (``c`` the returned round);
        * processes of the same concrete class whose
          :meth:`plan_signature` values are equal must return equal
          values (the engine queries one representative per class);
        * the call must be pure — no state mutation, no RNG draws.

        The default makes no promise (the plan may change next round),
        which disables skipping over this process — exactly the safe
        behavior for third-party subclasses that predate the contract.
        """
        return round_index + 1

    def describe_state(self) -> str:
        """Optional human-readable state summary for traces."""
        return f"{type(self).__name__}(node={self.node_id})"


class SilentProcess(Process):
    """A process that always listens.

    Useful as a filler for nodes with no role in an experiment and as
    the simplest possible :class:`Process` for engine tests.
    """

    idle_feedback_noop = True

    def plan(self, round_index: int) -> RoundPlan:
        return RoundPlan.silence()

    def plan_signature(self, round_index: int) -> tuple:
        return SILENT_SIGNATURE

    def plan_signature_expiry(self, round_index: int) -> Optional[int]:
        return None  # silent forever

    def next_state_change(self, round_index: int) -> Optional[int]:
        return None  # silent forever
