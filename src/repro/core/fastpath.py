"""The bitset fast path: a vectorized, seed-for-seed identical engine.

:class:`BitsetRadioNetworkEngine` executes exactly the round pipeline
of :class:`~repro.core.engine.RadioNetworkEngine` — same plans, same
coins, same reception rule, same records — but restructures each stage
so the Python work per round is proportional to what *changed*, not to
``n``:

1. **Plans** are tracked through signature classes. Processes that
   march in lockstep (all informed decay nodes share one ladder rung;
   all uninformed nodes listen) map to one signature, the class
   membership is a single Python int bitset, and
   :meth:`~repro.core.process.Process.plan` runs once per class per
   round. With the optional
   :meth:`~repro.core.process.Process.plan_signature_expiry` promise,
   membership is maintained *incrementally*: a node is re-polled only
   when its signature expires or right after it received feedback, so
   the uninformed masses cost nothing per round.
2. **Coins** come from :func:`repro.core.rng.transmission_coins` — the
   same helper, against the same ``("engine", "coins")`` child stream,
   that the reference engine consumes, so coin alignment is shared by
   construction rather than re-proved.
3. **Reception** is resolved either by two BLAS matvecs against a
   cached dense 0/1 neighbor matrix (static round topologies — the
   common case for oblivious adversaries) or, for adversaries that
   churn fresh topologies every round, by the paper's own bitset rule
   ``popcount(transmitters & mask[u]) == 1`` restricted to the union
   of the transmitters' neighborhoods.
4. **Feedback** calls are skipped for nodes that provably cannot react:
   a node that neither transmitted nor received is only called when its
   process class overrides ``on_feedback`` without promising
   :attr:`~repro.core.process.Process.idle_feedback_noop`.

Scope: the fast path serves **oblivious** link processes only. Adaptive
adversaries are entitled to the per-node probability vector (and, when
offline, the realized coins) through their typed views each round —
materializing that entitlement is exactly the per-node work this module
exists to avoid, so :func:`~repro.core.engine.create_engine` falls back
to the reference engine (with
:class:`~repro.core.errors.EngineFallbackWarning`) for them.
Equivalence across the full registered component matrix is enforced by
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import heapq
import math
from fractions import Fraction
from time import perf_counter_ns
from typing import Optional, Sequence

import numpy as np

from repro.adversaries.base import (
    PACKED_ROWS_MAX_N,
    AdversaryClass,
    AlgorithmInfo,
    LinkProcess,
    ObliviousView,
)
from repro.core import rng as rng_mod
from repro.core.engine import ExecutionResult, RadioNetworkEngine, StopCondition
from repro.core.errors import EngineError, PlanError
from repro.core.messages import Message
from repro.core.process import SILENT_SIGNATURE, Process, RoundPlan
from repro.core.trace import Delivery, Observer, RoundRecord
from repro.graphs.dual_graph import masks_to_neighbor_matrix

__all__ = ["BitsetRadioNetworkEngine"]

#: Above this node count the dense reception matrices stop paying for
#: their O(n²) memory; the bigint candidate scan stays O(n²/64) per
#: round with no footprint.
_MATRIX_MAX_N = 2048

#: Distinct round topologies worth a cached matrix. Static and
#: pattern-cycling adversaries reuse a couple of mask tuples forever;
#: stochastic adversaries mint a fresh tuple every round and overflow
#: this budget immediately, which routes them to the bigint scan.
_MATRIX_CACHE_SIZE = 8

#: The shared listening plan substituted for SILENT_SIGNATURE nodes.
_SILENCE_PLAN = RoundPlan.silence()

#: Membership sentinels for the per-node class table: a node is either
#: silent, planned directly per round, a member of a shared
#: ``(type, signature)`` class, or *hot* — a chronic churner served by
#: a direct per-round :meth:`~repro.core.process.Process.plan` call
#: with no signature bookkeeping at all.
_SILENT_KEY = object()
_DIRECT_KEY = object()
_HOT_KEY = object()

#: Consecutive every-round reclassifications that landed the node in a
#: singleton class (or direct mode) before it is promoted to the hot
#: path. Time-driven ``_advance(r)``-style protocols (MAC queueing,
#: back-off rotation) expire every node's signature every round with a
#: distinct signature per node — for them the class machinery is pure
#: overhead, and a direct ``plan()`` call is exactly the reference
#: engine's cost with the batched coins/reception/feedback wins kept.
_CHURN_PROMOTE = 8

#: Consecutive all-silent plans after which a hot node is demoted back
#: to signature classification (it may have gone quiet for good, and
#: the silent class costs nothing per round).
_COLD_DEMOTE = 8

#: Class masks at most this populous assign their probability by
#: per-bit indexing; larger ones go through the C-speed bit unpack.
_SMALL_CLASS = 4

#: Above this node count the packed uint64 solo-cover matrices stop
#: paying for their O(n²/8) memory (32 MiB per topology at the cap).
#: Shared with the adversaries' eager publication cap so a published
#: schedule is exactly what this engine consumes.
_PACKED_MAX_N = PACKED_ROWS_MAX_N

#: Distinct nonzero contributors beyond which the exact rational
#: expected-transmitter sum loses to a plain fsum over the vector.
_EXACT_EXPECTED_TERMS = 64

#: Direct-mode (per-node planned) nodes beyond which the skip horizon
#: gives up rather than scan ``next_state_change`` node by node.
_SKIP_DIRECT_CAP = 32


class BitsetRadioNetworkEngine(RadioNetworkEngine):
    """Vectorized engine for oblivious link processes.

    Construction signature and public behavior match
    :class:`~repro.core.engine.RadioNetworkEngine` exactly; use
    :func:`~repro.core.engine.create_engine` rather than instantiating
    directly so adaptive adversaries fall back instead of raising.

    One behavioral contract is *narrower* than the reference engine's:
    :meth:`~repro.core.process.Process.plan` may be called fewer times
    than once per node per round (never for silent-signature nodes,
    once per signature class otherwise) — which the
    :class:`~repro.core.process.Process` docstring already licenses by
    requiring plans to be deterministic, side-effect-free functions of
    start-of-round state.
    """

    engine_name = "bitset"

    def __init__(
        self,
        network,
        processes: Sequence[Process],
        link_process: LinkProcess,
        *,
        seed: int,
        algorithm_info: Optional[AlgorithmInfo] = None,
        validate_topologies: bool = True,
        observers: Sequence[Observer] = (),
        skip: bool = False,
    ) -> None:
        if link_process.adversary_class is not AdversaryClass.OBLIVIOUS:
            raise EngineError(
                "BitsetRadioNetworkEngine serves oblivious link processes only; "
                f"{link_process.describe()} is {link_process.adversary_class.value} "
                "(use create_engine, which falls back to the reference engine)"
            )
        super().__init__(
            network,
            processes,
            link_process,
            seed=seed,
            algorithm_info=algorithm_info,
            validate_topologies=validate_topologies,
            observers=observers,
            skip=skip,
        )
        n = network.n
        # Per-node trait masks, assembled in byte rows: ``mask |= 1 << u``
        # on a growing bigint is O(u/64) per node — O(n²/64) for the
        # whole loop — while a bytearray bit-set plus one ``from_bytes``
        # is O(n) total. Traits are class-level decisions resolved once.
        nbytes = (n + 7) // 8
        always_bits = bytearray(nbytes)     # idle feedback cannot be skipped
        send_skip_bits = bytearray(nbytes)  # pure-transmit feedback is a no-op
        poll_bits = bytearray(nbytes)       # no expiry promise: re-signed every round
        class_traits: dict = {}
        for u, process in enumerate(self.processes):
            klass = type(process)
            traits = class_traits.get(klass)
            if traits is None:
                overridden = klass.on_feedback is not Process.on_feedback
                traits = (
                    overridden and not klass.idle_feedback_noop,
                    not overridden or klass.transmit_feedback_noop,
                    klass.plan_signature_expiry is Process.plan_signature_expiry,
                )
                class_traits[klass] = traits
            bit = 1 << (u & 7)
            if traits[0]:
                always_bits[u >> 3] |= bit
            if traits[1]:
                send_skip_bits[u >> 3] |= bit
            if traits[2]:
                poll_bits[u >> 3] |= bit
        poll = int.from_bytes(poll_bits, "little")
        self._always_feedback_mask = int.from_bytes(always_bits, "little")
        self._send_feedback_skip_mask = int.from_bytes(send_skip_bits, "little")
        self._poll_mask = poll
        # Incremental signature-class state. All non-poll nodes start
        # dirty so round 0 classifies everyone.
        self._dirty_mask = ((1 << n) - 1) & ~poll
        self._node_key: list = [None] * n
        self._class_masks: dict = {}
        self._silent_mask = 0
        self._direct_mask = 0
        self._expiry_heap: list[tuple[int, int]] = []
        # Every-round expiries skip the heap: a bit here means "re-poll
        # next round", merged into the dirty set at O(1) per round.
        self._renew_mask = 0
        # Churn promotion state: hot nodes bypass signatures entirely.
        self._hot_mask = 0
        self._churn = [0] * n
        self._cold = [0] * n
        # Cached unpack of _hot_mask (ids list, numpy index array, and
        # node → list-position map), rebuilt only when membership
        # changes — the hot loop itself runs every round.
        self._hot_ids: list[int] = []
        self._hot_index: Optional[np.ndarray] = None
        self._hot_pos: dict[int, int] = {}
        self._hot_plans: list[RoundPlan] = []
        self._hot_stale = False
        # Per-node plan scratch shared across rounds. Stale entries are
        # harmless: plan_for only reads nodes planned this round.
        self._node_plans: list[Optional[RoundPlan]] = [None] * n
        # Per-round shared class plans, refreshed by _plan_probs.
        self._round_plans: dict = {}
        # Round-scratch and reception state. Transmitter j is encoded
        # as 1 + (j+1)(n+1), so one matvec yields, per listener, both
        # the transmitting-neighbor count (mod n+1) and — when that
        # count is 1 — the sender id (div n+1). Totals stay integral
        # and far below 2⁵³, hence exact in float64.
        self._prob_buffer = np.zeros(n, dtype=np.float64)
        self._x_buffer = np.empty(n, dtype=np.float64)
        self._sender_encoding = 1.0 + np.arange(1, n + 1, dtype=np.float64) * (n + 1)
        self._nbytes = (n + 7) // 8
        self._matrix_cache: dict[int, np.ndarray] = {}
        self._matrix_keepalive: list = []
        self._validated_topologies: dict[int, object] = {}
        # Packed uint64 neighborhood matrices for the skip-gated
        # solo-cover reception (n beyond the dense-matrix cap).
        self._packed_words = (n + 63) // 64
        self._packed_cache: dict[int, np.ndarray] = {}
        self._packed_keepalive: list = []

    # ------------------------------------------------------------------
    # Round execution (same pipeline as the reference engine, batched)
    # ------------------------------------------------------------------
    # ``step`` is decomposed into overridable stages so the bank engine
    # (:mod:`repro.core.bankpath`) can drive many lanes in lockstep:
    # ``_plan_probs`` (stage 1), the shared coin draw (stage 2, batched
    # across lanes by the bank scheduler), and ``_finish_round``
    # (stages 3–6). Each stage preserves the reference semantics
    # exactly; only *where* the work happens moves.
    def step(self) -> RoundRecord:
        """Execute exactly one round and return its record."""
        self._ensure_started()
        r = self._round
        ph = self._phase_ns if self._trace is not None else None
        if ph is not None:
            t0 = perf_counter_ns()

        # 1. Plans, as a per-node probability vector.
        probs = self._plan_probs(r)

        # fsum is exactly rounded (order-independent), matching the
        # reference engine's fsum over the same probability multiset
        # (extra exact zeros cannot change an exactly-rounded sum).
        expected = math.fsum(probs.tolist())
        if ph is not None:
            t1 = perf_counter_ns()
            ph["plan"] += t1 - t0
            t0 = t1

        # 2. Vectorized Bernoulli coins — the shared coin stream.
        transmit, transmitter_mask = rng_mod.transmission_coins(self._coin_rng, probs)
        if ph is not None:
            ph["coins"] += perf_counter_ns() - t0

        return self._finish_round(r, transmit, transmitter_mask, expected)

    def _plan_probs(self, r: int) -> np.ndarray:
        """Stage 1: the round's per-node transmission probabilities.

        Also refreshes the per-round plan lookup state consumed by
        :meth:`_message_for` (signature classes, direct/poll/hot plans).
        """
        processes = self.processes

        # 1a. Re-classify nodes whose signature may have changed:
        # expired promises plus everything feedback touched last round.
        # Hot nodes are excluded — they are planned directly below, and
        # a stale heap entry must not drag them back into the class
        # machinery.
        heap = self._expiry_heap
        while heap and heap[0][0] <= r:
            self._dirty_mask |= 1 << heapq.heappop(heap)[1]
        dirty = (self._dirty_mask | self._renew_mask) & ~self._hot_mask
        self._dirty_mask = 0
        self._renew_mask = 0
        while dirty:
            low = dirty & -dirty
            dirty ^= low
            self._reclassify(low.bit_length() - 1, r)

        # 1b. One plan per signature class (computed by the lowest
        # member), plus per-node plans for direct/poll nodes.
        probs = self._prob_buffer
        probs.fill(0.0)
        round_plans: dict = {}
        self._round_plans = round_plans
        node_plans = self._node_plans
        for key, mask in self._class_masks.items():
            rep = (mask & -mask).bit_length() - 1
            plan = processes[rep].plan(r)
            round_plans[key] = plan
            if plan.probability:
                if mask.bit_count() <= _SMALL_CLASS:
                    m = mask
                    while m:
                        low = m & -m
                        probs[low.bit_length() - 1] = plan.probability
                        m ^= low
                else:
                    probs[self._mask_to_bool(mask)] = plan.probability
        direct = self._direct_mask
        while direct:
            low = direct & -direct
            u = low.bit_length() - 1
            direct ^= low
            plan = processes[u].plan(r)
            node_plans[u] = plan
            if plan.probability:
                probs[u] = plan.probability
        if self._hot_stale:
            self._rebuild_hot_cache()
        if self._hot_ids:
            # Two C-speed comprehensions — the same shape (and cost) as
            # the reference engine's plan stage, but over hot nodes only.
            hot_plans = [processes[u].plan(r) for u in self._hot_ids]
            hot_probs = [plan.probability for plan in hot_plans]
            self._hot_plans = hot_plans
            probs[self._hot_index] = hot_probs
            if 0.0 in hot_probs:
                self._cool_hot_nodes(hot_probs)
        poll = self._poll_mask
        while poll:
            low = poll & -poll
            u = low.bit_length() - 1
            poll ^= low
            process = processes[u]
            signature = process.plan_signature(r)
            if signature is SILENT_SIGNATURE:
                plan = _SILENCE_PLAN
            elif signature is None:
                plan = process.plan(r)
            else:
                key = (type(process), signature)
                plan = round_plans.get(key)
                if plan is None:
                    plan = process.plan(r)
                    round_plans[key] = plan
            node_plans[u] = plan
            if plan.probability:
                probs[u] = plan.probability
        return probs

    def _plan_for(self, u: int) -> RoundPlan:
        """The plan node ``u`` followed this round (senders only)."""
        key = self._node_key[u]
        if key is _HOT_KEY:
            return self._hot_plans[self._hot_pos[u]]
        if key is None or key is _DIRECT_KEY:
            return self._node_plans[u]
        if key is _SILENT_KEY:  # pragma: no cover - silent nodes never send
            return _SILENCE_PLAN
        return self._round_plans[key]

    def _message_for(self, u: int) -> Message:
        """The message transmitter ``u`` put on the air this round."""
        message = self._plan_for(u).message
        if message is None:  # pragma: no cover - PlanError guards this
            raise PlanError(f"transmitter {u} has no message")
        return message

    def _choose_topology(self, r: int):
        """Stage 3: oblivious adversaries see the clock only."""
        topology = self.link_process.choose_topology(ObliviousView(round_index=r))
        if self.validate_topologies:
            key = id(topology.masks)
            if key not in self._validated_topologies:
                topology.validate(self.network)
                # Remember only a bounded set of validated mask tuples
                # (they are pinned to keep ids unique): pattern-reusing
                # adversaries hit the cache forever, while churning
                # ones simply revalidate per round — exactly the
                # reference engine's behavior — instead of pinning one
                # tuple per round for the whole execution.
                if len(self._validated_topologies) < _MATRIX_CACHE_SIZE:
                    self._validated_topologies[key] = topology.masks
        return topology

    def _resolve(
        self, transmit: np.ndarray, transmitter_mask: int, topology
    ) -> list[Delivery]:
        """Stage 4: exactly-one-transmitting-neighbor reception."""
        if not transmitter_mask:
            return []
        matrix = self._matrix_for(topology.masks)
        if matrix is not None:
            return self._resolve_with_matrix(transmit, matrix)
        if self.skip:
            packed = self._packed_for(topology)
            if packed is not None:
                return self._resolve_packed(transmitter_mask, topology.masks, packed)
        return self._resolve_candidates(transmitter_mask, topology.masks)

    def _apply_feedback(
        self, r: int, transmitter_mask: int, deliveries: Sequence[Delivery]
    ) -> None:
        """Stage 5: feedback, restricted to nodes that can react.

        Every node actually called is marked dirty for
        re-classification. Transmitters whose class promised
        transmit_feedback_noop are skipped outright — in dense rounds
        they are the bulk of the calls, and their state provably cannot
        have changed.
        """
        processes = self.processes
        pending = (
            transmitter_mask & ~self._send_feedback_skip_mask
        ) | self._always_feedback_mask
        received_by: dict[int, Delivery] = {}
        for delivery in deliveries:
            received_by[delivery.receiver] = delivery
            pending |= 1 << delivery.receiver
        # Hot nodes stay hot across feedback: their plan is computed
        # directly every round, so reclassification would only reset
        # the churn counter and re-run the machinery they escaped.
        self._dirty_mask |= pending & ~(self._poll_mask | self._hot_mask)
        while pending:
            low = pending & -pending
            u = low.bit_length() - 1
            pending ^= low
            delivery = received_by.get(u)
            processes[u].on_feedback(
                r,
                bool((transmitter_mask >> u) & 1),
                delivery.message if delivery is not None else None,
            )

    def _finish_round(
        self,
        r: int,
        transmit: np.ndarray,
        transmitter_mask: int,
        expected: float,
        topology=None,
        deliveries: Optional[list[Delivery]] = None,
    ) -> RoundRecord:
        """Stages 3–6: topology, reception, feedback, record keeping.

        The bank scheduler passes ``topology``/``deliveries`` when it
        already resolved them (batched matvec reception across lanes
        that share a round topology); left as ``None``, the stages run
        per engine exactly as in a standalone ``step``.
        """
        ph = self._phase_ns if self._trace is not None else None
        if ph is not None:
            t0 = perf_counter_ns()
        if topology is None:
            topology = self._choose_topology(r)
            if ph is not None:
                t1 = perf_counter_ns()
                ph["adversary"] += t1 - t0
                t0 = t1
        if deliveries is None:
            deliveries = self._resolve(transmit, transmitter_mask, topology)
            if ph is not None:
                t1 = perf_counter_ns()
                ph["reception"] += t1 - t0
                t0 = t1
        self._apply_feedback(r, transmitter_mask, deliveries)
        if ph is not None:
            t1 = perf_counter_ns()
            ph["feedback"] += t1 - t0
            t0 = t1

        # 6. Record keeping — identical to the reference engine.
        record = RoundRecord(
            round_index=r,
            transmitter_mask=transmitter_mask,
            deliveries=tuple(deliveries),
            expected_transmitters=expected,
        )
        self._append_history(record)
        for observer in self.observers:
            observer.on_round(record)
        self._round += 1
        self._stats.rounds_run += 1
        if ph is not None:
            ph["observers"] += perf_counter_ns() - t0
            counts = self._trace_counts
            counts["rounds.executed"] = counts.get("rounds.executed", 0) + 1
        return record

    # ------------------------------------------------------------------
    # Round skipping
    # ------------------------------------------------------------------
    def _expected_exact(self, probs: np.ndarray) -> float:
        """The round's expected transmitter count, bit-identical to fsum.

        ``math.fsum`` returns the *correctly rounded* sum of its
        inputs, so any other correctly rounded evaluation of the same
        float multiset yields the identical value — here an exact
        rational accumulation over the class composition (count ×
        probability per signature class, plus the per-node categories),
        which is O(#classes) instead of O(n). Compositions with more
        distinct nonzero contributors than the exact sum can beat fall
        back to the fsum the reference engine uses.
        """
        terms: list[tuple[float, int]] = []
        budget = _EXACT_EXPECTED_TERMS
        round_plans = self._round_plans
        for key, mask in self._class_masks.items():
            p = round_plans[key].probability
            if p:
                budget -= 1
                if budget < 0:
                    return math.fsum(probs.tolist())
                terms.append((p, mask.bit_count()))
        node_plans = self._node_plans
        singles = self._direct_mask | self._poll_mask
        while singles:
            low = singles & -singles
            singles ^= low
            p = node_plans[low.bit_length() - 1].probability
            if p:
                budget -= 1
                if budget < 0:
                    return math.fsum(probs.tolist())
                terms.append((p, 1))
        if self._hot_ids:
            for plan in self._hot_plans:
                p = plan.probability
                if p:
                    budget -= 1
                    if budget < 0:
                        return math.fsum(probs.tolist())
                    terms.append((p, 1))
        if not terms:
            return 0.0
        total = Fraction(0)
        for p, count in terms:
            total += Fraction(p) * count
        return float(total)

    def _quiescent(self) -> bool:
        """No pending re-polls, hot/poll churners, or reactive feedback."""
        return not (
            self._hot_mask
            or self._poll_mask
            or self._renew_mask
            or self._dirty_mask
            or self._always_feedback_mask
        )

    def _skip_horizon(self, r: int, limit: int) -> int:
        """First round in ``(r, limit]`` at which anything may change.

        The incremental class state narrows the reference engine's
        O(n) probe to O(#classes): silent nodes' transitions are
        already scheduled on the expiry heap, so only the live class
        representatives (one ``next_state_change`` per class — members
        agree by the contract) and the few direct-mode nodes need
        polling, plus the adversary's boundary.
        """
        h = limit
        heap = self._expiry_heap
        if heap and heap[0][0] < h:
            h = heap[0][0]
        if h <= r + 1:
            return r + 1
        boundary = self.link_process.next_boundary(r)
        if boundary is not None and boundary < h:
            h = boundary
        if h <= r + 1:
            return r + 1
        processes = self.processes
        for mask in self._class_masks.values():
            rep = (mask & -mask).bit_length() - 1
            nxt = processes[rep].next_state_change(r)
            if nxt is not None and nxt < h:
                h = nxt
                if h <= r + 1:
                    return r + 1
        direct = self._direct_mask
        if direct:
            if direct.bit_count() > _SKIP_DIRECT_CAP:
                return r + 1
            while direct:
                low = direct & -direct
                direct ^= low
                nxt = processes[low.bit_length() - 1].next_state_change(r)
                if nxt is not None and nxt < h:
                    h = nxt
                    if h <= r + 1:
                        return r + 1
        return max(h, r + 1)

    def _run_skipping(self, max_rounds: int, stop: Optional[StopCondition]) -> ExecutionResult:
        """Skip-enabled run loop over the incremental class state.

        Each round executes through the normal staged pipeline (with
        the exact class-sum replacing the O(n) fsum); after an
        all-silent round in a quiescent engine, the span up to the
        skip horizon is emitted without execution — the elided ``plan``
        calls are licensed by ``next_state_change``, the elided
        ``choose_topology`` calls by ``next_boundary``, and no feedback
        is elided at all (an all-silent round with no always-feedback
        nodes makes zero ``on_feedback`` calls to begin with).
        """
        executed = 0
        ph = self._phase_ns if self._trace is not None else None
        while executed < max_rounds:
            r = self._round
            if ph is not None:
                t0 = perf_counter_ns()
            probs = self._plan_probs(r)
            expected = self._expected_exact(probs)
            if ph is not None:
                t1 = perf_counter_ns()
                ph["plan"] += t1 - t0
                t0 = t1
            transmit, transmitter_mask = rng_mod.transmission_coins(self._coin_rng, probs)
            if ph is not None:
                ph["coins"] += perf_counter_ns() - t0
            record = self._finish_round(r, transmit, transmitter_mask, expected)
            executed += 1
            if stop is not None and stop():
                return ExecutionResult(
                    rounds=executed, solved=True, solve_round=record.round_index
                )
            if executed >= max_rounds:
                break
            if transmitter_mask or expected != 0.0 or not self._quiescent():
                # expected is an exact sum of non-negative terms, so
                # 0.0 here certifies every plan was silence.
                continue
            if ph is not None:
                ts = perf_counter_ns()
            start = self._round
            h = self._skip_horizon(r, start + (max_rounds - executed))
            if ph is not None and h > start:
                counts = self._trace_counts
                counts["skip.spans"] = counts.get("skip.spans", 0) + 1
                self._trace.observe("skip.span_rounds", h - start)
            try:
                for i in range(start, h):
                    quiet = self._emit_quiet_round(i)
                    executed += 1
                    if stop is not None and stop():
                        return ExecutionResult(
                            rounds=executed, solved=True, solve_round=quiet.round_index
                        )
            finally:
                if ph is not None:
                    ph["skip"] += perf_counter_ns() - ts
        return ExecutionResult(rounds=executed, solved=False, solve_round=None)

    def _trace_end(self, rec, result: ExecutionResult) -> None:
        """Stamp the end-of-run signature-class composition, then flush.

        Snapshot counters (not per-round aggregates): they answer "how
        many classes was this population sharing when the run ended",
        which is the quantity the class machinery's wins hinge on.
        """
        counts = self._trace_counts
        counts["classes.signature"] = len(self._class_masks)
        counts["classes.hot"] = self._hot_mask.bit_count()
        counts["classes.direct"] = self._direct_mask.bit_count()
        counts["classes.silent"] = self._silent_mask.bit_count()
        super()._trace_end(rec, result)

    # ------------------------------------------------------------------
    # Hot-path bookkeeping
    # ------------------------------------------------------------------
    def _rebuild_hot_cache(self) -> None:
        """Unpack ``_hot_mask`` into the ids list + index structures once."""
        mask = self._hot_mask
        ids: list[int] = []
        while mask:
            low = mask & -mask
            ids.append(low.bit_length() - 1)
            mask ^= low
        self._hot_ids = ids
        self._hot_index = np.asarray(ids, dtype=np.intp) if ids else None
        self._hot_pos = {u: i for i, u in enumerate(ids)}
        self._hot_stale = False

    def _cool_hot_nodes(self, hot_probs: Sequence[float]) -> None:
        """Track consecutive all-silent plans; demote chronic sleepers.

        Called only on rounds where some hot node planned silence, so
        the per-node counter work stays off the common path.
        """
        cold = self._cold
        for u, probability in zip(self._hot_ids, hot_probs):
            if probability:
                cold[u] = 0
                continue
            count = cold[u] + 1
            if count < _COLD_DEMOTE:
                cold[u] = count
                continue
            # Gone quiet: hand the node back to classification (a truly
            # silent node then costs nothing per round).
            bit = 1 << u
            self._hot_mask &= ~bit
            self._hot_stale = True
            self._node_key[u] = None
            self._churn[u] = 0
            cold[u] = 0
            self._dirty_mask |= bit

    # ------------------------------------------------------------------
    # Signature-class bookkeeping
    # ------------------------------------------------------------------
    def _reclassify(self, u: int, r: int) -> None:
        """Re-poll node ``u``'s signature and move it between classes."""
        process = self.processes[u]
        signature = process.plan_signature(r)
        expiry = process.plan_signature_expiry(r)
        if signature is SILENT_SIGNATURE:
            new_key: object = _SILENT_KEY
        elif signature is None:
            new_key = _DIRECT_KEY
        else:
            new_key = (type(process), signature)
        bit = 1 << u
        old_key = self._node_key[u]
        if new_key != old_key:
            if old_key is _SILENT_KEY:
                self._silent_mask &= ~bit
            elif old_key is _DIRECT_KEY:
                self._direct_mask &= ~bit
            elif old_key is not None:
                remaining = self._class_masks[old_key] & ~bit
                if remaining:
                    self._class_masks[old_key] = remaining
                else:
                    del self._class_masks[old_key]
            if new_key is _SILENT_KEY:
                self._silent_mask |= bit
            elif new_key is _DIRECT_KEY:
                self._direct_mask |= bit
            else:
                self._class_masks[new_key] = self._class_masks.get(new_key, 0) | bit
            self._node_key[u] = new_key
        if expiry is None:
            self._churn[u] = 0
            return
        if expiry > r + 1:
            self._churn[u] = 0
            # A stale (superseded) heap entry only causes a harmless
            # extra re-poll, so entries are never invalidated.
            heapq.heappush(self._expiry_heap, (expiry, u))
            return
        # The signature expires immediately — the node will be re-polled
        # next round via the renew mask (no heap traffic). A node that
        # keeps expiring every round (the time-driven `_advance(r)`
        # shape: fresh signature every round, usually per-node) pays
        # the full signature machinery on top of the plan call it
        # rarely manages to share, and :meth:`plan_signature` costs
        # about as much as :meth:`plan` for exactly those protocols —
        # promote such chronic churners to the hot path. Every-round
        # expiry never describes the lockstep ladder algorithms (their
        # promises span phases or say "feedback only"), so the E1-style
        # signature wins are untouched.
        if new_key is not _SILENT_KEY:
            churn = self._churn[u] + 1
            if churn >= _CHURN_PROMOTE:
                if new_key is _DIRECT_KEY:
                    self._direct_mask &= ~bit
                else:
                    remaining = self._class_masks[new_key] & ~bit
                    if remaining:
                        self._class_masks[new_key] = remaining
                    else:
                        del self._class_masks[new_key]
                self._node_key[u] = _HOT_KEY
                self._hot_mask |= bit
                self._hot_stale = True
                self._churn[u] = 0
                self._cold[u] = 0
                return
            self._churn[u] = churn
        else:
            self._churn[u] = 0
        self._renew_mask |= bit

    def _mask_to_bool(self, mask: int) -> np.ndarray:
        """A member bitmask as a boolean index vector (C-speed unpack)."""
        packed = np.frombuffer(mask.to_bytes(self._nbytes, "little"), dtype=np.uint8)
        return np.unpackbits(
            packed, bitorder="little", count=self.network.n
        ).astype(bool)

    # ------------------------------------------------------------------
    # Reception helpers
    # ------------------------------------------------------------------
    def _matrix_for(self, masks: tuple[int, ...]) -> Optional[np.ndarray]:
        """Dense neighbor matrix for a round topology, if worth caching."""
        network = self.network
        counts = self._trace_counts if self._trace is not None else None
        if network.n > _MATRIX_MAX_N:
            return None
        if masks is network.g_masks or masks is network.gp_masks:
            if counts is not None:
                counts["cache.matrix.hit"] = counts.get("cache.matrix.hit", 0) + 1
            return network.neighbor_matrix(use_gp=masks is network.gp_masks)
        key = id(masks)
        matrix = self._matrix_cache.get(key)
        if matrix is not None:
            if counts is not None:
                counts["cache.matrix.hit"] = counts.get("cache.matrix.hit", 0) + 1
            return matrix
        if counts is not None:
            counts["cache.matrix.miss"] = counts.get("cache.matrix.miss", 0) + 1
        if len(self._matrix_cache) >= _MATRIX_CACHE_SIZE:
            return None  # topology churn: the bigint scan is cheaper
        matrix = masks_to_neighbor_matrix(masks, network.n)
        self._matrix_cache[key] = matrix
        # Cache keys are id()s: pin the tuples so ids stay unique.
        self._matrix_keepalive.append(masks)
        return matrix

    def _resolve_with_matrix(
        self, transmit: np.ndarray, matrix: np.ndarray
    ) -> list[Delivery]:
        """Reception via one matvec over the count/sender encoding."""
        x = self._x_buffer
        np.copyto(x, transmit)
        totals = (matrix @ (x * self._sender_encoding)).astype(np.int64)
        modulus = self.network.n + 1
        solo = (totals % modulus == 1) & (x == 0.0)
        receivers = np.nonzero(solo)[0]
        if receivers.size == 0:
            return []
        senders = totals[receivers] // modulus - 1
        deliveries: list[Delivery] = []
        message_for = self._message_for
        for u, sender in zip(receivers.tolist(), senders.tolist()):
            deliveries.append(
                Delivery(receiver=u, sender=sender, message=message_for(sender))
            )
        return deliveries

    def _resolve_candidates(
        self, transmitter_mask: int, masks: Sequence[int]
    ) -> list[Delivery]:
        """The paper's bitset rule over candidate listeners only.

        A listener can receive only if some transmitter neighbors it,
        so the scan covers the union of the transmitters' neighborhoods
        instead of all ``n`` nodes — the word-parallel
        ``popcount(X & mask[u]) == 1`` test then picks out solo
        receptions exactly as the reference loop does.
        """
        reach = 0
        t = transmitter_mask
        while t:
            low = t & -t
            reach |= masks[low.bit_length() - 1]
            t ^= low
        candidates = reach & ~transmitter_mask
        deliveries: list[Delivery] = []
        message_for = self._message_for
        while candidates:
            low = candidates & -candidates
            u = low.bit_length() - 1
            candidates ^= low
            neighbors_transmitting = transmitter_mask & masks[u]
            if neighbors_transmitting and not (
                neighbors_transmitting & (neighbors_transmitting - 1)
            ):
                sender = neighbors_transmitting.bit_length() - 1
                deliveries.append(
                    Delivery(receiver=u, sender=sender, message=message_for(sender))
                )
        return deliveries

    def _packed_for(self, topology) -> Optional[np.ndarray]:
        """Word-packed ``(n, n//64)`` neighborhood matrix, if cached.

        The dense count/sender matvec stops paying for itself beyond
        ``_MATRIX_MAX_N``; up to ``_PACKED_MAX_N`` the uint64-packed
        rows keep reception word-parallel (64 listeners per machine
        word) with a footprint of ``n²/8`` bytes instead of ``8n²``.
        Same id-keyed cache discipline as :meth:`_matrix_for`; the rows
        themselves come from :meth:`RoundTopology.packed_rows`, so a
        schedule an adversary published in ``start()`` is shared across
        every engine lane rather than re-packed per engine.
        """
        n = self.network.n
        if n > _PACKED_MAX_N:
            return None
        counts = self._trace_counts if self._trace is not None else None
        masks = topology.masks
        key = id(masks)
        packed = self._packed_cache.get(key)
        if packed is not None:
            if counts is not None:
                counts["cache.packed.hit"] = counts.get("cache.packed.hit", 0) + 1
            return packed
        if counts is not None:
            counts["cache.packed.miss"] = counts.get("cache.packed.miss", 0) + 1
        if len(self._packed_cache) >= _MATRIX_CACHE_SIZE:
            return None  # topology churn: the bigint scan is cheaper
        packed = topology.packed_rows()
        self._packed_cache[key] = packed
        self._packed_keepalive.append(masks)
        return packed

    def _resolve_packed(
        self, transmitter_mask: int, masks: Sequence[int], packed: np.ndarray
    ) -> list[Delivery]:
        """Reception via a saturating popcount over packed rows.

        By topology symmetry, listener ``v`` hears solo transmitter
        ``u`` iff bit ``v`` is set in row ``u``; a tree reduction over
        the transmitters' rows carries (covered-once, covered-twice)
        word pairs — combine is ``(a1|b1, a2|b2|(a1&b1))`` — so
        ``cover & ~twice`` marks exactly the listeners with one
        transmitting neighbor.
        """
        if not (transmitter_mask & (transmitter_mask - 1)):
            # Single transmitter: its neighborhood row is the solo set.
            u = transmitter_mask.bit_length() - 1
            message = self._message_for(u)
            receivers = masks[u] & ~transmitter_mask
            deliveries: list[Delivery] = []
            while receivers:
                low = receivers & -receivers
                receivers ^= low
                deliveries.append(
                    Delivery(
                        receiver=low.bit_length() - 1, sender=u, message=message
                    )
                )
            return deliveries
        t_ids = []
        t = transmitter_mask
        while t:
            low = t & -t
            t_ids.append(low.bit_length() - 1)
            t ^= low
        cover = packed[t_ids]
        twice = np.zeros_like(cover)
        while cover.shape[0] > 1:
            half = cover.shape[0] // 2
            a1, b1 = cover[:half], cover[half : 2 * half]
            a2, b2 = twice[:half], twice[half : 2 * half]
            new_cover = a1 | b1
            new_twice = a2 | b2 | (a1 & b1)
            if cover.shape[0] & 1:
                new_cover = np.concatenate([new_cover, cover[-1:]])
                new_twice = np.concatenate([new_twice, twice[-1:]])
            cover, twice = new_cover, new_twice
        solo = int.from_bytes((cover[0] & ~twice[0]).tobytes(), "little")
        solo &= ~transmitter_mask
        deliveries = []
        message_for = self._message_for
        while solo:
            low = solo & -solo
            u = low.bit_length() - 1
            solo ^= low
            sender = (masks[u] & transmitter_mask).bit_length() - 1
            deliveries.append(
                Delivery(receiver=u, sender=sender, message=message_for(sender))
            )
        return deliveries
