"""Deterministic seed-tree utilities.

Every source of randomness in a simulation — per-node process RNGs, the
engine's transmission coins, adversary randomness, workload generators —
is derived from one master seed through *labelled* derivation. Labels
are arbitrary strings/ints that name the consumer (for example
``("node", 17)`` or ``("adversary", "gilbert-elliott")``). Derivation is
stable across platforms and Python versions because it uses SHA-256
rather than Python's salted ``hash``.

This matters for the paper's constructions in two ways:

* *Reproducibility*: a trial is exactly re-runnable from its seed, which
  the analysis harness relies on when re-examining outlier executions.
* *Independence*: the oblivious attackers of Section 4 must draw
  "support sequences ... with uniform and independent randomness"
  (Lemma 4.5) that are independent from the execution's own coins.
  Giving each consumer its own labelled child stream provides exactly
  that independence structure.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable

import numpy as np

__all__ = [
    "derive_seed",
    "spawn_rng",
    "spawn_lazy_rng",
    "spawn_numpy_rng",
    "fresh_seed_sequence",
    "transmission_coins",
]

_SEED_BYTES = 8


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a label path.

    The same ``(master_seed, labels)`` pair always yields the same child
    seed; distinct label paths yield (cryptographically) independent
    seeds.

    Parameters
    ----------
    master_seed:
        Root seed of the simulation.
    labels:
        Path of labels naming the consumer, e.g. ``("node", 3, "coins")``.
        Labels are stringified, so any ``repr``-stable object works.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")  # unit separator: avoids label-concat collisions
        hasher.update(repr(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "big")


def spawn_rng(master_seed: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` seeded from the labelled child seed."""
    return random.Random(derive_seed(master_seed, *labels))


class LazyRng:
    """A :class:`random.Random` stand-in that defers seeding to first use.

    Seeding a Mersenne Twister costs ~8µs and the SHA-256 label
    derivation another ~3µs — per *node*, per trial. Most processes
    never touch their private stream (decay ladders and round robin
    are coin-free outside the engine's own transmission coins), so
    :meth:`~repro.algorithms.base.AlgorithmSpec.build_processes` hands
    out these proxies instead. The first attribute access materializes
    the underlying generator with the same ``(master_seed, labels)``
    derivation, so every draw is bit-identical to an eager
    :func:`spawn_rng` stream; consumers that draw often should hold
    the bound method (``draw = ctx.rng.random``) as usual, which
    skips the proxy after the first hop.
    """

    __slots__ = ("_master_seed", "_labels", "_rng")

    def __init__(self, master_seed: int, labels: tuple) -> None:
        self._master_seed = master_seed
        self._labels = labels
        self._rng: "random.Random | None" = None

    def __getattr__(self, name: str):
        rng = self._rng
        if rng is None:
            rng = random.Random(derive_seed(self._master_seed, *self._labels))
            self._rng = rng
        return getattr(rng, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "seeded" if self._rng is not None else "unseeded"
        return f"LazyRng({self._labels!r}, {state})"


def spawn_lazy_rng(master_seed: int, *labels: object) -> LazyRng:
    """Like :func:`spawn_rng` but seeds on first draw (see :class:`LazyRng`)."""
    return LazyRng(master_seed, labels)


def spawn_numpy_rng(master_seed: int, *labels: object) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator` for vectorized draws.

    The engine uses one of these for per-round Bernoulli transmission
    coins; stochastic link processes use their own for edge fading.
    """
    return np.random.default_rng(derive_seed(master_seed, *labels))


def transmission_coins(
    coin_rng: np.random.Generator, probabilities: "np.ndarray"
) -> tuple["np.ndarray", int]:
    """One round of Bernoulli transmission coins, as a batch.

    Draws exactly ``len(probabilities)`` uniforms from ``coin_rng`` —
    one per node, in node order — and returns ``(transmit, mask)``
    where ``transmit[u]`` is the realized coin of node ``u`` and
    ``mask`` is the same set packed as a Python int bitset (bit ``u``
    set iff node ``u`` transmits).

    This is the *single* place transmission coins are realized: the
    reference and bitset engines both call it against the same
    ``("engine", "coins")`` child stream, which is what makes them
    seed-for-seed identical by construction.

    The single comparison is exhaustive because plans clamp
    ``p ∈ [0, 1]`` and the uniforms live in ``[0, 1)``: ``p = 0``
    never transmits (no uniform is below 0), ``p = 1`` always does
    (every uniform is below 1), and the open interval means no
    tie-breaking case exists.
    """
    coins = coin_rng.random(len(probabilities))
    transmit = coins < probabilities
    mask = int.from_bytes(np.packbits(transmit, bitorder="little").tobytes(), "little")
    return transmit, mask


def fresh_seed_sequence(rng: random.Random, count: int) -> list[int]:
    """Draw ``count`` independent 63-bit seeds from ``rng``.

    Useful when an already-derived RNG must fan out into further
    independent streams (for example one seed per trial of a sweep).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [rng.getrandbits(63) for _ in range(count)]


def interleave_labels(base: Iterable[object], extra: Iterable[object]) -> tuple[object, ...]:
    """Concatenate two label paths into one tuple (helper for wrappers)."""
    return tuple(base) + tuple(extra)
