"""The bank engine: a trial-batched numpy struct-of-arrays kernel.

:class:`BankRadioNetworkEngine` is the third registered engine
(``engine="bank"``). Where the bitset fast path batches *across nodes*
within one trial, the bank batches *across trials*: an entire seed bank
of independent executions advances in lockstep rounds, and the per-round
numpy work — Bernoulli comparisons, transmit-mask packing, and the
dense reception matvec — runs once for the whole bank instead of once
per trial.

Three layers cooperate:

1. **Per-trial lanes.** Each trial still owns a
   :class:`BankRadioNetworkEngine` — a
   :class:`~repro.core.fastpath.BitsetRadioNetworkEngine` subclass, so
   every stage it does not override (topology, reception, feedback
   skipping, records) keeps the proven bitset semantics. A standalone
   ``engine.run()`` therefore works exactly like bitset (that is what
   :func:`~repro.core.engine.create_engine` returns for a single
   trial); the cross-trial wins need the batch entry points below.
2. **Vectorized protocol kernels.** For the time-driven MAC protocols
   (:class:`~repro.algorithms.multi_message.GklnMultiMessageProcess`,
   :class:`~repro.algorithms.multi_message.BackoffMultiMessageProcess`)
   the per-node Python state machines are *replaced* by
   struct-of-arrays state: knowledge as a (trials × nodes × bits)
   bitmap packed into int64 lanes, append-order message logs, ack
   windows and back-off epochs folded by vectorized index arithmetic.
   One batch of numpy ops per round plans every node of every trial;
   reception feedback degrades to sparse per-delivery updates. The
   kernels reproduce the reference engine's plans bit-for-bit
   (probabilities are exact powers of two via ``ldexp``; message
   identity is positional), which ``tests/test_engine_equivalence.py``
   holds to full-trace identity. Algorithms without a kernel simply run
   the lanes' inherited bitset plan stage — still batched at the
   coins/reception layer, never falling back to a slower path.
3. **The lockstep scheduler.** :func:`run_bank_batch` drives all lanes
   round by round: transmission coins are drawn as a (trials × nodes)
   batch — one ``Generator.random(out=row)`` per lane against the same
   per-trial ``("engine", "coins")`` stream the other engines consume,
   so per-trial draw order is untouched — then compared and bit-packed
   in one shot. Lanes whose stop condition fires retire from the bank
   (their RNGs stop drawing, exactly like a serial run ending).

Scope mirrors the bitset engine: oblivious link processes only.
:func:`~repro.core.engine.create_engine` falls back to the reference
engine (with :class:`~repro.core.errors.EngineFallbackWarning`) for
adaptive adversaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.engine import ExecutionResult, StopCondition
from repro.core.fastpath import BitsetRadioNetworkEngine
from repro.core.messages import Message
from repro.core.trace import Delivery

__all__ = [
    "BankRadioNetworkEngine",
    "BankLane",
    "build_bank_kernel",
    "run_bank_batch",
]

#: Knowledge bitmaps live in int64 lanes; workloads with more messages
#: than bits fall back to the generic (bitset-plan) lane path.
_KERNEL_MAX_BITS = 63

#: Sentinel: "build a single-lane kernel from my own processes".
_AUTO_KERNEL = object()

#: Ceiling for the scheduler's per-round dense reception batch: when a
#: lane's round topology misses the bitset matrix cache (fading
#: adversaries mint fresh mask tuples every round, so the id-keyed
#: cache fills and stays cold), the scheduler builds the dense neighbor
#: matrices for all such lanes in one ``unpackbits`` and resolves them
#: with one batched matvec. The build is Θ(lanes · n²); past this size
#: the bigint candidate scan (Θ(transmitters + listeners) words) wins.
_DENSE_BATCH_MAX_N = 512


# ----------------------------------------------------------------------
# Vectorized protocol kernels
# ----------------------------------------------------------------------
class _MultiMessageKernelBase:
    """Shared struct-of-arrays state for the multi-message kernels.

    Layout (``T`` trials × ``n`` nodes × ``k`` messages):

    * ``known``  — (T, n) int64 bitmap: bit ``i`` set iff the node holds
      message ``i`` (the ISSUE's trials × nodes × bits knowledge map,
      bit-packed).
    * ``order``  — (T, n, k) int64 append-order log of message indices;
      both protocols rotate/queue over their knowledge in append order.
    * ``klen``   — (T, n) int64 length of that log.
    * ``messages[t][i]`` — the canonical :class:`Message` object for
      message ``i`` of trial ``t`` (minted by its source process, so
      deliveries compare equal to the reference engine's).
    """

    def __init__(self, banks: Sequence[Sequence]) -> None:
        first = banks[0][0]
        self.trials = len(banks)
        self.n = len(banks[0])
        self.k = first.assignment.k
        self.assignments = [bank[0].assignment for bank in banks]
        shape = (self.trials, self.n)
        self.known = np.zeros(shape, dtype=np.int64)
        self.order = np.zeros((*shape, self.k), dtype=np.int64)
        self.klen = np.zeros(shape, dtype=np.int64)
        self.messages: list[list[Optional[Message]]] = [
            [None] * self.k for _ in range(self.trials)
        ]
        # Canonical objects let feedback resolve a delivery's message
        # index by identity instead of payload inspection; the
        # ``messages`` lists pin the objects, so ids stay unique.
        self._index_by_id: dict[int, int] = {}
        self._r = -1
        self._probs: Optional[np.ndarray] = None

    def _ingest_knowledge(self, t: int, u: int, messages: Sequence[Message]) -> None:
        """Seed node (t, u)'s knowledge log from its initial messages."""
        assignment = self.assignments[t]
        for position, message in enumerate(messages):
            index = assignment.index_of(message.payload)
            self.order[t, u, position] = index
            self.known[t, u] |= 1 << index
            # Initial messages exist only at their sources, so this is
            # the canonical (source-minted) object for the index.
            self.messages[t][index] = message
            self._index_by_id[id(message)] = index
        self.klen[t, u] = len(messages)

    def _learn(self, t: int, u: int, index: int) -> bool:
        """Append message ``index`` to (t, u)'s log; False if known."""
        bit = 1 << index
        if self.known[t, u] & bit:
            return False
        self.known[t, u] |= bit
        length = int(self.klen[t, u])
        self.order[t, u, length] = index
        self.klen[t, u] = length + 1
        return True

    def _delivery_index(self, t: int, delivery: Delivery) -> Optional[int]:
        """The message index a delivery carries, or None for foreign ones.

        Fast path: kernel lanes mint every transmitted message through
        :meth:`message_for`, so deliveries carry the canonical objects
        and resolve by identity. The payload-inspection fallback keeps
        parity for any non-canonical (but valid) message object.
        """
        message = delivery.message
        index = self._index_by_id.get(id(message))
        if index is not None:
            return index
        if not message.is_data():
            return None
        return self.assignments[t].index_of(message.payload)


class _GklnBankKernel(_MultiMessageKernelBase):
    """All trials of a GKLN queued-discipline bank, as arrays.

    Mirrors :class:`~repro.algorithms.multi_message.GklnMultiMessageProcess`
    exactly: the pending FIFO is the suffix ``order[qhead:klen]`` of the
    append-order log (relay-once means every learned message is queued
    exactly once, in learn order), ``head_start`` is the round the
    head's ack window opened (−1 = idle), and elapsed windows are folded
    by one vectorized division instead of a per-node ``while`` loop.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.multi_message import GklnMultiMessageProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not GklnMultiMessageProcess:
                return False
            if first.assignment.k > _KERNEL_MAX_BITS:
                return False
            for process in bank:
                if type(process) is not GklnMultiMessageProcess:
                    return False
                if (
                    process.assignment is not first.assignment
                    or process.window != first.window
                    or process.rungs != first.rungs
                    or process.persist_probability != first.persist_probability
                ):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        lane_col = lambda attr: np.array(  # noqa: E731 - tiny local helper
            [[getattr(bank[0], attr)] for bank in banks]
        )
        self.window = lane_col("window").astype(np.int64)
        self.rungs = lane_col("rungs").astype(np.int64)
        self.persist = lane_col("persist_probability").astype(np.float64)
        self.qhead = np.zeros((self.trials, self.n), dtype=np.int64)
        self.head_start = np.full((self.trials, self.n), -1, dtype=np.int64)
        for t, bank in enumerate(banks):
            for u, process in enumerate(bank):
                self._ingest_knowledge(t, u, list(process._all_known))
                self.qhead[t, u] = self.klen[t, u] - len(process._queue)
                if process._head_start is not None:
                    self.head_start[t, u] = process._head_start

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        head_start, qhead, klen = self.head_start, self.qhead, self.klen
        # Fold elapsed ack windows: every full window pops one head.
        started = head_start >= 0
        pops = np.where(
            started,
            np.minimum((r - head_start) // self.window, klen - qhead),
            0,
        )
        np.maximum(pops, 0, out=pops)
        qhead += pops
        head_start += pops * self.window
        head_start[started & (qhead >= klen)] = -1
        serving = head_start >= 0
        # Serving nodes climb the decay ladder (exact powers of two, so
        # ldexp matches the process's ``2.0 ** (-slot % rungs - 1)``
        # bit-for-bit); idle nodes with knowledge persist at the
        # background duty cycle; everyone else is silent.
        slot = r - head_start
        ladder = np.ldexp(1.0, -(slot % self.rungs) - 1)
        background = np.where((klen > 0) & (self.persist > 0.0), self.persist, 0.0)
        self._probs = np.where(serving, ladder, background)
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """The message lane ``t``'s node ``u`` transmitted this round."""
        if self.head_start[t, u] >= 0:
            index = self.order[t, u, self.qhead[t, u]]
        else:
            index = self.order[t, u, (self._r + u) % int(self.klen[t, u])]
        return self.messages[t][int(index)]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """Sparse reception feedback (idle/transmit feedback are no-ops)."""
        for delivery in deliveries:
            index = self._delivery_index(t, delivery)
            if index is None:
                continue
            u = delivery.receiver
            if self._learn(t, u, index) and self.head_start[t, u] < 0:
                # The queue was idle: the window opens next round.
                self.head_start[t, u] = r + 1


class _BackoffBankKernel(_MultiMessageKernelBase):
    """All trials of a simple back-off bank, as arrays.

    Mirrors :class:`~repro.algorithms.multi_message.BackoffMultiMessageProcess`:
    nodes holding messages transmit at the regime's rate (fixed, or
    halving per quiet ``backoff_window`` — again exact powers of two via
    ``ldexp``) and rotate through their knowledge log offset by node id.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.multi_message import BackoffMultiMessageProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not BackoffMultiMessageProcess:
                return False
            if first.assignment.k > _KERNEL_MAX_BITS:
                return False
            for process in bank:
                if type(process) is not BackoffMultiMessageProcess:
                    return False
                if (
                    process.assignment is not first.assignment
                    or process.regime != first.regime
                    or process.backoff_window != first.backoff_window
                    or process.base_probability != first.base_probability
                    or process.min_probability != first.min_probability
                ):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.exponential = np.array(
            [[bank[0].regime == "exponential"] for bank in banks]
        )
        self.backoff_window = np.array(
            [[bank[0].backoff_window] for bank in banks], dtype=np.int64
        )
        self.base = np.array(
            [[bank[0].base_probability] for bank in banks], dtype=np.float64
        )
        self.floor = np.array(
            [[bank[0].min_probability] for bank in banks], dtype=np.float64
        )
        self.last_new = np.zeros((self.trials, self.n), dtype=np.int64)
        for t, bank in enumerate(banks):
            for u, process in enumerate(bank):
                self._ingest_knowledge(t, u, list(process._known))

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        epoch = np.maximum(0, r - self.last_new) // self.backoff_window
        backed = np.maximum(self.floor, self.base * np.ldexp(1.0, -epoch))
        rate = np.where(self.exponential, backed, self.base)
        self._probs = np.where(self.klen > 0, rate, 0.0)
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """The message lane ``t``'s node ``u`` transmitted this round."""
        index = self.order[t, u, (self._r + u) % int(self.klen[t, u])]
        return self.messages[t][int(index)]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """Sparse reception feedback (idle/transmit feedback are no-ops)."""
        for delivery in deliveries:
            index = self._delivery_index(t, delivery)
            if index is None:
                continue
            if self._learn(t, delivery.receiver, index):
                # New knowledge resets the back-off clock from next round.
                self.last_new[t, delivery.receiver] = r + 1


_KERNELS = (_GklnBankKernel, _BackoffBankKernel)


def build_bank_kernel(banks: Sequence[Sequence]):
    """A vectorized protocol kernel for these process banks, or ``None``.

    ``banks[t]`` is trial ``t``'s per-node process list. A kernel is
    built only when *every* process of every lane belongs to the same
    supported protocol family with compatible parameters; anything else
    returns ``None`` and the lanes run their inherited bitset plan
    stage (still coin/reception-batched by the scheduler — this is a
    capability probe, not a fallback to a slower engine).
    """
    if not banks or not banks[0]:
        return None
    for kernel_cls in _KERNELS:
        if kernel_cls.eligible(banks):
            return kernel_cls(banks)
    return None


# ----------------------------------------------------------------------
# Per-trial lane engine
# ----------------------------------------------------------------------
class BankRadioNetworkEngine(BitsetRadioNetworkEngine):
    """One lane of a trial bank (also a standalone single-trial engine).

    Construction signature matches the other engines, plus the private
    ``kernel``/``lane`` pair the batch runner uses to share one
    struct-of-arrays kernel across lanes. Built standalone (via
    :func:`~repro.core.engine.create_engine`), the engine probes its
    own processes for a kernel (a bank of one); without a kernel it
    behaves exactly like the bitset engine.
    """

    def __init__(
        self,
        network,
        processes,
        link_process,
        *,
        seed: int,
        algorithm_info=None,
        validate_topologies: bool = True,
        observers: Sequence = (),
        skip: bool = False,
        kernel=_AUTO_KERNEL,
        lane: int = 0,
    ) -> None:
        super().__init__(
            network,
            processes,
            link_process,
            seed=seed,
            algorithm_info=algorithm_info,
            validate_topologies=validate_topologies,
            observers=observers,
            skip=skip,
        )
        if kernel is _AUTO_KERNEL:
            kernel = build_bank_kernel([self.processes])
            lane = 0
        self._kernel = kernel
        self._lane = lane
        if kernel is not None:
            # Kernel lanes replace the per-node plan stage with
            # struct-of-arrays state, bypassing the signature-class
            # bookkeeping the skip probe reads — and the kernel
            # protocols are never provably silent anyway (a node that
            # knows anything keeps a nonzero duty cycle). Skipping
            # stays a bitset/generic-lane capability.
            self.skip = False

    # Stage overrides: with a kernel, plans and feedback come from the
    # struct-of-arrays state; everything else (coins, topology,
    # reception, records) is inherited unchanged.
    def _plan_probs(self, r: int) -> np.ndarray:
        if self._kernel is None:
            return super()._plan_probs(r)
        return self._kernel.probabilities(r)[self._lane]

    def _message_for(self, u: int) -> Message:
        if self._kernel is None:
            return super()._message_for(u)
        return self._kernel.message_for(self._lane, u)

    def _apply_feedback(self, r: int, transmitter_mask: int, deliveries) -> None:
        if self._kernel is None:
            super()._apply_feedback(r, transmitter_mask, deliveries)
        elif deliveries:
            # Kernel families promise idle/transmit feedback no-ops
            # (checked by eligibility: exact process types only), so
            # only receivers carry state changes.
            self._kernel.apply_feedback(self._lane, r, deliveries)


# ----------------------------------------------------------------------
# The lockstep bank scheduler
# ----------------------------------------------------------------------
@dataclass
class BankLane:
    """One trial riding the bank: its engine plus its stop condition."""

    engine: BankRadioNetworkEngine
    stop: Optional[StopCondition] = None


def run_bank_batch(
    lanes: Sequence[BankLane], *, max_rounds: int
) -> list[ExecutionResult]:
    """Run a bank of single-trial lanes in lockstep rounds.

    Per-lane results are identical to running each engine's ``run()``
    separately — the batch changes *where* the numpy work happens, not
    what any trial observes:

    * coins: one ``Generator.random(out=row)`` per lane per round (the
      lane's own per-trial stream, same draw count as a serial run),
      then one (active × n) comparison + ``packbits`` for the bank;
    * plans: kernel-backed lanes share one (T, n) probability batch;
    * reception: lanes whose topology hits the bitset matrix cache
      resolve by cached matvec; cache misses (per-round fading masks)
      are folded into one dense batched matvec for the whole bank; only
      networks past ``_DENSE_BATCH_MAX_N`` fall back to the per-lane
      bigint scan.

    Lanes whose stop condition fires retire immediately: they stop
    drawing coins and stop observing rounds, exactly like a serial
    execution that ended.

    When every lane was built with ``skip=True`` the bank fast-forwards
    the spans in which *all* lanes are provably silent: the lockstep
    schedule means a skip is licensed only up to the earliest horizon
    across lanes (``min`` of the per-lane
    :meth:`~repro.core.fastpath.BitsetRadioNetworkEngine._skip_horizon`
    probes), and each lane's coin stream advances round by round so the
    trace — records, history, RNG positions — matches its solo run
    bit-for-bit.
    """
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
    results: list[Optional[ExecutionResult]] = [None] * len(lanes)
    active: list[int] = []
    for i, lane in enumerate(lanes):
        lane.engine._ensure_started()
        if lane.stop is not None and lane.stop():
            results[i] = ExecutionResult(rounds=0, solved=True, solve_round=-1)
        else:
            active.append(i)
    if not lanes:
        return []
    n = lanes[0].engine.network.n
    nbytes = (n + 7) // 8
    modulus = n + 1
    bank_skip = all(lane.engine.skip for lane in lanes)
    coin_buffer = np.empty((len(lanes), n), dtype=np.float64)
    prob_buffer = np.empty((len(lanes), n), dtype=np.float64)
    executed = 0
    while active and executed < max_rounds:
        r = executed
        m = len(active)
        coins = coin_buffer[:m]
        probs = prob_buffer[:m]

        # Stages 1–2, batched: per-lane plans and per-trial coin rows,
        # one comparison + packbits for the whole bank.
        for j, i in enumerate(active):
            engine = lanes[i].engine
            np.copyto(probs[j], engine._plan_probs(r))
            engine._coin_rng.random(out=coins[j])
        transmit = coins < probs
        packed = np.packbits(transmit, axis=1, bitorder="little").tobytes()
        masks = [
            int.from_bytes(packed[j * nbytes : (j + 1) * nbytes], "little")
            for j in range(m)
        ]

        # Stage 3 per lane; stage 4 batched. Lanes whose topology hits
        # the bitset matrix cache (static adversaries, shared graphs)
        # resolve by cached matvec; lanes that miss it (fading
        # adversaries mint fresh mask tuples every round, so the
        # id-keyed cache fills and stays cold) are folded into ONE
        # dense (lanes × n × n) neighbor batch built straight from the
        # masks — one ``unpackbits`` plus one batched matvec for the
        # whole bank instead of per-lane bigint candidate scans.
        topologies = [lanes[i].engine._choose_topology(r) for i in active]
        shared_deliveries: dict[int, list[Delivery]] = {}
        fresh: list[int] = []
        for j, topology in enumerate(topologies):
            if masks[j] == 0:
                shared_deliveries[j] = []  # silent round: nothing to hear
                continue
            engine = lanes[active[j]].engine
            matrix = engine._matrix_for(topology.masks)
            if matrix is not None:
                shared_deliveries[j] = engine._resolve_with_matrix(
                    transmit[j], matrix
                )
            elif n <= _DENSE_BATCH_MAX_N:
                fresh.append(j)
        if fresh:
            if n <= 64:
                # Single-word masks: one C-loop conversion + byte view.
                packed_masks = np.array(
                    [topologies[j].masks for j in fresh], dtype="<u8"
                ).view(np.uint8).reshape(len(fresh), n, 8)
            else:
                packed_masks = np.frombuffer(
                    b"".join(
                        mask.to_bytes(nbytes, "little")
                        for j in fresh
                        for mask in topologies[j].masks
                    ),
                    dtype=np.uint8,
                ).reshape(len(fresh), n, nbytes)
            neighbors = np.unpackbits(
                packed_masks, axis=2, bitorder="little", count=n
            ).astype(np.float64)
            rows = transmit[fresh]
            weighted = rows * lanes[active[fresh[0]]].engine._sender_encoding
            totals = (neighbors @ weighted[:, :, None])[..., 0].astype(np.int64)
            solo = (totals % modulus == 1) & ~rows
            for position, j in enumerate(fresh):
                deliveries: list[Delivery] = []
                receivers = np.nonzero(solo[position])[0]
                if receivers.size:
                    senders = totals[position, receivers] // modulus - 1
                    message_for = lanes[active[j]].engine._message_for
                    for u, sender in zip(receivers.tolist(), senders.tolist()):
                        deliveries.append(
                            Delivery(
                                receiver=u, sender=sender, message=message_for(sender)
                            )
                        )
                shared_deliveries[j] = deliveries

        # Stages 3–6 per lane (topology/deliveries reused when batched).
        expecteds = [math.fsum(probs[j].tolist()) for j in range(m)]
        still_active: list[int] = []
        for j, i in enumerate(active):
            lane = lanes[i]
            record = lane.engine._finish_round(
                r,
                transmit[j],
                masks[j],
                expecteds[j],
                topology=topologies[j],
                deliveries=shared_deliveries.get(j),
            )
            if lane.stop is not None and lane.stop():
                results[i] = ExecutionResult(
                    rounds=r + 1, solved=True, solve_round=record.round_index
                )
            else:
                still_active.append(i)
        active = still_active
        executed += 1

        # Lockstep round skipping: after a round in which EVERY lane
        # was provably silent (fsum of non-negative probabilities is
        # 0.0 iff each term is) and every surviving engine is
        # quiescent, fast-forward all lanes to the earliest per-lane
        # skip horizon. Rounds are emitted lane by lane through the
        # solo `_emit_quiet_round`, so each lane's records and coin
        # stream stay bit-identical to its standalone run.
        if not (
            bank_skip
            and active
            and executed < max_rounds
            and len(active) == m  # a retired lane would desync the probe
            and not any(masks[j] for j in range(m))
            and all(e == 0.0 for e in expecteds)
            and all(lanes[i].engine._quiescent() for i in active)
        ):
            continue
        start = executed  # == r + 1: every lane's next round, lockstep
        limit = start + (max_rounds - executed)
        h = min(lanes[i].engine._skip_horizon(r, limit) for i in active)
        if h <= start:
            continue
        still_active = []
        for i in active:
            lane = lanes[i]
            retired = False
            for quiet_round in range(start, h):
                record = lane.engine._emit_quiet_round(quiet_round)
                if lane.stop is not None and lane.stop():
                    results[i] = ExecutionResult(
                        rounds=quiet_round + 1,
                        solved=True,
                        solve_round=record.round_index,
                    )
                    retired = True
                    break
            if not retired:
                still_active.append(i)
        active = still_active
        executed = h
    for i in active:
        results[i] = ExecutionResult(rounds=executed, solved=False, solve_round=None)
    return results
