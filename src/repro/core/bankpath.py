"""The bank engine: a trial-batched numpy struct-of-arrays kernel.

:class:`BankRadioNetworkEngine` is the third registered engine
(``engine="bank"``). Where the bitset fast path batches *across nodes*
within one trial, the bank batches *across trials*: an entire seed bank
of independent executions advances in lockstep rounds, and the per-round
numpy work — Bernoulli comparisons, transmit-mask packing, and the
dense reception matvec — runs once for the whole bank instead of once
per trial.

Three layers cooperate:

1. **Per-trial lanes.** Each trial still owns a
   :class:`BankRadioNetworkEngine` — a
   :class:`~repro.core.fastpath.BitsetRadioNetworkEngine` subclass, so
   every stage it does not override (topology, reception, feedback
   skipping, records) keeps the proven bitset semantics. A standalone
   ``engine.run()`` therefore works exactly like bitset (that is what
   :func:`~repro.core.engine.create_engine` returns for a single
   trial); the cross-trial wins need the batch entry points below.
2. **Vectorized protocol kernels.** Two families replace the per-node
   Python state machines with struct-of-arrays state:

   * the **multi-message MAC protocols**
     (:class:`~repro.algorithms.multi_message.GklnMultiMessageProcess`,
     :class:`~repro.algorithms.multi_message.BackoffMultiMessageProcess`)
     keep knowledge as a (trials × nodes × words) uint64 bitmap —
     any message count, 64 per word — with append-order message logs,
     ack windows and back-off epochs folded by vectorized index
     arithmetic;
   * the **single-message decay family** (plain decay, permuted decay,
     static local decay, round robin, uniform) keeps (trials × nodes)
     informed/participation state and shares one ``np.ldexp``
     probability ladder (or schedule rung) across every lane per
     round — one scalar probability per lane per round covers the
     whole active set, which also makes the expected-transmitter sum
     exact in O(1).

   The kernels reproduce the reference engine's plans bit-for-bit
   (probabilities are exact powers of two via ``ldexp``; message
   identity is canonical), which ``tests/test_engine_equivalence.py``
   holds to full-trace identity. Algorithms without a kernel simply run
   the lanes' inherited bitset plan stage — still batched at the
   coins/reception layer, never falling back to a slower path.
3. **The lockstep scheduler.** :func:`run_bank_batch` drives all lanes
   round by round: transmission coins are drawn as a (trials × nodes)
   batch — one ``Generator.random(out=row)`` per lane against the same
   per-trial ``("engine", "coins")`` stream the other engines consume,
   so per-trial draw order is untouched — then compared and bit-packed
   in one shot. Lanes whose stop condition fires (or whose per-lane
   ``max_rounds`` cap elapses — caps may differ across lanes) retire
   from the bank: their RNGs stop drawing, exactly like a serial run
   ending. The single-message kernels keep event-driven round skipping
   *on*: provably silent spans fast-forward through
   :meth:`~repro.core.engine.RadioNetworkEngine._emit_quiet_span` when
   every observer on a lane accepts the batched quiet-span hook, and
   degrade to per-round records otherwise.

Scope mirrors the bitset engine: oblivious link processes only.
:func:`~repro.core.engine.create_engine` falls back to the reference
engine (with :class:`~repro.core.errors.EngineFallbackWarning`) for
adaptive adversaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.decay import decay_ladder
from repro.core.engine import ExecutionResult, StopCondition
from repro.core.fastpath import BitsetRadioNetworkEngine
from repro.core.messages import Message
from repro.core.trace import Delivery
from repro.obs.recorder import inc as _obs_inc
from repro.obs.recorder import recorder as _obs_recorder

__all__ = [
    "BankRadioNetworkEngine",
    "BankLane",
    "build_bank_kernel",
    "run_bank_batch",
]

#: Sentinel: "build a single-lane kernel from my own processes".
_AUTO_KERNEL = object()

#: Sentinel round index for per-node state that is not scheduled to
#: change ("uninformed", "never joins"): far beyond any execution while
#: comfortably inside int64 arithmetic.
_NEVER = 1 << 62

#: Ceiling for the scheduler's per-round dense reception batch: when a
#: lane's round topology misses the bitset matrix cache (fading
#: adversaries mint fresh mask tuples every round, so the id-keyed
#: cache fills and stays cold), the scheduler builds the dense neighbor
#: matrices for all such lanes in one ``unpackbits`` and resolves them
#: with one batched matvec. The build is Θ(lanes · n²); past this size
#: the bigint candidate scan (Θ(transmitters + listeners) words) wins.
_DENSE_BATCH_MAX_N = 512


# ----------------------------------------------------------------------
# Vectorized protocol kernels: multi-message MAC family
# ----------------------------------------------------------------------
class _MultiMessageKernelBase:
    """Shared struct-of-arrays state for the multi-message kernels.

    Layout (``T`` trials × ``n`` nodes × ``k`` messages):

    * ``known``  — (T, n, ⌈k/64⌉) uint64 bitmap: bit ``i`` of the row
      set iff the node holds message ``i`` (the ISSUE's trials × nodes
      × bits knowledge map, bit-packed 64 per word — any ``k``).
    * ``order``  — (T, n, k) int64 append-order log of message indices;
      both protocols rotate/queue over their knowledge in append order.
    * ``klen``   — (T, n) int64 length of that log.
    * ``messages[t][i]`` — the canonical :class:`Message` object for
      message ``i`` of trial ``t`` (minted by its source process, so
      deliveries compare equal to the reference engine's).
    """

    #: The MAC protocols are never provably silent (a node that knows
    #: anything keeps a nonzero duty cycle), and the kernels do not
    #: track the class state the skip probe reads — lanes run with
    #: round skipping disabled.
    supports_skip = False

    def __init__(self, banks: Sequence[Sequence]) -> None:
        first = banks[0][0]
        self.trials = len(banks)
        self.n = len(banks[0])
        self.k = first.assignment.k
        self.assignments = [bank[0].assignment for bank in banks]
        shape = (self.trials, self.n)
        words = (self.k + 63) // 64 or 1
        self.known = np.zeros((*shape, words), dtype=np.uint64)
        self.order = np.zeros((*shape, self.k), dtype=np.int64)
        self.klen = np.zeros(shape, dtype=np.int64)
        self.messages: list[list[Optional[Message]]] = [
            [None] * self.k for _ in range(self.trials)
        ]
        # Canonical objects let feedback resolve a delivery's message
        # index by identity instead of payload inspection; the
        # ``messages`` lists pin the objects, so ids stay unique.
        self._index_by_id: dict[int, int] = {}
        self._r = -1
        self._probs: Optional[np.ndarray] = None

    def _ingest_knowledge(self, t: int, u: int, messages: Sequence[Message]) -> None:
        """Seed node (t, u)'s knowledge log from its initial messages."""
        assignment = self.assignments[t]
        for position, message in enumerate(messages):
            index = assignment.index_of(message.payload)
            self.order[t, u, position] = index
            word, bit = divmod(index, 64)
            self.known[t, u, word] |= np.uint64(1 << bit)
            # Initial messages exist only at their sources, so this is
            # the canonical (source-minted) object for the index.
            self.messages[t][index] = message
            self._index_by_id[id(message)] = index
        self.klen[t, u] = len(messages)

    def _learn(self, t: int, u: int, index: int) -> bool:
        """Append message ``index`` to (t, u)'s log; False if known."""
        word, bit = divmod(index, 64)
        flag = np.uint64(1 << bit)
        if self.known[t, u, word] & flag:
            return False
        self.known[t, u, word] |= flag
        length = int(self.klen[t, u])
        self.order[t, u, length] = index
        self.klen[t, u] = length + 1
        return True

    def _delivery_index(self, t: int, delivery: Delivery) -> Optional[int]:
        """The message index a delivery carries, or None for foreign ones.

        Fast path: kernel lanes mint every transmitted message through
        :meth:`message_for`, so deliveries carry the canonical objects
        and resolve by identity. The payload-inspection fallback keeps
        parity for any non-canonical (but valid) message object.
        """
        message = delivery.message
        index = self._index_by_id.get(id(message))
        if index is not None:
            return index
        if not message.is_data():
            return None
        return self.assignments[t].index_of(message.payload)


class _GklnBankKernel(_MultiMessageKernelBase):
    """All trials of a GKLN queued-discipline bank, as arrays.

    Mirrors :class:`~repro.algorithms.multi_message.GklnMultiMessageProcess`
    exactly: the pending FIFO is the suffix ``order[qhead:klen]`` of the
    append-order log (relay-once means every learned message is queued
    exactly once, in learn order), ``head_start`` is the round the
    head's ack window opened (−1 = idle), and elapsed windows are folded
    by one vectorized division instead of a per-node ``while`` loop.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.multi_message import GklnMultiMessageProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not GklnMultiMessageProcess:
                return False
            for process in bank:
                if type(process) is not GklnMultiMessageProcess:
                    return False
                if (
                    process.assignment is not first.assignment
                    or process.window != first.window
                    or process.rungs != first.rungs
                    or process.persist_probability != first.persist_probability
                ):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        lane_col = lambda attr: np.array(  # noqa: E731 - tiny local helper
            [[getattr(bank[0], attr)] for bank in banks]
        )
        self.window = lane_col("window").astype(np.int64)
        self.rungs = lane_col("rungs").astype(np.int64)
        self.persist = lane_col("persist_probability").astype(np.float64)
        self.qhead = np.zeros((self.trials, self.n), dtype=np.int64)
        self.head_start = np.full((self.trials, self.n), -1, dtype=np.int64)
        for t, bank in enumerate(banks):
            for u, process in enumerate(bank):
                self._ingest_knowledge(t, u, list(process._all_known))
                self.qhead[t, u] = self.klen[t, u] - len(process._queue)
                if process._head_start is not None:
                    self.head_start[t, u] = process._head_start

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        head_start, qhead, klen = self.head_start, self.qhead, self.klen
        # Fold elapsed ack windows: every full window pops one head.
        started = head_start >= 0
        pops = np.where(
            started,
            np.minimum((r - head_start) // self.window, klen - qhead),
            0,
        )
        np.maximum(pops, 0, out=pops)
        qhead += pops
        head_start += pops * self.window
        head_start[started & (qhead >= klen)] = -1
        serving = head_start >= 0
        # Serving nodes climb the decay ladder (exact powers of two, so
        # ldexp matches the process's ``2.0 ** (-slot % rungs - 1)``
        # bit-for-bit); idle nodes with knowledge persist at the
        # background duty cycle; everyone else is silent.
        ladder = decay_ladder(r - head_start, self.rungs)
        background = np.where((klen > 0) & (self.persist > 0.0), self.persist, 0.0)
        self._probs = np.where(serving, ladder, background)
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """The message lane ``t``'s node ``u`` transmitted this round."""
        if self.head_start[t, u] >= 0:
            index = self.order[t, u, self.qhead[t, u]]
        else:
            index = self.order[t, u, (self._r + u) % int(self.klen[t, u])]
        return self.messages[t][int(index)]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """Sparse reception feedback (idle/transmit feedback are no-ops)."""
        for delivery in deliveries:
            index = self._delivery_index(t, delivery)
            if index is None:
                continue
            u = delivery.receiver
            if self._learn(t, u, index) and self.head_start[t, u] < 0:
                # The queue was idle: the window opens next round.
                self.head_start[t, u] = r + 1


class _BackoffBankKernel(_MultiMessageKernelBase):
    """All trials of a simple back-off bank, as arrays.

    Mirrors :class:`~repro.algorithms.multi_message.BackoffMultiMessageProcess`:
    nodes holding messages transmit at the regime's rate (fixed, or
    halving per quiet ``backoff_window`` — again exact powers of two via
    ``ldexp``) and rotate through their knowledge log offset by node id.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.multi_message import BackoffMultiMessageProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not BackoffMultiMessageProcess:
                return False
            for process in bank:
                if type(process) is not BackoffMultiMessageProcess:
                    return False
                if (
                    process.assignment is not first.assignment
                    or process.regime != first.regime
                    or process.backoff_window != first.backoff_window
                    or process.base_probability != first.base_probability
                    or process.min_probability != first.min_probability
                ):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.exponential = np.array(
            [[bank[0].regime == "exponential"] for bank in banks]
        )
        self.backoff_window = np.array(
            [[bank[0].backoff_window] for bank in banks], dtype=np.int64
        )
        self.base = np.array(
            [[bank[0].base_probability] for bank in banks], dtype=np.float64
        )
        self.floor = np.array(
            [[bank[0].min_probability] for bank in banks], dtype=np.float64
        )
        self.last_new = np.zeros((self.trials, self.n), dtype=np.int64)
        for t, bank in enumerate(banks):
            for u, process in enumerate(bank):
                self._ingest_knowledge(t, u, list(process._known))

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        epoch = np.maximum(0, r - self.last_new) // self.backoff_window
        backed = np.maximum(self.floor, self.base * np.ldexp(1.0, -epoch))
        rate = np.where(self.exponential, backed, self.base)
        self._probs = np.where(self.klen > 0, rate, 0.0)
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """The message lane ``t``'s node ``u`` transmitted this round."""
        index = self.order[t, u, (self._r + u) % int(self.klen[t, u])]
        return self.messages[t][int(index)]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """Sparse reception feedback (idle/transmit feedback are no-ops)."""
        for delivery in deliveries:
            index = self._delivery_index(t, delivery)
            if index is None:
                continue
            if self._learn(t, delivery.receiver, index):
                # New knowledge resets the back-off clock from next round.
                self.last_new[t, delivery.receiver] = r + 1


# ----------------------------------------------------------------------
# Vectorized protocol kernels: single-message decay family
# ----------------------------------------------------------------------
class _SingleMessageKernelBase:
    """Shared scaffolding for the single-message decay-family kernels.

    These protocols share one structural property the kernels exploit:
    in any given round, every transmitting node of a lane declares the
    *same* probability (a ladder rung, a schedule rung, a constant
    rate, or the certain 1.0 of a slot/announcement). Each kernel's
    :meth:`probabilities` therefore fills, per lane:

    * ``_counts[t]`` — how many nodes hold the live probability;
    * ``_rungs[t]``  — that probability.

    which makes :meth:`expected_exact` O(1): ``count × p`` is the
    *correctly rounded* value of the real sum of ``count`` copies of
    ``p`` (``count`` is exactly representable, and ``fsum`` rounds the
    same real number once), so it is bit-identical to the reference
    engine's fsum — the licence round skipping needs.

    State changes ride deliveries only (eligibility pins the exact
    process types, whose idle/transmit feedback are no-ops), so the
    kernels also answer :meth:`next_state_change` for the skip probe:
    ``supports_skip`` stays True and bank lanes keep event-driven
    skipping, compounding with the struct-of-arrays plan stage.
    """

    supports_skip = True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        self.trials = len(banks)
        self.n = len(banks[0])
        self._r = -1
        self._probs: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self._rungs: Optional[np.ndarray] = None

    def expected_exact(self, t: int, r: int) -> float:
        """The round's expected transmitter count, bit-identical to fsum."""
        if r != self._r:
            self.probabilities(r)
        count = int(self._counts[t])
        if not count:
            return 0.0
        return count * float(self._rungs[t])

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """Reception feedback; the static schedules have none."""

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        """First round > ``r`` on which lane ``t`` could transmit.

        The licence behind *active-round* fast-forwarding: every round
        in ``(r, result)`` has zero transmission probability for every
        node of the lane, assuming no deliveries land in between (which
        is vacuous — all-silent rounds deliver nothing). ``None`` means
        the lane never transmits again without a delivery. Unlike
        :meth:`next_state_change` — whose contract is "plans unchanged
        since round r", meaningful only after an executed silent round
        — this holds regardless of what round ``r`` itself did, so the
        scheduler may skip straight from a slot round to the next one.
        The default promises nothing beyond the next round, disabling
        the fast-forward for kernels that don't override it.
        """
        return r + 1

    def _announcement_round(self, source: np.ndarray) -> np.ndarray:
        """Round-0 probabilities: the certain source announcement."""
        probs = np.zeros((self.trials, self.n))
        probs[np.arange(self.trials), source] = 1.0
        self._counts = np.ones(self.trials, dtype=np.int64)
        self._rungs = np.ones(self.trials)
        return probs


class _PlainDecayBankKernel(_SingleMessageKernelBase):
    """All trials of a BGI plain-decay bank, as arrays.

    Mirrors :class:`~repro.algorithms.decay.PlainDecayGlobalProcess`:
    ``start[t, u]`` is the node's ``participate_from`` (every join lies
    on a phase boundary — ``start ≡ 1 mod L`` — so one ladder rung
    ``2^{-((r-1) mod L)-1}`` serves the whole informed set of a lane),
    ``_NEVER`` marks uninformed nodes, and adoption computes the next
    boundary exactly like ``on_feedback``.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.decay import PlainDecayGlobalProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not PlainDecayGlobalProcess:
                return False
            for u, process in enumerate(bank):
                if type(process) is not PlainDecayGlobalProcess:
                    return False
                if (
                    process.source != first.source
                    or process.phase_length != first.phase_length
                    # A finite active window re-ties the plan to each
                    # node's join round; the generic lanes handle it.
                    or process.active_phases is not None
                ):
                    return False
                if (process.message is not None) != (u == first.source):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.phase = np.array(
            [[bank[0].phase_length] for bank in banks], dtype=np.int64
        )
        self.source = np.array([bank[0].source for bank in banks], dtype=np.int64)
        self.start = np.full((self.trials, self.n), _NEVER, dtype=np.int64)
        self.message: list[Message] = []
        for t, bank in enumerate(banks):
            for u, process in enumerate(bank):
                if process.participate_from is not None:
                    self.start[t, u] = process.participate_from
            self.message.append(bank[int(self.source[t])].message)

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        if r == 0:
            self._probs = self._announcement_round(self.source)
            return self._probs
        active = self.start <= r
        rung = decay_ladder(r - 1, self.phase)  # (T, 1): shared rung
        self._probs = np.where(active, rung, 0.0)
        self._counts = active.sum(axis=1)
        self._rungs = rung[:, 0]
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """Every transmitter relays the trial's canonical message."""
        return self.message[t]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """First data reception adopts; join at the next phase boundary."""
        start = self.start
        phase = int(self.phase[t, 0])
        for delivery in deliveries:
            u = delivery.receiver
            if start[t, u] != _NEVER or not delivery.message.is_data():
                continue
            # Same arithmetic as on_feedback: the next round r+1, pushed
            # to the boundary of the global phase clock (epoch offset 1).
            remainder = r % phase
            wait = 0 if remainder == 0 else phase - remainder
            start[t, u] = r + 1 + wait

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        if r == 0:
            return 1  # the announcement gives way to the ladder
        start = self.start[t]
        informed = start[start != _NEVER]
        if informed.size == 0:
            return None  # adoption arrives via feedback
        if bool((informed <= r).any()):
            return r + 1  # active ladder: a new rung every round
        return int(informed.min())  # earliest pending phase boundary

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        start = self.start[t]
        informed = start[start != _NEVER]
        if informed.size == 0:
            return None  # only a delivery can wake the lane
        # An already-active participant rides the ladder every round;
        # otherwise the earliest pending phase boundary is next.
        return max(r + 1, int(informed.min()))


class _PermutedDecayBankKernel(_SingleMessageKernelBase):
    """All trials of a Section-4.1 permuted-decay bank, as arrays.

    Mirrors :class:`~repro.algorithms.global_broadcast.ObliviousGlobalBroadcastProcess`:
    ``join_epoch[t, u]`` is the first epoch node ``u`` participates in
    (``_NEVER`` = uninformed; the source never joins — its role ends
    with the announcement). Lemma 4.2's sharing structure does the rest:
    all active nodes of a lane read the same chunk of ``S`` for the same
    epoch, so the round's rung is one schedule lookup per lane.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.global_broadcast import ObliviousGlobalBroadcastProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not ObliviousGlobalBroadcastProcess:
                return False
            for u, process in enumerate(bank):
                if type(process) is not ObliviousGlobalBroadcastProcess:
                    return False
                if (
                    process.source != first.source
                    or process.schedule != first.schedule
                    or process.num_chunks != first.num_chunks
                    # A finite epoch budget re-ties the plan to each
                    # node's join epoch; the generic lanes handle it.
                    or process.epochs_per_node is not None
                ):
                    return False
                if (process.message is not None) != (u == first.source):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.source = np.array([bank[0].source for bank in banks], dtype=np.int64)
        self.schedule = [bank[0].schedule for bank in banks]
        self.num_chunks = [bank[0].num_chunks for bank in banks]
        self.epoch_len = [bank[0].epoch_length for bank in banks]
        self.message = [bank[int(self.source[t])].message for t, bank in enumerate(banks)]
        self.shared = [message.shared_bits for message in self.message]
        self.join_epoch = np.full((self.trials, self.n), _NEVER, dtype=np.int64)

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        if r == 0:
            self._probs = self._announcement_round(self.source)
            return self._probs
        probs = np.empty((self.trials, self.n))
        counts = np.empty(self.trials, dtype=np.int64)
        rungs = np.empty(self.trials)
        for t in range(self.trials):
            epoch, round_in_epoch = divmod(r, self.epoch_len[t])
            schedule = self.schedule[t]
            chunk_offset = (epoch % self.num_chunks[t]) * schedule.bits_per_call
            # One schedule lookup serves the lane's whole active set —
            # the same call plan() makes, so the float is identical.
            p = schedule.probability(self.shared[t], chunk_offset, round_in_epoch)
            active = self.join_epoch[t] <= epoch
            np.multiply(active, p, out=probs[t])
            counts[t] = active.sum()
            rungs[t] = p
        self._probs = probs
        self._counts = counts
        self._rungs = rungs
        return probs

    def message_for(self, t: int, u: int) -> Message:
        """Every transmitter relays the trial's canonical ⟨m', S⟩."""
        return self.message[t]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """First ⟨m', S⟩ reception adopts; join at the next epoch boundary."""
        join = self.join_epoch
        source = int(self.source[t])
        epoch_len = self.epoch_len[t]
        for delivery in deliveries:
            u = delivery.receiver
            if u == source or join[t, u] != _NEVER:
                continue
            message = delivery.message
            if not message.is_data() or message.shared_bits is None:
                continue
            # First epoch boundary strictly after this round.
            join[t, u] = (r + 1 + epoch_len - 1) // epoch_len

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        if r == 0:
            return 1  # the announcement; then the source falls silent
        joins = self.join_epoch[t]
        joined = joins[joins != _NEVER]
        if joined.size == 0:
            return None  # adoption arrives via feedback
        epoch_len = self.epoch_len[t]
        if bool((joined * epoch_len <= r).any()):
            return r + 1  # active permuted decay: new rung each round
        return int(joined.min()) * epoch_len  # earliest pending epoch

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        joins = self.join_epoch[t]
        joined = joins[joins != _NEVER]
        if joined.size == 0:
            # The source's role ends with the round-0 announcement;
            # only a delivery can create a relay.
            return None
        return max(r + 1, int(joined.min()) * self.epoch_len[t])


class _StaticDecayBankKernel(_SingleMessageKernelBase):
    """All trials of an [8]-style static local decay bank, as arrays.

    Mirrors :class:`~repro.algorithms.local_static.StaticLocalDecayProcess`:
    broadcasters ride the public ladder ``2^{-(r mod L)-1}`` from round
    0 forever; there is no feedback at all, so the whole kernel is one
    masked ladder broadcast per round.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.local_static import StaticLocalDecayProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not StaticLocalDecayProcess:
                return False
            for process in bank:
                if type(process) is not StaticLocalDecayProcess:
                    return False
                if process.phase_length != first.phase_length:
                    return False
                if process.is_broadcaster != (process.message is not None):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.phase = np.array(
            [[bank[0].phase_length] for bank in banks], dtype=np.int64
        )
        self.broadcaster = np.array(
            [[process.is_broadcaster for process in bank] for bank in banks]
        )
        self.messages = [[process.message for process in bank] for bank in banks]
        self._bcount = self.broadcaster.sum(axis=1)

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        rung = decay_ladder(r, self.phase)  # (T, 1): the public ladder
        self._probs = np.where(self.broadcaster, rung, 0.0)
        self._counts = self._bcount
        self._rungs = rung[:, 0]
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """Broadcasters carry per-node messages (origin = own id)."""
        return self.messages[t][u]

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        if not int(self._bcount[t]):
            return None  # listeners listen forever
        if int(self.phase[t, 0]) == 1:
            return None  # degenerate ladder: constant probability 1/2
        return r + 1  # a new ladder rung every round

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        # Broadcasters ride the public ladder every round, forever.
        return r + 1 if int(self._bcount[t]) else None


class _RoundRobinLocalBankKernel(_SingleMessageKernelBase):
    """All trials of a footnote-4 round-robin local bank, as arrays.

    Mirrors :class:`~repro.algorithms.round_robin.RoundRobinLocalProcess`:
    broadcaster ``u`` transmits (certainly) iff ``r ≡ slots[u] (mod n)``;
    roles and slots never change, so the plan is one equality compare.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.round_robin import RoundRobinLocalProcess

        for bank in banks:
            for process in bank:
                if type(process) is not RoundRobinLocalProcess:
                    return False
                if process.is_broadcaster != (process.message is not None):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.slots = np.array(
            [[process.slot for process in bank] for bank in banks], dtype=np.int64
        )
        self.role = np.array(
            [[process.is_broadcaster for process in bank] for bank in banks]
        )
        self.messages = [[process.message for process in bank] for bank in banks]

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        certain = self.role & (self.slots == r % self.n)
        self._probs = certain.astype(np.float64)
        self._counts = certain.sum(axis=1)
        self._rungs = np.ones(self.trials)
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """Broadcasters carry per-node messages (origin = own id)."""
        return self.messages[t][u]

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        return _next_slot_round(self.slots[t][self.role[t]], r, self.n)

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        return _next_slot_round_after(self.slots[t][self.role[t]], r, self.n)


class _RoundRobinGlobalBankKernel(_SingleMessageKernelBase):
    """All trials of a footnote-5 round-robin global bank, as arrays.

    Mirrors :class:`~repro.algorithms.round_robin.RoundRobinGlobalProcess`:
    informed nodes transmit (certainly) in their slot and adopt the
    message on first data reception.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.round_robin import RoundRobinGlobalProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not RoundRobinGlobalProcess:
                return False
            for u, process in enumerate(bank):
                if type(process) is not RoundRobinGlobalProcess:
                    return False
                if process.source != first.source:
                    return False
                if (process.message is not None) != (u == first.source):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.slots = np.array(
            [[process.slot for process in bank] for bank in banks], dtype=np.int64
        )
        self.source = np.array([bank[0].source for bank in banks], dtype=np.int64)
        self.message = [bank[int(self.source[t])].message for t, bank in enumerate(banks)]
        self.informed = np.zeros((self.trials, self.n), dtype=bool)
        self.informed[np.arange(self.trials), self.source] = True

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        certain = self.informed & (self.slots == r % self.n)
        self._probs = certain.astype(np.float64)
        self._counts = certain.sum(axis=1)
        self._rungs = np.ones(self.trials)
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """Every transmitter relays the trial's canonical message."""
        return self.message[t]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """First data reception adopts the message (slot is unchanged)."""
        informed = self.informed
        for delivery in deliveries:
            u = delivery.receiver
            if not informed[t, u] and delivery.message.is_data():
                informed[t, u] = True

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        # Uninformed nodes stay silent through their slot, so only the
        # informed set's slots can change the lane's behavior.
        return _next_slot_round(self.slots[t][self.informed[t]], r, self.n)

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        return _next_slot_round_after(self.slots[t][self.informed[t]], r, self.n)


def _next_slot_round(slots: np.ndarray, r: int, n: int) -> Optional[int]:
    """First round > ``r`` on which any of ``slots`` matches the clock."""
    if n == 1:
        return None  # every round is the slot round
    if slots.size == 0:
        return None
    step = int(((slots - r) % n).min())
    return r + (step if step else 1)


def _next_slot_round_after(slots: np.ndarray, r: int, n: int) -> Optional[int]:
    """First round *strictly* after ``r`` on which any of ``slots`` fires.

    Unlike :func:`_next_slot_round` (whose step-0 case conservatively
    answers ``r + 1`` because it is only consulted from silent rounds),
    this maps a slot firing at ``r`` itself a full cycle forward — the
    active-round fast-forward asks exactly "when does the *next* slot
    land?" while standing on one.
    """
    if slots.size == 0:
        return None
    if n == 1:
        return r + 1
    return r + 1 + int(((slots - (r + 1)) % n).min())


class _UniformLocalBankKernel(_SingleMessageKernelBase):
    """All trials of a constant-rate local bank, as arrays.

    Mirrors :class:`~repro.algorithms.uniform.UniformLocalProcess`:
    broadcasters transmit at the fixed rate forever; no feedback.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.uniform import UniformLocalProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not UniformLocalProcess:
                return False
            for process in bank:
                if type(process) is not UniformLocalProcess:
                    return False
                if process.probability != first.probability:
                    return False
                if process.is_broadcaster != (process.message is not None):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.rate = np.array(
            [[bank[0].probability] for bank in banks], dtype=np.float64
        )
        self.broadcaster = np.array(
            [[process.is_broadcaster for process in bank] for bank in banks]
        )
        self.messages = [[process.message for process in bank] for bank in banks]
        self._bcount = self.broadcaster.sum(axis=1)

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        self._probs = np.where(self.broadcaster, self.rate, 0.0)
        self._counts = self._bcount
        self._rungs = self.rate[:, 0]
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """Broadcasters carry per-node messages (origin = own id)."""
        return self.messages[t][u]

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        return None  # constant rate forever, in both roles

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        if int(self._bcount[t]) and float(self.rate[t, 0]) > 0.0:
            return r + 1  # a live rate is a coin flip every round
        return None


class _UniformGlobalBankKernel(_SingleMessageKernelBase):
    """All trials of a constant-rate global bank, as arrays.

    Mirrors :class:`~repro.algorithms.uniform.UniformGlobalProcess`:
    the source announces in round 0; informed nodes then relay at the
    fixed rate, adopting on first data reception.
    """

    @classmethod
    def eligible(cls, banks: Sequence[Sequence]) -> bool:
        from repro.algorithms.uniform import UniformGlobalProcess

        for bank in banks:
            first = bank[0]
            if type(first) is not UniformGlobalProcess:
                return False
            for u, process in enumerate(bank):
                if type(process) is not UniformGlobalProcess:
                    return False
                if (
                    process.source != first.source
                    or process.probability != first.probability
                ):
                    return False
                if (process.message is not None) != (u == first.source):
                    return False
        return True

    def __init__(self, banks: Sequence[Sequence]) -> None:
        super().__init__(banks)
        self.rate = np.array(
            [[bank[0].probability] for bank in banks], dtype=np.float64
        )
        self.source = np.array([bank[0].source for bank in banks], dtype=np.int64)
        self.message = [bank[int(self.source[t])].message for t, bank in enumerate(banks)]
        self.informed = np.zeros((self.trials, self.n), dtype=bool)
        self.informed[np.arange(self.trials), self.source] = True

    def probabilities(self, r: int) -> np.ndarray:
        """(T, n) transmission probabilities for round ``r`` (cached)."""
        if r == self._r:
            return self._probs
        self._r = r
        if r == 0:
            self._probs = self._announcement_round(self.source)
            return self._probs
        self._probs = np.where(self.informed, self.rate, 0.0)
        self._counts = self.informed.sum(axis=1)
        self._rungs = self.rate[:, 0]
        return self._probs

    def message_for(self, t: int, u: int) -> Message:
        """Every transmitter relays the trial's canonical message."""
        return self.message[t]

    def apply_feedback(self, t: int, r: int, deliveries: Sequence[Delivery]) -> None:
        """First data reception adopts the message."""
        informed = self.informed
        for delivery in deliveries:
            u = delivery.receiver
            if not informed[t, u] and delivery.message.is_data():
                informed[t, u] = True

    def next_state_change(self, t: int, r: int) -> Optional[int]:
        if r == 0:
            return 1  # the announcement gives way to the constant rate
        return None  # constant rate (or silence) until feedback intervenes

    def next_active_round(self, t: int, r: int) -> Optional[int]:
        if r == 0 or float(self.rate[t, 0]) > 0.0:
            # The round-1 case is conservative for a zero rate, but a
            # zero-rate global relay is a degenerate config not worth a
            # special case here.
            return r + 1
        return None


_KERNELS = (
    _GklnBankKernel,
    _BackoffBankKernel,
    _PlainDecayBankKernel,
    _PermutedDecayBankKernel,
    _StaticDecayBankKernel,
    _RoundRobinLocalBankKernel,
    _RoundRobinGlobalBankKernel,
    _UniformLocalBankKernel,
    _UniformGlobalBankKernel,
)


def build_bank_kernel(banks: Sequence[Sequence]):
    """A vectorized protocol kernel for these process banks, or ``None``.

    ``banks[t]`` is trial ``t``'s per-node process list. A kernel is
    built only when *every* process of every lane belongs to the same
    supported protocol family with compatible parameters; anything else
    returns ``None`` and the lanes run their inherited bitset plan
    stage (still coin/reception-batched by the scheduler — this is a
    capability probe, not a fallback to a slower engine).
    """
    if not banks or not banks[0]:
        return None
    if any(len(bank) != len(banks[0]) for bank in banks):
        return None
    for kernel_cls in _KERNELS:
        if kernel_cls.eligible(banks):
            _obs_inc("bank.kernel.hit")
            return kernel_cls(banks)
    # Not a slower path (the lanes stay coin/reception-batched), but a
    # measurable one: per-trial plan stages instead of one kernel.
    _obs_inc("bank.kernel.fallback")
    return None


# ----------------------------------------------------------------------
# Per-trial lane engine
# ----------------------------------------------------------------------
class BankRadioNetworkEngine(BitsetRadioNetworkEngine):
    """One lane of a trial bank (also a standalone single-trial engine).

    Construction signature matches the other engines, plus the private
    ``kernel``/``lane`` pair the batch runner uses to share one
    struct-of-arrays kernel across lanes. Built standalone (via
    :func:`~repro.core.engine.create_engine`), the engine probes its
    own processes for a kernel (a bank of one); without a kernel it
    behaves exactly like the bitset engine.
    """

    engine_name = "bank"

    def __init__(
        self,
        network,
        processes,
        link_process,
        *,
        seed: int,
        algorithm_info=None,
        validate_topologies: bool = True,
        observers: Sequence = (),
        skip: bool = False,
        kernel=_AUTO_KERNEL,
        lane: int = 0,
    ) -> None:
        super().__init__(
            network,
            processes,
            link_process,
            seed=seed,
            algorithm_info=algorithm_info,
            validate_topologies=validate_topologies,
            observers=observers,
            skip=skip,
        )
        if kernel is _AUTO_KERNEL:
            kernel = build_bank_kernel([self.processes])
            lane = 0
        self._kernel = kernel
        self._lane = lane
        if kernel is not None and not kernel.supports_skip:
            # The multi-message kernels replace the per-node plan stage
            # with struct-of-arrays state, bypassing the signature-class
            # bookkeeping the skip probe reads — and those protocols are
            # never provably silent anyway (a node that knows anything
            # keeps a nonzero duty cycle). The single-message kernels
            # answer the probe themselves and keep skipping on.
            self.skip = False

    # Stage overrides: with a kernel, plans and feedback come from the
    # struct-of-arrays state; everything else (coins, topology,
    # reception, records) is inherited unchanged.
    def _plan_probs(self, r: int) -> np.ndarray:
        if self._kernel is None:
            return super()._plan_probs(r)
        return self._kernel.probabilities(r)[self._lane]

    def _message_for(self, u: int) -> Message:
        if self._kernel is None:
            return super()._message_for(u)
        return self._kernel.message_for(self._lane, u)

    def _apply_feedback(self, r: int, transmitter_mask: int, deliveries) -> None:
        if self._kernel is None:
            super()._apply_feedback(r, transmitter_mask, deliveries)
        elif deliveries:
            # Kernel families promise idle/transmit feedback no-ops
            # (checked by eligibility: exact process types only), so
            # only receivers carry state changes.
            self._kernel.apply_feedback(self._lane, r, deliveries)

    # Skip-probe overrides: a skip-capable kernel answers from its
    # struct-of-arrays state instead of the signature-class bookkeeping
    # (which kernel lanes never maintain).
    def _expected_exact(self, probs: np.ndarray) -> float:
        kernel = self._kernel
        if kernel is None:
            return super()._expected_exact(probs)
        if kernel.supports_skip:
            return kernel.expected_exact(self._lane, kernel._r)
        return math.fsum(probs.tolist())

    def _quiescent(self) -> bool:
        if self._kernel is None:
            return super()._quiescent()
        # Eligibility pinned process types whose idle/transmit feedback
        # are no-ops and whose state changes ride deliveries only — an
        # all-silent round cannot change kernel state.
        return self._kernel.supports_skip

    def _skip_horizon(self, r: int, limit: int) -> int:
        if self._kernel is None:
            return super()._skip_horizon(r, limit)
        h = limit
        boundary = self.link_process.next_boundary(r)
        if boundary is not None and boundary < h:
            h = boundary
        nxt = self._kernel.next_state_change(self._lane, r)
        if nxt is not None and nxt < h:
            h = nxt
        return max(h, r + 1)

    def _silent_horizon(self, r: int, limit: int) -> Optional[int]:
        """Skip licence from an *active* round ``r``, or ``None``.

        Only a skip-capable kernel can prove the coming span silent
        without executing any of it — its schedule lives in
        struct-of-arrays state (slot gaps, pending phase boundaries),
        whereas the generic signature bookkeeping infers silence from
        an executed silent round and so offers no licence here. Clamped
        like :meth:`_skip_horizon`: the adversary's purity boundary
        gates eliding its ``choose_topology`` calls, the cap gates the
        span.
        """
        kernel = self._kernel
        if kernel is None or not kernel.supports_skip or not self.skip:
            return None
        nxt = kernel.next_active_round(self._lane, r)
        h = limit if nxt is None else min(nxt, limit)
        boundary = self.link_process.next_boundary(r)
        if boundary is not None and boundary < h:
            h = boundary
        return max(h, r + 1)


# ----------------------------------------------------------------------
# The lockstep bank scheduler
# ----------------------------------------------------------------------
@dataclass
class BankLane:
    """One trial riding the bank: engine, stop condition, round cap.

    ``max_rounds`` (``None`` = the batch-wide cap) lets trials with
    heterogeneous round budgets share one bank: a lane retires at its
    own cap while the rest keep running.
    """

    engine: BankRadioNetworkEngine
    stop: Optional[StopCondition] = None
    max_rounds: Optional[int] = None


def run_bank_batch(
    lanes: Sequence[BankLane], *, max_rounds: int
) -> list[ExecutionResult]:
    """Run a bank of single-trial lanes in lockstep rounds.

    Per-lane results are identical to running each engine's ``run()``
    separately — the batch changes *where* the numpy work happens, not
    what any trial observes:

    * coins: one ``Generator.random(out=row)`` per lane per round (the
      lane's own per-trial stream, same draw count as a serial run),
      then one (active × n) comparison + ``packbits`` for the bank;
    * plans: kernel-backed lanes share one (T, n) probability batch,
      and skip-capable kernels answer the expected-transmitter sum in
      O(1) (bit-identical to fsum) instead of an O(n) reduction;
    * reception: lanes whose topology hits the bitset matrix cache
      resolve by cached matvec; cache misses (per-round fading masks)
      are folded into one dense batched matvec for the whole bank; only
      networks past ``_DENSE_BATCH_MAX_N`` fall back to the per-lane
      scan over the adversary's published packed mask rows.

    Lanes whose stop condition fires — or whose per-lane ``max_rounds``
    cap elapses — retire immediately: they stop drawing coins and stop
    observing rounds, exactly like a serial execution that ended, while
    the surviving lanes keep the lockstep going.

    When every lane was built with ``skip=True`` the bank fast-forwards
    the spans in which *all surviving* lanes are provably silent: the
    lockstep schedule means a skip is licensed only up to the earliest
    horizon across lanes (``min`` of the per-lane
    :meth:`~repro.core.fastpath.BitsetRadioNetworkEngine._skip_horizon`
    probes, each clamped to its own cap). A lane whose observers all
    accept the batched quiet-span hook emits the span through one
    :meth:`~repro.core.engine.RadioNetworkEngine._emit_quiet_span`
    (one RNG jump-ahead, one observer call); any other lane emits round
    by round through the solo ``_emit_quiet_round``, so its records and
    coin stream stay bit-identical to its standalone run.
    """
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
    results: list[Optional[ExecutionResult]] = [None] * len(lanes)
    active: list[int] = []
    caps: list[int] = []
    for i, lane in enumerate(lanes):
        lane.engine._ensure_started()
        caps.append(
            max_rounds if lane.max_rounds is None else min(lane.max_rounds, max_rounds)
        )
        if lane.stop is not None and lane.stop():
            results[i] = ExecutionResult(rounds=0, solved=True, solve_round=-1)
        else:
            active.append(i)
    if not lanes:
        return []
    # Tracing: each lane accumulates its own phase spans/counters and
    # emits its own trial record on retirement, exactly as a standalone
    # run() would. Batched stages (packbits, the dense reception batch)
    # are timed once and credited evenly across the lanes they served.
    rec = _obs_recorder()
    traced = rec is not None
    if traced:
        for lane in lanes:
            lane.engine._trace_begin(rec)

    def _credit(phase: str, ns: int, members: Sequence[int]) -> None:
        share = ns // len(members)
        for i in members:
            lanes[i].engine._phase_ns[phase] += share
    n = lanes[0].engine.network.n
    nbytes = (n + 7) // 8
    modulus = n + 1
    bank_skip = all(lane.engine.skip for lane in lanes)
    # Batched quiet-span emission is engaged per lane, and only when
    # every observer on that lane accepts the span hook; lanes carrying
    # a per-round consumer (e.g. a TraceCollector) keep materializing
    # each quiet round's record.
    span_ok = [
        all(
            callable(getattr(observer, "on_round_batch", None))
            for observer in lane.engine.observers
        )
        for lane in lanes
    ]
    coin_buffer = np.empty((len(lanes), n), dtype=np.float64)
    prob_buffer = np.empty((len(lanes), n), dtype=np.float64)
    executed = 0
    while active:
        # Retire lanes whose own round budget has elapsed (the lockstep
        # clock equals every active lane's rounds-run count, so a lane
        # at its cap has run exactly caps[i] rounds).
        if any(caps[i] <= executed for i in active):
            for i in active:
                if caps[i] <= executed:
                    results[i] = ExecutionResult(
                        rounds=caps[i], solved=False, solve_round=None
                    )
            active = [i for i in active if caps[i] > executed]
            if not active:
                break
        r = executed
        m = len(active)
        coins = coin_buffer[:m]
        probs = prob_buffer[:m]

        # Stages 1–2, batched: per-lane plans and per-trial coin rows,
        # one comparison + packbits for the whole bank.
        if traced:
            for j, i in enumerate(active):
                engine = lanes[i].engine
                ta = perf_counter_ns()
                np.copyto(probs[j], engine._plan_probs(r))
                tb = perf_counter_ns()
                engine._coin_rng.random(out=coins[j])
                tc = perf_counter_ns()
                ph = engine._phase_ns
                ph["plan"] += tb - ta
                ph["coins"] += tc - tb
            t0 = perf_counter_ns()
        else:
            for j, i in enumerate(active):
                engine = lanes[i].engine
                np.copyto(probs[j], engine._plan_probs(r))
                engine._coin_rng.random(out=coins[j])
        transmit = coins < probs
        packed = np.packbits(transmit, axis=1, bitorder="little").tobytes()
        masks = [
            int.from_bytes(packed[j * nbytes : (j + 1) * nbytes], "little")
            for j in range(m)
        ]
        if traced:
            _credit("coins", perf_counter_ns() - t0, active)

        # Stage 3 per lane; stage 4 batched. Lanes whose topology hits
        # the bitset matrix cache (static adversaries, shared graphs)
        # resolve by cached matvec; lanes that miss it (fading
        # adversaries mint fresh mask tuples every round, so the
        # id-keyed cache fills and stays cold) are folded into ONE
        # dense (lanes × n × n) neighbor batch built straight from the
        # masks — one ``unpackbits`` plus one batched matvec for the
        # whole bank instead of per-lane bigint candidate scans.
        if traced:
            topologies = []
            for i in active:
                ta = perf_counter_ns()
                topologies.append(lanes[i].engine._choose_topology(r))
                lanes[i].engine._phase_ns["adversary"] += perf_counter_ns() - ta
        else:
            topologies = [lanes[i].engine._choose_topology(r) for i in active]
        shared_deliveries: dict[int, list[Delivery]] = {}
        fresh: list[int] = []
        for j, topology in enumerate(topologies):
            if masks[j] == 0:
                shared_deliveries[j] = []  # silent round: nothing to hear
                continue
            engine = lanes[active[j]].engine
            if traced:
                ta = perf_counter_ns()
            matrix = engine._matrix_for(topology.masks)
            if matrix is not None:
                shared_deliveries[j] = engine._resolve_with_matrix(
                    transmit[j], matrix
                )
                if traced:
                    engine._phase_ns["reception"] += perf_counter_ns() - ta
            elif n <= _DENSE_BATCH_MAX_N:
                fresh.append(j)
        if fresh:
            if traced:
                t0 = perf_counter_ns()
            if n <= 64:
                # Single-word masks: one C-loop conversion + byte view.
                packed_masks = np.array(
                    [topologies[j].masks for j in fresh], dtype="<u8"
                ).view(np.uint8).reshape(len(fresh), n, 8)
            else:
                packed_masks = np.frombuffer(
                    b"".join(
                        mask.to_bytes(nbytes, "little")
                        for j in fresh
                        for mask in topologies[j].masks
                    ),
                    dtype=np.uint8,
                ).reshape(len(fresh), n, nbytes)
            neighbors = np.unpackbits(
                packed_masks, axis=2, bitorder="little", count=n
            ).astype(np.float64)
            rows = transmit[fresh]
            weighted = rows * lanes[active[fresh[0]]].engine._sender_encoding
            totals = (neighbors @ weighted[:, :, None])[..., 0].astype(np.int64)
            solo = (totals % modulus == 1) & ~rows
            for position, j in enumerate(fresh):
                deliveries: list[Delivery] = []
                receivers = np.nonzero(solo[position])[0]
                if receivers.size:
                    senders = totals[position, receivers] // modulus - 1
                    message_for = lanes[active[j]].engine._message_for
                    for u, sender in zip(receivers.tolist(), senders.tolist()):
                        deliveries.append(
                            Delivery(
                                receiver=u, sender=sender, message=message_for(sender)
                            )
                        )
                shared_deliveries[j] = deliveries
            if traced:
                _credit(
                    "reception",
                    perf_counter_ns() - t0,
                    [active[j] for j in fresh],
                )

        # Stages 3–6 per lane (topology/deliveries reused when batched).
        # The expected-transmitter sum goes through each engine's exact
        # class/kernel reduction — bit-identical to fsum, O(1) for the
        # single-message kernels instead of an O(n) per-lane pass.
        if traced:
            t0 = perf_counter_ns()
        expecteds = [
            lanes[i].engine._expected_exact(probs[j]) for j, i in enumerate(active)
        ]
        if traced:
            _credit("plan", perf_counter_ns() - t0, active)
        survivors: list[tuple[int, int]] = []  # (bank position j, lane i)
        for j, i in enumerate(active):
            lane = lanes[i]
            record = lane.engine._finish_round(
                r,
                transmit[j],
                masks[j],
                expecteds[j],
                topology=topologies[j],
                deliveries=shared_deliveries.get(j),
            )
            if lane.stop is not None and lane.stop():
                results[i] = ExecutionResult(
                    rounds=r + 1, solved=True, solve_round=record.round_index
                )
            else:
                survivors.append((j, i))
        active = [i for _, i in survivors]
        executed += 1

        # Lockstep round skipping. A lane that just retired no longer
        # constrains the probes.
        if not (bank_skip and survivors):
            continue
        if traced:
            ts = perf_counter_ns()
            probed = active
        start = executed  # == r + 1: every lane's next round, lockstep
        if (
            all(masks[j] == 0 for j, _ in survivors)
            and all(expecteds[j] == 0.0 for j, _ in survivors)
            and all(lanes[i].engine._quiescent() for _, i in survivors)
        ):
            # Every surviving lane was provably silent this round (the
            # exact expected sum of non-negative probabilities is 0.0
            # iff each term is) and quiescent: fast-forward to the
            # earliest per-lane skip horizon (each clamped to its cap).
            h = min(lanes[i].engine._skip_horizon(r, caps[i]) for i in active)
        else:
            # The round was active somewhere, but skip-capable kernels
            # can still prove the coming span silent from schedule
            # state alone (slot gaps, pending phase boundaries) —
            # skipping straight from one slot round to the next instead
            # of executing a probe round in between. One lane without a
            # licence keeps the lockstep stepping round by round.
            horizons = [lanes[i].engine._silent_horizon(r, caps[i]) for i in active]
            if any(horizon is None for horizon in horizons):
                if traced:
                    _credit("skip", perf_counter_ns() - ts, probed)
                continue
            h = min(horizons)
        if h <= start:
            if traced:
                _credit("skip", perf_counter_ns() - ts, probed)
            continue
        still_active: list[int] = []
        for i in active:
            lane = lanes[i]
            engine = lane.engine
            if span_ok[i]:
                # Batch-capable observers are span-invariant over
                # all-silent rounds, so the stop condition (a function
                # of observer state) cannot fire mid-span: one call
                # covers the whole span.
                engine._emit_quiet_span(start, h)
                still_active.append(i)
                continue
            retired = False
            for quiet_round in range(start, h):
                record = engine._emit_quiet_round(quiet_round)
                if lane.stop is not None and lane.stop():
                    results[i] = ExecutionResult(
                        rounds=quiet_round + 1,
                        solved=True,
                        solve_round=record.round_index,
                    )
                    retired = True
                    break
            if not retired:
                still_active.append(i)
        active = still_active
        executed = h
        if traced:
            _credit("skip", perf_counter_ns() - ts, probed)
    if traced:
        for lane, result in zip(lanes, results):
            lane.engine._trace = None
            if result is not None:
                lane.engine._trace_end(rec, result)
    return results
