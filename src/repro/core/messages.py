"""Message types carried over the simulated radio network.

The paper's algorithms send two kinds of content:

* **Data messages** — the broadcast payload itself. In the Section 4.1
  global broadcast algorithm the source wraps the payload together with
  the shared permutation string ``S`` into a single message
  ``m = ⟨m', S⟩``; every relaying node forwards the same message so the
  shared bits spread with the payload.
* **Seed messages** — the Section 4.3 initialization stage has leaders
  disseminate freshly drawn seeds; nodes that receive one commit to it.

A message is immutable; processes share references freely. The
``origin`` field is the node id that *created* the message (the global
source, the local broadcaster, or the seed's leader), which is what the
problem observers need: local broadcast is solved when every receiver
gets a message whose origin lies in the broadcaster set ``B``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.bits import BitStream

__all__ = ["MessageKind", "Message"]


class MessageKind(enum.Enum):
    """Classifies messages for observers and for algorithm dispatch."""

    DATA = "data"
    SEED = "seed"
    CONTROL = "control"


@dataclass(frozen=True)
class Message:
    """An immutable radio message.

    Parameters
    ----------
    kind:
        Message class; observers count only :attr:`MessageKind.DATA`
        toward problem completion.
    origin:
        Node id that created the message.
    payload:
        Application payload; must be hashable so traces can dedupe.
    shared_bits:
        Optional shared-randomness string attached to the message
        (the ``S`` of Section 4.1, or a leader's seed in Section 4.3).
    tag:
        Free-form discriminator for algorithms that send several
        message species (e.g. the init-stage phase number).
    """

    kind: MessageKind
    origin: int
    payload: Hashable = None
    shared_bits: Optional[BitStream] = None
    tag: Hashable = None

    def is_data(self) -> bool:
        """True for payload-carrying broadcast messages."""
        return self.kind is MessageKind.DATA

    def is_seed(self) -> bool:
        """True for initialization-stage seed messages."""
        return self.kind is MessageKind.SEED

    def describe(self) -> str:
        """Short human-readable rendering for traces and logs."""
        bits = f", |S|={self.shared_bits.length}" if self.shared_bits is not None else ""
        tag = f", tag={self.tag!r}" if self.tag is not None else ""
        return f"<{self.kind.value} from {self.origin}{bits}{tag}>"
