"""Execution traces and observers.

The engine reports each completed round as a :class:`RoundRecord` to a
list of observers. Problem completion checks (global/local broadcast),
statistics collectors, and the lower-bound reduction players are all
observers; the engine itself stays policy-free.

Records intentionally store the *transmitter mask* as a Python integer
bitmask (bit ``u`` set iff node ``u`` transmitted): it is compact, fast
to intersect with adjacency masks, and is the exact object the
offline adaptive adversary view exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Protocol, Sequence

from repro.core.messages import Message

__all__ = [
    "Delivery",
    "RoundRecord",
    "Observer",
    "TraceCollector",
    "DeliveryCounter",
    "popcount",
    "iter_bits",
]


def popcount(mask: int) -> int:
    """Number of set bits in a non-negative integer mask."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass(frozen=True)
class Delivery:
    """One successful radio reception: ``receiver`` got ``message`` from ``sender``."""

    receiver: int
    sender: int
    message: Message


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round.

    Parameters
    ----------
    round_index:
        0-based round number.
    transmitter_mask:
        Bitmask of nodes whose coin came up transmit.
    deliveries:
        All successful receptions this round (a listener with exactly
        one transmitting neighbor in the round topology).
    expected_transmitters:
        Sum of declared plan probabilities — the ``E[|X| | S]`` that the
        online adaptive adversary thresholds on; recorded for analysis.
    """

    round_index: int
    transmitter_mask: int
    deliveries: tuple[Delivery, ...]
    expected_transmitters: float

    @property
    def transmitter_count(self) -> int:
        """Realized number of transmitters ``|X|``."""
        return popcount(self.transmitter_mask)

    def transmitters(self) -> list[int]:
        """Realized transmitter ids in ascending order."""
        return list(iter_bits(self.transmitter_mask))


class Observer(Protocol):
    """Anything that wants to watch rounds as they complete.

    ``on_round`` is the only required hook. Observers may additionally
    implement the **batched quiet-span hook**::

        def on_round_batch(self, start: int, stop: int) -> None: ...

    The skipping engines call it *instead of* per-round ``on_round``
    for a span of provably silent rounds ``start .. stop-1`` (every
    round in the span has an empty transmitter mask, no deliveries,
    and ``expected_transmitters == 0.0``), and only when **every**
    observer attached to the engine implements it — mixing batch-aware
    and per-round observers on one engine falls back to materializing
    each round's :class:`RoundRecord` for everyone, so no observer ever
    sees a partial stream. Observers whose state is delivery-driven
    (the problem observers) implement it as a no-op; counters add the
    span size. :class:`TraceCollector` deliberately does *not*
    implement it: attaching one forces lazy per-round materialization,
    which is what keeps skip-on/skip-off traces byte-comparable in the
    equivalence suites.
    """

    def on_round(self, record: RoundRecord) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class TraceCollector:
    """Observer that retains every :class:`RoundRecord`.

    Intended for tests and small diagnostic runs; long sweeps should use
    :class:`DeliveryCounter` or problem observers instead to keep memory
    flat.
    """

    records: list[RoundRecord] = field(default_factory=list)

    def on_round(self, record: RoundRecord) -> None:
        self.records.append(record)

    def deliveries(self) -> list[Delivery]:
        """All deliveries across the collected rounds, in order."""
        return [d for record in self.records for d in record.deliveries]

    def rounds(self) -> int:
        return len(self.records)


@dataclass
class DeliveryCounter:
    """Observer tracking aggregate statistics with O(1) memory.

    Records the totals the experiment harness reports: rounds run,
    messages delivered, transmissions made, and the per-round maximum
    transmitter count (a contention proxy).
    """

    rounds: int = 0
    total_deliveries: int = 0
    total_transmissions: int = 0
    max_concurrent_transmitters: int = 0
    silent_rounds: int = 0

    def on_round(self, record: RoundRecord) -> None:
        self.rounds += 1
        self.total_deliveries += len(record.deliveries)
        count = record.transmitter_count
        self.total_transmissions += count
        if count > self.max_concurrent_transmitters:
            self.max_concurrent_transmitters = count
        if count == 0:
            self.silent_rounds += 1

    def on_round_batch(self, start: int, stop: int) -> None:
        """A span of all-silent rounds: only the counters move."""
        span = stop - start
        self.rounds += span
        self.silent_rounds += span


def first_delivery_round(
    records: Sequence[RoundRecord], receiver: int, origin: Optional[int] = None
) -> Optional[int]:
    """Round index of the first delivery to ``receiver`` (from ``origin`` if given).

    Returns ``None`` if no matching delivery occurs in ``records``.
    Convenience for tests inspecting collected traces.
    """
    for record in records:
        for delivery in record.deliveries:
            if delivery.receiver != receiver:
                continue
            if origin is not None and delivery.message.origin != origin:
                continue
            return record.round_index
    return None
