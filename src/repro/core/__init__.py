"""Core simulation substrate: bits, messages, processes, engine, traces.

This package knows nothing about specific algorithms, adversaries, or
graph families — it implements the dual graph model's execution
semantics (Section 2 of the paper) and the deterministic-randomness
plumbing everything else builds on.
"""

from repro.core.bits import BitCursor, BitStream, bits_for_uniform
from repro.core.canonical import canonical_json, stable_hash
from repro.core.engine import (
    ENGINE_NAMES,
    ExecutionResult,
    RadioNetworkEngine,
    create_engine,
)
from repro.core.errors import (
    AdversaryUsageError,
    BitStreamError,
    EngineError,
    EngineFallbackWarning,
    ExperimentError,
    GraphValidationError,
    PlanError,
    ReproError,
    ServeError,
    TopologyViolationError,
)
from repro.core.fastpath import BitsetRadioNetworkEngine
from repro.core.messages import Message, MessageKind
from repro.core.process import Process, ProcessContext, RoundPlan, SilentProcess
from repro.core.rng import derive_seed, spawn_numpy_rng, spawn_rng
from repro.core.trace import (
    Delivery,
    DeliveryCounter,
    RoundRecord,
    TraceCollector,
    iter_bits,
    popcount,
)

__all__ = [
    "BitCursor",
    "BitStream",
    "bits_for_uniform",
    "ENGINE_NAMES",
    "ExecutionResult",
    "RadioNetworkEngine",
    "BitsetRadioNetworkEngine",
    "create_engine",
    "EngineError",
    "EngineFallbackWarning",
    "Message",
    "MessageKind",
    "Process",
    "ProcessContext",
    "RoundPlan",
    "SilentProcess",
    "derive_seed",
    "spawn_numpy_rng",
    "spawn_rng",
    "Delivery",
    "DeliveryCounter",
    "RoundRecord",
    "TraceCollector",
    "iter_bits",
    "popcount",
    "ReproError",
    "GraphValidationError",
    "TopologyViolationError",
    "PlanError",
    "BitStreamError",
    "AdversaryUsageError",
    "ExperimentError",
    "ServeError",
    "canonical_json",
    "stable_hash",
]
