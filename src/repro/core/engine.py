"""The synchronous round engine for the dual graph radio model.

Implements the execution semantics of Section 2: executions proceed in
synchronous rounds; in each round every node either transmits or
listens; the communication topology is ``G`` plus the flaky edges the
link process selected for the round; and node ``u`` receives message
``m`` from ``v`` iff (1) ``u`` is receiving, (2) ``v`` transmits ``m``,
and (3) ``v`` is the *only* transmitter among ``u``'s neighbors in the
round's topology. Concurrent neighboring transmissions collide and are
indistinguishable from silence (no collision detection).

Round pipeline (see :mod:`repro.core.process` for why plans are
declarative)::

    1. plans[u]   = process_u.plan(r)                (deterministic in state)
    2. coins      = vectorized Bernoulli(plans.probability)
    3. topology   = link_process.choose_topology(view_for_class(r))
    4. deliveries = { u listens, popcount(X & mask_u) == 1 }
    5. process_u.on_feedback(r, sent, received)
    6. observers.on_round(record);  stop check

The engine exposes both :meth:`RadioNetworkEngine.run` (run to a stop
condition) and :meth:`RadioNetworkEngine.step` (single round), the
latter because the lower-bound reduction players of Theorems 3.1/4.3
interleave game guesses between simulated rounds.

:class:`RadioNetworkEngine` is the **reference** implementation — the
straight-line per-node loop that everything else is audited against.
A seed-for-seed identical vectorized implementation (the ``bitset``
fast path) lives in :mod:`repro.core.fastpath`; select between them
with :func:`create_engine` (or the ``engine=`` field on
:class:`~repro.api.spec.ScenarioSpec` and the CLI's ``--engine``).
"""

from __future__ import annotations

import math
import random
import warnings
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Optional, Sequence

import numpy as np

from repro.adversaries.base import (
    AdversaryClass,
    AlgorithmInfo,
    HistoryEntry,
    LinkProcess,
    ObliviousView,
    OfflineAdaptiveView,
    OnlineAdaptiveView,
    RoundTopology,
)
from repro.core import rng as rng_mod
from repro.core.errors import EngineError, EngineFallbackWarning, PlanError
from repro.obs.recorder import inc as _obs_inc
from repro.obs.recorder import recorder as _obs_recorder
from repro.core.process import Process, RoundPlan
from repro.core.trace import Delivery, Observer, RoundRecord

__all__ = [
    "RadioNetworkEngine",
    "ExecutionResult",
    "StopCondition",
    "ENGINE_NAMES",
    "create_engine",
    "resolve_engine_choice",
]

#: Engine implementations selectable via ``create_engine`` /
#: ``ScenarioSpec(engine=...)`` / ``repro ... --engine``.
ENGINE_NAMES = ("reference", "bitset", "bank")

#: Predicate deciding, after each round, whether the execution is done.
StopCondition = Callable[[], bool]

#: Cap on retained public history entries handed to adaptive views.
_HISTORY_WINDOW = 4096

#: Longest stretch of rounds a failed skip attempt backs off for. The
#: reference engine's skip probe polls every process, so attempting it
#: each round of a busy stretch would double the plan work; doubling
#: the retry gap caps that overhead at a constant factor while keeping
#: the probe responsive once the network goes quiet.
_SKIP_BACKOFF_MAX = 64


class _HistoryWindow(_SequenceABC):
    """O(1) frozen-length window over the engine's append-only history.

    Adaptive views used to receive ``tuple(history)`` — an O(window)
    copy every round, which dominated long executions. A window instead
    shares the engine's history list and pins the absolute entry range
    ``[start, stop)`` visible at view-construction time, so snapshot
    semantics are preserved (a view retained across rounds never grows)
    at O(1) construction cost. Entries themselves are immutable.

    The engine trims history beyond its retention window; accessing an
    entry that has since been trimmed raises :class:`LookupError` (such
    an access exceeds the entitlement the view modeled anyway).
    """

    __slots__ = ("_entries", "_trimmed", "_start", "_stop")

    def __init__(self, entries: list, trimmed: list, start: int, stop: int) -> None:
        self._entries = entries
        self._trimmed = trimmed  # shared one-cell trim counter
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self[i] for i in range(*index.indices(len(self)))
            )
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"history index {index} outside window of {length}")
        position = self._start + index - self._trimmed[0]
        if position < 0:
            raise LookupError(
                "history entry has been trimmed out of the retention window"
            )
        return self._entries[position]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_HistoryWindow({len(self)} entries)"


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of an engine run.

    ``solved`` / ``solve_round`` are filled from the stop condition: if
    the run stopped because the condition fired, ``solve_round`` is the
    0-based round after which it first held. ``rounds`` counts executed
    rounds (equals ``solve_round + 1`` on success).

    A stop condition that already holds *before round 0* (a trivially
    solved instance, e.g. a broadcast set with no receivers) yields
    ``solved=True, rounds=0, solve_round=-1`` — the sentinel ``-1``
    means "solved at start, no round executed", keeping ``solve_round``
    unambiguous: ``None`` now always means *unsolved*.
    """

    rounds: int
    solved: bool
    solve_round: Optional[int]

    @property
    def solved_at_start(self) -> bool:
        """True iff the stop condition held before any round executed."""
        return self.solved and self.solve_round == -1

    def rounds_to_solve(self) -> int:
        """Rounds executed up to the solve; raises if unsolved (guards analysis code)."""
        if not self.solved:
            raise ValueError("execution did not solve the problem")
        return self.rounds


@dataclass
class _EngineStats:
    rounds_run: int = 0


class RadioNetworkEngine:
    """Drives one execution of an algorithm against a link process.

    Parameters
    ----------
    network:
        The dual graph topology.
    processes:
        One :class:`~repro.core.process.Process` per node, index-aligned
        with node ids.
    link_process:
        The adversary controlling flaky links.
    seed:
        Master seed; the transmission coins, and nothing else, are drawn
        from the engine's own child stream so that algorithm/adversary
        randomness never perturbs coin alignment between runs.
    algorithm_info:
        Description handed to the adversary's ``start`` (defaults to an
        anonymous entry).
    validate_topologies:
        When true (default), every round topology is checked against
        ``G ⊆ topology ⊆ G'``. Costs ~2x; experiment sweeps disable it
        after the adversary under test has unit coverage.
    observers:
        Initial observer list; more can be added with
        :meth:`add_observer`.
    skip:
        Enable event-driven round skipping in :meth:`run`: spans of
        provably inert rounds (all plans silent and stable, no
        adversary boundary, no reactive feedback) are fast-forwarded
        while the coin stream is advanced in lockstep, so the trace —
        records, history, RNG positions — stays bit-identical to a
        non-skipping run. Off by default here; :func:`create_engine`
        turns it on for the fast engines.
    """

    #: Name this implementation reports in trace records (one of
    #: :data:`ENGINE_NAMES`; subclasses override).
    engine_name = "reference"

    def __init__(
        self,
        network,
        processes: Sequence[Process],
        link_process: LinkProcess,
        *,
        seed: int,
        algorithm_info: Optional[AlgorithmInfo] = None,
        validate_topologies: bool = True,
        observers: Sequence[Observer] = (),
        skip: bool = False,
    ) -> None:
        if len(processes) != network.n:
            raise PlanError(
                f"need exactly one process per node: n={network.n}, got {len(processes)}"
            )
        self.network = network
        self.processes = list(processes)
        self.link_process = link_process
        self.seed = seed
        self.validate_topologies = validate_topologies
        self.skip = bool(skip)
        self.observers: list[Observer] = list(observers)
        self.algorithm_info = algorithm_info or AlgorithmInfo(name="anonymous", metadata={})

        self._coin_rng = rng_mod.spawn_numpy_rng(seed, "engine", "coins")
        self._adversary_rng = rng_mod.spawn_rng(seed, "engine", "adversary")
        self._history: list[HistoryEntry] = []
        self._history_trimmed = [0]  # shared with views handed out per round
        self._round = 0
        self._started = False
        self._stats = _EngineStats()
        # Tracing state: ``_trace`` holds the active recorder for the
        # duration of one :meth:`run` (``None`` otherwise, so every
        # instrumented site is a single pointer comparison when tracing
        # is off). Phase nanoseconds and semantic counters accumulate
        # locally and flush as one trial record at the end of the run.
        self._trace = None
        self._phase_ns: dict[str, int] = {}
        self._trace_counts: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Index of the *next* round to execute."""
        return self._round

    def add_observer(self, observer: Observer) -> None:
        """Attach an observer; it sees all rounds executed after this call."""
        self.observers.append(observer)

    def _ensure_started(self) -> None:
        if self._started:
            return
        self.link_process.start(self.network, self.algorithm_info, self._adversary_rng)
        for process in self.processes:
            process.begin()
        self._started = True

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """Execute exactly one round and return its record."""
        self._ensure_started()
        r = self._round
        n = self.network.n
        # Phase spans are timed only while a recorder is active for the
        # surrounding run(); the disabled cost per phase is the pointer
        # comparison on ``ph``.
        ph = self._phase_ns if self._trace is not None else None
        if ph is not None:
            t0 = perf_counter_ns()

        # 1. Deterministic plans.
        plans: list[RoundPlan] = [process.plan(r) for process in self.processes]
        probabilities = [plan.probability for plan in plans]
        # fsum is exactly rounded and therefore order-independent, so
        # the bitset fast path — which discovers the same probability
        # multiset in a different order — records bit-identical values.
        expected = math.fsum(probabilities)
        if ph is not None:
            t1 = perf_counter_ns()
            ph["plan"] += t1 - t0
            t0 = t1

        # 2. Vectorized Bernoulli coins (shared with the fast path).
        _, transmitter_mask = rng_mod.transmission_coins(
            self._coin_rng, np.asarray(probabilities, dtype=np.float64)
        )
        if ph is not None:
            t1 = perf_counter_ns()
            ph["coins"] += t1 - t0
            t0 = t1

        # 3. Adversary fixes the round topology through its typed view.
        view = self._build_view(r, probabilities, transmitter_mask)
        topology = self.link_process.choose_topology(view)
        if self.validate_topologies:
            topology.validate(self.network)
        if ph is not None:
            t1 = perf_counter_ns()
            ph["adversary"] += t1 - t0
            t0 = t1

        # 4. Radio reception: exactly-one-transmitting-neighbor rule.
        deliveries = self._resolve_receptions(plans, transmitter_mask, topology)
        if ph is not None:
            t1 = perf_counter_ns()
            ph["reception"] += t1 - t0
            t0 = t1

        # 5. Feedback to processes.
        received_by: dict[int, Delivery] = {d.receiver: d for d in deliveries}
        for u, process in enumerate(self.processes):
            sent = bool((transmitter_mask >> u) & 1)
            delivery = received_by.get(u)
            process.on_feedback(r, sent, delivery.message if delivery else None)
        if ph is not None:
            t1 = perf_counter_ns()
            ph["feedback"] += t1 - t0
            t0 = t1

        # 6. Record keeping.
        record = RoundRecord(
            round_index=r,
            transmitter_mask=transmitter_mask,
            deliveries=tuple(deliveries),
            expected_transmitters=expected,
        )
        self._append_history(record)
        for observer in self.observers:
            observer.on_round(record)
        self._round += 1
        self._stats.rounds_run += 1
        if ph is not None:
            ph["observers"] += perf_counter_ns() - t0
            counts = self._trace_counts
            counts["rounds.executed"] = counts.get("rounds.executed", 0) + 1
        return record

    def _history_snapshot(self) -> _HistoryWindow:
        """The retained history as an O(1) frozen-length window."""
        start = self._history_trimmed[0]
        return _HistoryWindow(
            self._history, self._history_trimmed, start, start + len(self._history)
        )

    def _build_view(
        self, r: int, probabilities: Sequence[float], transmitter_mask: int
    ) -> ObliviousView:
        klass = self.link_process.adversary_class
        if klass is AdversaryClass.OBLIVIOUS:
            return ObliviousView(round_index=r)
        if klass is AdversaryClass.ONLINE_ADAPTIVE:
            return OnlineAdaptiveView(
                round_index=r,
                transmit_probabilities=tuple(probabilities),
                history=self._history_snapshot(),
            )
        return OfflineAdaptiveView(
            round_index=r,
            transmit_probabilities=tuple(probabilities),
            history=self._history_snapshot(),
            transmitter_mask=transmitter_mask,
        )

    def _resolve_receptions(
        self,
        plans: Sequence[RoundPlan],
        transmitter_mask: int,
        topology: RoundTopology,
    ) -> list[Delivery]:
        deliveries: list[Delivery] = []
        if not transmitter_mask:
            return deliveries
        masks = topology.masks
        listener_mask = ((1 << self.network.n) - 1) & ~transmitter_mask
        mask = listener_mask
        while mask:
            low = mask & -mask
            u = low.bit_length() - 1
            mask ^= low
            neighbors_transmitting = transmitter_mask & masks[u]
            if neighbors_transmitting and not (
                neighbors_transmitting & (neighbors_transmitting - 1)
            ):
                sender = neighbors_transmitting.bit_length() - 1
                message = plans[sender].message
                if message is None:  # pragma: no cover - PlanError guards this
                    raise PlanError(f"transmitter {sender} has no message")
                deliveries.append(Delivery(receiver=u, sender=sender, message=message))
        return deliveries

    def _append_history(self, record: RoundRecord) -> None:
        self._history.append(
            HistoryEntry(
                round_index=record.round_index,
                transmitter_mask=record.transmitter_mask,
                delivery_count=len(record.deliveries),
            )
        )
        if len(self._history) > _HISTORY_WINDOW:
            trim = len(self._history) - _HISTORY_WINDOW
            del self._history[:trim]
            self._history_trimmed[0] += trim

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, *, max_rounds: int, stop: Optional[StopCondition] = None) -> ExecutionResult:
        """Execute rounds until ``stop()`` fires or ``max_rounds`` elapse.

        The stop condition is evaluated once before round 0 (a problem
        can be trivially solved at start — e.g. a broadcast set whose
        receivers are empty) and after every round.
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        rec = _obs_recorder()
        if rec is None:
            return self._run_impl(max_rounds, stop)
        self._trace_begin(rec)
        try:
            result = self._run_impl(max_rounds, stop)
        finally:
            self._trace = None
        self._trace_end(rec, result)
        return result

    def _run_impl(
        self, max_rounds: int, stop: Optional[StopCondition]
    ) -> ExecutionResult:
        self._ensure_started()
        if stop is not None and stop():
            return ExecutionResult(rounds=0, solved=True, solve_round=-1)
        if self.skip:
            return self._run_skipping(max_rounds, stop)
        executed = 0
        while executed < max_rounds:
            record = self.step()
            executed += 1
            if stop is not None and stop():
                return ExecutionResult(rounds=executed, solved=True, solve_round=record.round_index)
        return ExecutionResult(rounds=executed, solved=False, solve_round=None)

    # ------------------------------------------------------------------
    # Tracing (see repro.obs: timing only, never semantics)
    # ------------------------------------------------------------------
    def _trace_begin(self, rec) -> None:
        """Arm per-phase timing for one :meth:`run`."""
        self._trace = rec
        self._phase_ns = {
            "plan": 0,
            "coins": 0,
            "adversary": 0,
            "reception": 0,
            "feedback": 0,
            "observers": 0,
            "skip": 0,
        }
        self._trace_counts = {}

    def _trace_end(self, rec, result: ExecutionResult) -> None:
        """Flush the accumulated phases/counters as one trial record.

        Phase nanoseconds are also folded into the recorder's counters
        under ``phase.<name>``, so consumers that only see the counter
        surface (shard rollups, serve workers diffing
        :meth:`~repro.obs.recorder.Recorder.checkpoint`) still get the
        per-phase breakdown without parsing the JSONL stream.
        """
        counts = self._trace_counts
        if counts:
            rec.merge_counters(counts)
        rec.merge_counters(
            {f"phase.{name}": ns for name, ns in self._phase_ns.items() if ns}
        )
        rec.emit(
            {
                "kind": "trial",
                "engine": self.engine_name,
                "seed": self.seed,
                "n": self.network.n,
                "rounds": result.rounds,
                "solved": result.solved,
                "phases": {k: v for k, v in self._phase_ns.items() if v},
                "counters": {k: v for k, v in counts.items() if v},
            }
        )

    # ------------------------------------------------------------------
    # Round skipping
    # ------------------------------------------------------------------
    def _emit_quiet_round(self, i: int) -> RoundRecord:
        """Materialize one skipped all-silent round.

        Exactly what a full execution of the round would have produced:
        the coin stream advances by the ``n`` uniforms the Bernoulli
        stage would have drawn (one :meth:`advance` per round on this
        per-round path, so a mid-span stop leaves the stream at
        precisely the position a non-skipping run would), and the
        record/history/observer plumbing runs unchanged. The bank
        scheduler's batched alternative is :meth:`_emit_quiet_span`.
        """
        self._coin_rng.bit_generator.advance(self.network.n)
        record = RoundRecord(
            round_index=i,
            transmitter_mask=0,
            deliveries=(),
            expected_transmitters=0.0,
        )
        self._append_history(record)
        for observer in self.observers:
            observer.on_round(record)
        self._round += 1
        self._stats.rounds_run += 1
        if self._trace is not None:
            counts = self._trace_counts
            counts["rounds.skipped"] = counts.get("rounds.skipped", 0) + 1
        return record

    def _emit_quiet_span(self, start: int, stop: int) -> None:
        """Emit all-silent rounds ``start .. stop-1`` as one batch.

        Observable-equivalent to calling :meth:`_emit_quiet_round` for
        each round of the span: the coin stream advances by exactly
        ``n · span`` uniforms (one :meth:`advance` call — the PCG64
        jump-ahead is O(log span), and the final stream position is
        identical), observers get one ``on_round_batch(start, stop)``
        instead of ``span`` materialized records, and the round/stat
        counters land on the same values. Callers must ensure every
        attached observer implements the batch hook (see
        :class:`~repro.core.trace.Observer`) and that no mid-span stop
        check is needed — batch-capable observers are span-invariant
        over all-silent rounds, so a stop condition that is false at
        ``start`` stays false through ``stop``. History entries are
        *not* appended: retained history feeds adaptive adversary
        views, and every caller of this path serves oblivious link
        processes only.
        """
        self._coin_rng.bit_generator.advance(self.network.n * (stop - start))
        for observer in self.observers:
            observer.on_round_batch(start, stop)
        self._round = stop
        self._stats.rounds_run += stop - start
        if self._trace is not None:
            counts = self._trace_counts
            counts["rounds.skipped"] = counts.get("rounds.skipped", 0) + (stop - start)
            counts["skip.spans"] = counts.get("skip.spans", 0) + 1
            self._trace.observe("skip.span_rounds", stop - start)

    def _quiet_horizon(self, r: int, limit: int) -> int:
        """First round in ``(r, limit]`` at which anything may change.

        Called right after an all-silent round ``r``: within
        ``[r + 1, horizon)`` every plan provably stays silent
        (:meth:`~repro.core.process.Process.next_state_change`) and the
        adversary's masks stay put
        (:meth:`~repro.adversaries.base.LinkProcess.next_boundary`), so
        those rounds can be emitted without executing them. Returns
        ``r + 1`` when nothing is skippable.
        """
        h = limit
        boundary = self.link_process.next_boundary(r)
        if boundary is not None and boundary < h:
            h = boundary
        if h <= r + 1:
            return r + 1
        for process in self.processes:
            nxt = process.next_state_change(r)
            if nxt is not None and nxt < h:
                h = nxt
                if h <= r + 1:
                    return r + 1
        return max(h, r + 1)

    def _run_skipping(self, max_rounds: int, stop: Optional[StopCondition]) -> ExecutionResult:
        """The skip-enabled run loop (reference implementation).

        Rounds execute through the ordinary :meth:`step`; after each
        *all-silent* round (``expected == 0.0`` — exact, since fsum of
        non-negative terms is zero iff every term is) the engine
        fast-forwards to the quiet horizon. The span's elisions are
        licensed contract by contract: per-node ``on_feedback`` calls
        by ``idle_feedback_noop`` — or by not overriding
        ``on_feedback`` at all, the same automatic detection the
        bitset engine applies (checked across all classes up front) —
        ``plan`` calls by ``next_state_change``, and
        ``choose_topology`` calls by ``next_boundary`` — round ``r``
        itself always ran normally, so stateful adversaries stay in
        sync.
        """
        skip_ok = all(
            type(p).idle_feedback_noop
            or type(p).on_feedback is Process.on_feedback
            for p in self.processes
        )
        executed = 0
        backoff = 1
        next_attempt = self._round
        while executed < max_rounds:
            record = self.step()
            executed += 1
            if stop is not None and stop():
                return ExecutionResult(
                    rounds=executed, solved=True, solve_round=record.round_index
                )
            if executed >= max_rounds:
                break
            if not (
                skip_ok
                and record.transmitter_mask == 0
                and record.expected_transmitters == 0.0
                and self._round >= next_attempt
            ):
                continue
            ph = self._phase_ns if self._trace is not None else None
            if ph is not None:
                ts = perf_counter_ns()
            start = self._round
            h = self._quiet_horizon(record.round_index, start + (max_rounds - executed))
            if h <= start:
                if ph is not None:
                    ph["skip"] += perf_counter_ns() - ts
                next_attempt = start + backoff
                backoff = min(backoff * 2, _SKIP_BACKOFF_MAX)
                continue
            backoff = 1
            if ph is not None:
                counts = self._trace_counts
                counts["skip.spans"] = counts.get("skip.spans", 0) + 1
                self._trace.observe("skip.span_rounds", h - start)
            try:
                for i in range(start, h):
                    quiet = self._emit_quiet_round(i)
                    executed += 1
                    if stop is not None and stop():
                        return ExecutionResult(
                            rounds=executed, solved=True, solve_round=quiet.round_index
                        )
            finally:
                if ph is not None:
                    ph["skip"] += perf_counter_ns() - ts
        return ExecutionResult(rounds=executed, solved=False, solve_round=None)


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def _skip_contract_gaps(
    processes: Sequence[Process], link_process: LinkProcess
) -> list[str]:
    """Component types lacking the skip contract (empty = all fine).

    A component "has the contract" when it *overrides* the base-class
    method: every registered algorithm and adversary carries an
    explicit override (even a trivial ``r + 1`` one), so a hit here
    means a third-party component the skip machinery knows nothing
    about. The base defaults are semantically safe (never skip), but a
    requested-and-useless skip deserves the fallback warning rather
    than silent non-acceleration.
    """
    gaps: list[str] = []
    seen: set = set()
    for process in processes:
        klass = type(process)
        if klass in seen:
            continue
        seen.add(klass)
        if klass.next_state_change is Process.next_state_change:
            gaps.append(f"{klass.__name__}.next_state_change")
    if type(link_process).next_boundary is LinkProcess.next_boundary:
        gaps.append(f"{type(link_process).__name__}.next_boundary")
    return gaps


def resolve_engine_choice(
    engine: str,
    processes: Sequence[Process],
    link_process: LinkProcess,
    *,
    skip: Optional[bool] = None,
) -> tuple[str, bool, list[str]]:
    """Resolve the engine name and skip flag for one execution.

    Returns ``(engine_name, skip, fallback_messages)`` — the messages
    are the :class:`EngineFallbackWarning` texts :func:`create_engine`
    would emit, exposed separately so executors can probe the outcome
    once per scenario (and warn once) instead of once per trial.

    ``skip=None`` resolves to the engine's default: on for the fast
    engines, off for the reference engine. Two fallbacks apply, in
    order: adaptive link processes force the reference engine (their
    views are entitled to per-node plan introspection), and a component
    lacking the skip contract forces ``skip=False``.
    """
    if engine not in ENGINE_NAMES:
        raise EngineError(
            f"unknown engine {engine!r}; choose from {ENGINE_NAMES}"
        )
    notes: list[str] = []
    resolved = engine
    if engine in ("bitset", "bank") and (
        link_process.adversary_class is not AdversaryClass.OBLIVIOUS
    ):
        notes.append(
            f"{engine} engine requested but {link_process.describe()} is "
            f"{link_process.adversary_class.value}: adaptive link processes "
            "need per-node plan introspection, using the reference engine"
        )
        resolved = "reference"
    resolved_skip = resolved in ("bitset", "bank") if skip is None else bool(skip)
    if resolved_skip:
        gaps = _skip_contract_gaps(processes, link_process)
        if gaps:
            notes.append(
                "round skipping disabled: "
                + ", ".join(sorted(gaps))
                + " lacks the skip contract (override it to opt back in)"
            )
            resolved_skip = False
    if notes:
        # Counted per resolution (executor probes and per-trial
        # create_engine calls alike), mirroring the deduped
        # EngineFallbackWarning surface as a measurable quantity.
        _obs_inc("engine.fallback", len(notes))
    return resolved, resolved_skip, notes


def create_engine(
    network,
    processes: Sequence[Process],
    link_process: LinkProcess,
    *,
    engine: str = "reference",
    seed: int,
    algorithm_info: Optional[AlgorithmInfo] = None,
    validate_topologies: bool = True,
    observers: Sequence[Observer] = (),
    skip: Optional[bool] = None,
    label: Optional[str] = None,
    warn: bool = True,
) -> RadioNetworkEngine:
    """Build the requested engine implementation for one execution.

    ``engine="reference"`` is the straight-line round loop above;
    ``engine="bitset"`` is the vectorized fast path of
    :mod:`repro.core.fastpath`; ``engine="bank"`` is the trial-batched
    struct-of-arrays kernel of :mod:`repro.core.bankpath` (a bitset
    subclass — for the single execution built here it acts as one lane
    of a bank of one; the cross-trial batching engages when an executor
    hands a whole seed bank to :func:`repro.core.bankpath.run_bank_batch`).
    Both fast engines are seed-for-seed identical to the reference
    engine (same coin stream, same records, same results) but only
    serve *oblivious* link processes. Requesting either against an
    online/offline adaptive adversary falls back to the reference
    engine with an :class:`EngineFallbackWarning` — adaptive views are
    entitled to per-node plan introspection every round, which is
    precisely the per-node work the fast paths elide.

    ``skip`` controls event-driven round skipping (``None`` = the
    engine's default: on for ``bitset``/``bank``, off for
    ``reference``); a component lacking the skip contract downgrades it
    to ``False`` with an :class:`EngineFallbackWarning`. ``label``
    names the scenario in those warnings, and ``warn=False`` suppresses
    them entirely (executors probe the outcome once per scenario via
    :func:`resolve_engine_choice` and warn there instead).
    """
    resolved, resolved_skip, notes = resolve_engine_choice(
        engine, processes, link_process, skip=skip
    )
    if warn:
        for note in notes:
            if label:
                note = f"{note} [scenario: {label}]"
            _obs_inc("engine.fallback.warned")
            warnings.warn(note, EngineFallbackWarning, stacklevel=2)
    if resolved == "bank":
        from repro.core.bankpath import BankRadioNetworkEngine

        engine_cls: type = BankRadioNetworkEngine
    elif resolved == "bitset":
        from repro.core.fastpath import BitsetRadioNetworkEngine

        engine_cls = BitsetRadioNetworkEngine
    else:
        engine_cls = RadioNetworkEngine
    return engine_cls(
        network,
        processes,
        link_process,
        seed=seed,
        algorithm_info=algorithm_info,
        validate_topologies=validate_topologies,
        observers=observers,
        skip=resolved_skip,
    )
