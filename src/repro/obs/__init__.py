"""repro.obs — tracing, metrics, and profiling for the repro stack.

Three cooperating pieces:

* :mod:`repro.obs.recorder` — the opt-in trace recorder behind
  :func:`enable`/:func:`disable`. Off by default; instrumented code
  pays one pointer comparison per phase while disabled.
* :mod:`repro.obs.prometheus` — the always-on :class:`MetricsRegistry`
  the serve layer exposes at ``GET /v1/metrics``.
* :mod:`repro.obs.profile` / :mod:`repro.obs.report` — the shared
  cProfile helper and the ``repro trace`` phase-table summarizer.
"""

from repro.obs.profile import profile_text, profiled
from repro.obs.prometheus import MetricsRegistry, parse_prometheus, render_prometheus
from repro.obs.recorder import (
    Histogram,
    Recorder,
    disable,
    enable,
    enabled,
    inc,
    observe,
    recorder,
)
from repro.obs.report import PHASES, read_trace, render_phase_table, summarize

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "Recorder",
    "disable",
    "enable",
    "enabled",
    "inc",
    "observe",
    "parse_prometheus",
    "profile_text",
    "profiled",
    "read_trace",
    "recorder",
    "render_phase_table",
    "render_prometheus",
    "summarize",
]
