"""One cProfile helper for benches and ``repro trace --profile``.

Before the obs layer, ``benchmarks/_common.py`` carried its own ad-hoc
``REPRO_BENCH_PROFILE=1`` dump (build a profiler, run, sort by
cumulative, print 20 rows). The same sequence is needed by ``repro
trace --profile`` and by anyone chasing a hotspot interactively, so it
lives here once: :func:`profiled` is the context manager, and
:func:`profile_text` the formatter both consumers share.
"""

from __future__ import annotations

import cProfile
import contextlib
import io
import pstats
from typing import Iterator

__all__ = ["profiled", "profile_text"]

#: Rows of the cumulative-time table (the historical bench dump size).
DEFAULT_LIMIT = 20


@contextlib.contextmanager
def profiled() -> Iterator[cProfile.Profile]:
    """Run the ``with`` body under cProfile; yields the profiler.

    The profiler is enabled on entry and disabled on exit (including
    exceptional exits), ready for :func:`profile_text`.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()


def profile_text(
    profiler: cProfile.Profile,
    *,
    limit: int = DEFAULT_LIMIT,
    sort: str = "cumulative",
) -> str:
    """The top-``limit`` rows of a finished profiler, as text."""
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(limit)
    return buffer.getvalue()
