"""Always-on serve metrics and the Prometheus text exposition.

The trace recorder (:mod:`repro.obs.recorder`) is off by default and
scoped to one run; the serve layer instead wants metrics that are *on
for the life of the service* and scrape-able at any moment. That is
:class:`MetricsRegistry`: a thread-safe bag of counters, histograms,
and gauge callbacks owned by :class:`~repro.serve.server.ReproServer`
and shared with its pool and job manager, rendered by
:func:`render_prometheus` for ``GET /v1/metrics``.

The exposition follows the Prometheus text format, version 0.0.4:
``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}`` rows
for histograms, and a trailing newline. Metric names are fixed at
registration so the scrape surface is stable (CI's serve-smoke job
asserts the pool/job families parse).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.obs.recorder import Histogram

__all__ = ["MetricsRegistry", "render_prometheus"]

#: Duration bucket bounds in seconds (queue waits, task/job runtimes).
_SECONDS_BOUNDS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0,
)


class MetricsRegistry:
    """Named counters, duration histograms, and gauge callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._help: dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric family."""
        with self._lock:
            self._help[name] = help_text

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe_seconds(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(_SECONDS_BOUNDS)
            histogram.observe(seconds)

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge sampled at render time (pool sizes etc.)."""
        with self._lock:
            self._gauges[name] = fn

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    with registry._lock:
        counters = dict(registry._counters)
        histograms = dict(registry._histograms)
        gauges = dict(registry._gauges)
        help_text = dict(registry._help)
    for name in sorted(counters):
        if name in help_text:
            lines.append(f"# HELP {name} {help_text[name]}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(counters[name])}")
    for name in sorted(gauges):
        try:
            value = float(gauges[name]())
        except Exception:
            continue  # a failing gauge must not break the scrape
        if name in help_text:
            lines.append(f"# HELP {name} {help_text[name]}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    for name in sorted(histograms):
        histogram = histograms[name]
        if name in help_text:
            lines.append(f"# HELP {name} {help_text[name]}")
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in histogram.cumulative():
            lines.append(
                f'{name}_bucket{{le="{_format_le(bound)}"}} {cumulative}'
            )
        lines.append(f"{name}_sum {_format_value(histogram.total)}")
        lines.append(f"{name}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Sample-name → value map (no labels merged; test/CI helper).

    Minimal by design: enough to assert "counter X is present with a
    finite value" in smoke tests without a client library. Labeled
    samples keep their label string as part of the key.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"unparseable exposition line: {line!r}")
        out[name] = float(value)
    return out
