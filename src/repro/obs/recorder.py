"""The trace recorder: counters, histograms, and JSONL trial records.

Design contract (see docs/architecture.md "Observability"):

* **off by default, nothing in the way.** The module-level recorder is
  ``None`` until :func:`enable` installs one; every instrumentation
  site either fetches it once per run into a local (engines) or goes
  through the no-op module helpers :func:`inc`/:func:`observe`, so a
  disabled run pays one pointer comparison per instrumented phase —
  never a dict lookup, never a clock read. Disabling fully restores
  the uninstrumented behavior (the overhead guard in
  ``tests/test_obs.py`` pins the residue at ≤ 3%).
* **timing only, never semantics.** The recorder observes wall time
  and counts; it never touches an RNG, a record, or any state the
  determinism surface covers. Traces-on runs produce byte-identical
  seed-determined records and identical RNG stream positions
  (``tests/test_obs.py`` pins this across all three engines).
* **structured output.** When enabled with a path, every
  :meth:`Recorder.emit` call appends one JSON line; the schema is
  validated by ``tools/check_trace_schema.py`` against the committed
  sample trace.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import IO, Optional

__all__ = [
    "Histogram",
    "Recorder",
    "enable",
    "disable",
    "enabled",
    "recorder",
    "inc",
    "observe",
]

#: Exponential (power-of-two) default bucket bounds: right for round
#: counts, span lengths, and delay draws alike. Durations are recorded
#: in nanoseconds as counters, not histograms, so one bound set serves.
_DEFAULT_BOUNDS = tuple(float(1 << k) for k in range(0, 21))


class Histogram:
    """A fixed-bucket histogram with Prometheus-compatible semantics.

    ``bounds`` are inclusive upper bounds (``le``); values above the
    last bound land in the implicit ``+Inf`` bucket. Bucket counts are
    stored *non*-cumulative and accumulated at render time, which keeps
    :meth:`observe` a single ``bisect`` + increment.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = _DEFAULT_BOUNDS) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.buckets):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def to_dict(self) -> dict:
        """JSON-safe summary (the trace-record shape for histograms)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [bound, count]
                for bound, count in zip(self.bounds, self.buckets)
                if count
            ],
        }


class Recorder:
    """One enabled trace session: counters + histograms + JSONL sink.

    Thread-safe: engines run single-threaded, but the serve layer's
    monitor thread and request threads may share one recorder, so every
    mutation takes the lock. (Engine hot loops avoid the cost anyway by
    accumulating phase nanoseconds locally and flushing once per run.)
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.records_emitted = 0
        self._lock = threading.Lock()
        self._sink: Optional[IO[str]] = None
        if path is not None:
            self._sink = open(path, "w", encoding="utf-8")

    # -- mutation ------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def merge_counters(self, counters: dict[str, float]) -> None:
        """Fold a batch of counter deltas in under one lock acquisition."""
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value

    def emit(self, record: dict) -> None:
        """Append one structured trace record (a JSON line when sinked)."""
        with self._lock:
            self.records_emitted += 1
            if self._sink is not None:
                self._sink.write(json.dumps(record, sort_keys=True) + "\n")
                self._sink.flush()

    # -- introspection -------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of every counter and histogram."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def checkpoint(self) -> dict[str, float]:
        """Counter snapshot; pass to :meth:`delta` to diff a span of work."""
        with self._lock:
            return dict(self.counters)

    def delta(self, checkpoint: dict[str, float]) -> dict[str, float]:
        """Counters accumulated since ``checkpoint`` (zero deltas dropped)."""
        with self._lock:
            current = dict(self.counters)
        out: dict[str, float] = {}
        for name, value in current.items():
            diff = value - checkpoint.get(name, 0)
            if diff:
                out[name] = diff
        return out

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


# ----------------------------------------------------------------------
# The module-level recorder slot
# ----------------------------------------------------------------------
_RECORDER: Optional[Recorder] = None


def recorder() -> Optional[Recorder]:
    """The active recorder, or ``None`` when tracing is disabled.

    Instrumented hot paths call this once per run and keep the result
    in a local: ``None`` means "take the uninstrumented branch", so the
    per-phase cost of disabled tracing is one pointer comparison.
    """
    return _RECORDER


def enabled() -> bool:
    return _RECORDER is not None


def enable(path: Optional[str] = None) -> Recorder:
    """Install a fresh recorder (closing any previous one).

    ``path`` adds a JSONL sink for :meth:`Recorder.emit`; without it the
    recorder accumulates counters/histograms only (the serve workers'
    timing-only mode).
    """
    global _RECORDER
    if _RECORDER is not None:
        _RECORDER.close()
    _RECORDER = Recorder(path)
    return _RECORDER


def disable() -> Optional[Recorder]:
    """Remove the active recorder and return it (sink closed)."""
    global _RECORDER
    rec = _RECORDER
    _RECORDER = None
    if rec is not None:
        rec.close()
    return rec


def inc(name: str, value: float = 1) -> None:
    """Counter increment that is a no-op while tracing is disabled.

    For cold call sites (engine construction, fallback resolution,
    cache management) where a branch per call is immaterial; hot loops
    fetch :func:`recorder` once instead.
    """
    rec = _RECORDER
    if rec is not None:
        rec.inc(name, value)


def observe(name: str, value: float) -> None:
    """Histogram observation that is a no-op while tracing is disabled."""
    rec = _RECORDER
    if rec is not None:
        rec.observe(name, value)
