"""Trace-file summaries: the ``repro trace`` phase-time table.

A trace file is JSONL — one record per :meth:`Recorder.emit` call.
The schema (validated by ``tools/check_trace_schema.py``):

* ``kind="trial"`` — one engine execution. Required keys: ``engine``
  (``reference``/``bitset``/``bank``), ``seed``, ``n``, ``rounds``,
  ``solved``, ``phases`` (phase name → nanoseconds, from
  :data:`PHASES`), ``counters`` (semantic counters, e.g.
  ``rounds.executed``/``rounds.skipped``).
* ``kind="shard"`` — a campaign shard rollup: ``shard_id``,
  ``seconds``, plus the same ``phases``/``counters`` aggregated over
  the shard's trials.

:func:`summarize` folds any mix of records into per-engine phase
totals; :func:`render_phase_table` turns one summary into the table
``repro trace`` prints.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = ["PHASES", "read_trace", "summarize", "render_phase_table"]

#: The engine phase taxonomy, in pipeline order. Every per-round span
#: an engine records lands in exactly one of these:
#: ``plan`` — signature classes / per-node ``plan()`` calls;
#: ``coins`` — the Bernoulli transmission draw;
#: ``adversary`` — ``choose_topology`` + validation (mask minting);
#: ``reception`` — matvec / packed-row / candidate-scan resolution;
#: ``feedback`` — ``on_feedback`` dispatch;
#: ``observers`` — record construction, history, observer callbacks;
#: ``skip`` — quiet-span probes and emission (skipped-round plumbing).
PHASES = (
    "plan",
    "coins",
    "adversary",
    "reception",
    "feedback",
    "observers",
    "skip",
)


def read_trace(path: str) -> list[dict]:
    """Parse one JSONL trace file (blank lines tolerated)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: trace records are objects, "
                    f"got {type(record).__name__}"
                )
            records.append(record)
    return records


def summarize(records: Iterable[dict]) -> dict:
    """Fold trace records into per-engine phase totals.

    Returns ``{engine: {"trials", "rounds", "phases": {name: ns},
    "counters": {name: total}}}`` over the ``kind="trial"`` records
    (shard rollups carry no engine axis and are skipped here).
    """
    out: dict[str, dict] = {}
    for record in records:
        if record.get("kind") != "trial":
            continue
        engine = record.get("engine", "?")
        bucket = out.setdefault(
            engine, {"trials": 0, "rounds": 0, "phases": {}, "counters": {}}
        )
        bucket["trials"] += 1
        bucket["rounds"] += int(record.get("rounds", 0))
        for name, ns in (record.get("phases") or {}).items():
            bucket["phases"][name] = bucket["phases"].get(name, 0) + ns
        for name, value in (record.get("counters") or {}).items():
            bucket["counters"][name] = bucket["counters"].get(name, 0) + value
    return out


def render_phase_table(summary: dict, *, title: Optional[str] = None) -> str:
    """Render :func:`summarize` output as the ``repro trace`` table."""
    from repro.analysis.tables import render_table

    rows = []
    for engine in sorted(summary):
        bucket = summary[engine]
        total_ns = sum(bucket["phases"].values()) or 1
        ordered = [name for name in PHASES if name in bucket["phases"]]
        ordered += sorted(set(bucket["phases"]) - set(PHASES))
        for name in ordered:
            ns = bucket["phases"][name]
            rows.append(
                [
                    engine,
                    name,
                    f"{ns / 1e6:.3f}",
                    f"{100.0 * ns / total_ns:.1f}%",
                ]
            )
        rows.append(
            [
                engine,
                "(total)",
                f"{sum(bucket['phases'].values()) / 1e6:.3f}",
                f"{bucket['trials']} trials, {bucket['rounds']} rounds",
            ]
        )
    if not rows:
        return "no trial records in trace"
    return render_table(
        ["engine", "phase", "ms", "share"],
        rows,
        title=title or "per-phase time breakdown:",
    )
