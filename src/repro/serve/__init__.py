"""repro.serve — the long-running simulation service.

The batch layers (:mod:`repro.api`, :mod:`repro.campaign`) pay their
startup costs — imports, registry validation, deterministic graph
construction — on every invocation, and their dedup story is
per-campaign checkpoint files. This package keeps all of that warm
behind a stdlib HTTP/JSON API:

* :mod:`repro.serve.worker` — the warm worker process (pre-imported
  registries, spec-hash-keyed prepared-trial cache);
* :mod:`repro.serve.pool` — :class:`~repro.serve.pool.WorkerPool`,
  N spawn workers with kill detection and front-of-backlog requeue;
* :mod:`repro.serve.jobs` — :class:`~repro.serve.jobs.JobManager`,
  spec-hash dedup (store-backed and in-flight) and the shard lifecycle
  event log;
* :mod:`repro.serve.server` — :class:`~repro.serve.server.ReproServer`,
  the ``/v1`` endpoints;
* :mod:`repro.serve.client` — :class:`~repro.serve.client.SimulationClient`,
  the urllib client the ``repro submit`` / ``repro jobs`` verbs use.

The invariant the whole package is built around: a result computed via
the service is byte-identical to the same spec run through
:class:`~repro.api.executor.TrialExecutor` or ``repro campaign run`` —
the service only changes *where* and *how often* computation happens,
never what it produces.
"""

from repro.serve.client import SimulationClient
from repro.serve.jobs import Job, JobManager, parse_submission, stream_events
from repro.serve.pool import WorkerPool
from repro.serve.server import DEFAULT_PORT, ReproServer

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobManager",
    "ReproServer",
    "SimulationClient",
    "WorkerPool",
    "parse_submission",
    "stream_events",
]
