"""The warm worker process: pre-imported registries, spec-keyed caches.

Each pool worker is a long-lived ``spawn`` process running
:func:`worker_main`. The whole point of the serve layer is that the
per-process costs a CLI run pays on *every* invocation are paid here
*once*:

* **imports** — the registries (graphs/algorithms/adversaries/problems/
  MACs/experiments) and numpy are imported during worker startup, not
  per request;
* **prepared-trial state** — submitted :class:`~repro.api.spec.ScenarioSpec`
  documents are parsed and validated once per worker, keyed by their
  :meth:`~repro.api.spec.ScenarioSpec.spec_hash`, and kept warm across
  requests (the spec *is* the prepared-trial factory: ``spec(seed)``
  builds the trial);
* **deterministic graph families** — building a spec funnels through
  :func:`repro.api.spec.build_prepared_trial`, whose process-wide
  deterministic-network cache keeps large fixed topologies built across
  trials *and across jobs* inside one worker.

Workers communicate over two queues (both private to the worker — see
:mod:`repro.serve.pool` for why sharing a result queue would be wrong):
tasks arrive as ``(task_id, kind, payload)`` tuples, results leave as
``(tag, worker_id, task_id, info)`` messages with ``tag`` one of
``ready`` / ``started`` / ``done`` / ``error``. A ``None`` task is the
shutdown sentinel.

Task kinds:

* ``"campaign-shard"`` — one campaign grid cell: payload names
  ``experiment``/``scale``/``engine``/``master_seed``; the result is
  :meth:`~repro.experiments.registry.ExperimentResult.to_record`,
  byte-identical to what :class:`~repro.campaign.runner.CampaignRunner`
  would checkpoint for the same cell.
* ``"scenario"`` — a trial batch of one spec: payload carries the spec
  document, its ``spec_hash``, ``master_seed``, and ``trials``; the
  result is :meth:`~repro.analysis.runner.TrialStats.to_record`,
  byte-identical to a direct
  :class:`~repro.api.executor.TrialExecutor` run.
"""

from __future__ import annotations

import time

__all__ = ["worker_main", "execute_task", "warm_imports"]


def warm_imports() -> None:
    """Import everything a task could need, once, at worker startup."""
    import repro.api  # noqa: F401  (registries + spec machinery)
    import repro.experiments  # noqa: F401  (experiment registry)
    import repro.mac  # noqa: F401  (MAC realizations)


#: Parsed specs keyed by spec hash — warm prepared-trial state. Parsing
#: and registry validation happen once per worker per distinct spec; the
#: deterministic-network cache underneath keeps the built graphs.
_PREPARED_SPECS: dict = {}


def _scenario_for(spec_hash: str, spec_dict: dict):
    from repro.api.spec import ScenarioSpec
    from repro.obs.recorder import inc as _obs_inc

    spec = _PREPARED_SPECS.get(spec_hash)
    if spec is None:
        _obs_inc("serve.spec_cache.miss")
        spec = ScenarioSpec.from_dict(spec_dict)
        _PREPARED_SPECS[spec_hash] = spec
    else:
        _obs_inc("serve.spec_cache.hit")
    return spec


def execute_task(kind: str, payload: dict) -> tuple[dict, float]:
    """Run one task; returns ``(seed-determined record, wall seconds)``.

    Pure in the sense that matters: the record depends only on
    ``(kind, payload)``, never on which worker ran it or how often —
    that is what makes kill-and-requeue (and dedup) sound.
    """
    started = time.perf_counter()
    if kind == "campaign-shard":
        from repro.experiments import ALL_EXPERIMENTS

        result = ALL_EXPERIMENTS[payload["experiment"]].run(
            scale=payload["scale"],
            master_seed=int(payload["master_seed"]),
            engine=payload["engine"],
        )
        record = result.to_record()
    elif kind == "scenario":
        from repro.analysis.runner import run_broadcast_trials

        spec = _scenario_for(payload["spec_hash"], payload["spec"])
        stats = run_broadcast_trials(
            spec,
            trials=int(payload["trials"]),
            master_seed=int(payload["master_seed"]),
        )
        record = stats.to_record()
    else:
        raise ValueError(f"unknown task kind {kind!r}")
    return record, time.perf_counter() - started


def _split_obs_delta(delta: dict) -> tuple[dict, dict]:
    """Separate a recorder counter delta into (phase ns, other counters)."""
    phases = {
        name[len("phase."):]: value
        for name, value in delta.items()
        if name.startswith("phase.")
    }
    counters = {
        name: value for name, value in delta.items() if not name.startswith("phase.")
    }
    return phases, counters


def worker_main(worker_id: int, tasks, results) -> None:
    """Worker process entry point (module-level for ``spawn`` pickling).

    Each worker runs a timing-only trace recorder (no JSONL sink) for
    its whole life, so every task's ``done`` message carries the
    per-phase nanoseconds and semantic counters the engines accumulated
    while running it — that is what the job layer surfaces as
    ``phases`` in the NDJSON event stream. Tracing never touches the
    RNG stream or the record (the determinism contract in
    :mod:`repro.obs.recorder`), so results stay byte-identical.
    """
    warm_imports()
    from repro.obs.recorder import enable as _obs_enable

    obs = _obs_enable(None)  # timing-only: counters, no sink
    results.put(("ready", worker_id, None, None))
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, kind, payload = item
        results.put(("started", worker_id, task_id, None))
        mark = obs.checkpoint()
        try:
            record, seconds = execute_task(kind, payload)
        except Exception as exc:  # surfaced as a job failure, not a crash
            results.put(
                (
                    "error",
                    worker_id,
                    task_id,
                    {"message": f"{type(exc).__name__}: {exc}"},
                )
            )
        else:
            phases, counters = _split_obs_delta(obs.delta(mark))
            info = {"record": record, "seconds": round(seconds, 6)}
            if phases:
                info["phases"] = phases
            if counters:
                info["counters"] = counters
            results.put(("done", worker_id, task_id, info))
