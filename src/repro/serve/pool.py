"""The warm worker pool: dispatch, liveness, kill-and-requeue.

:class:`WorkerPool` owns N long-lived ``spawn`` worker processes (see
:mod:`repro.serve.worker`) and a monitor thread. The contract it gives
the job layer is *graceful degradation with unchanged results* — the
same guarantee campaign resume gives across process kills, carried
into a live service:

* every submitted task eventually gets exactly one terminal callback
  (``done`` or ``error``), even if the worker running it is SIGKILLed;
* a killed worker is detected by the monitor's liveness sweep, its
  in-flight task is re-queued at the *front* of the backlog (it was
  next in line before the kill), and a replacement worker is spawned;
* because tasks are pure functions of their payloads (see
  :func:`repro.serve.worker.execute_task`), the re-run produces a
  record byte-identical to what the killed run would have produced.

Design notes:

* ``spawn`` start method, always — workers are forked from a process
  that is already running server threads, and ``fork`` + threads is a
  deadlock lottery. Spawn also makes the "warm imports" claim honest:
  the worker pays its import cost at startup, visibly, once.
* **per-worker queues in both directions.** A shared result queue
  would serialize writers through one lock; a worker SIGKILLed while
  holding it (mid-``put`` of a large record) would wedge every other
  worker — exactly the failure ``concurrent.futures`` resolves by
  declaring the whole pool broken. Private queues confine the damage:
  a kill can only corrupt the dead worker's own channel, which is
  drained best-effort and dropped.
* the monitor thread is the only place pool state changes after
  construction; callbacks fire *outside* the pool lock so the job
  layer can take its own locks freely.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing
import queue as queue_module
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import ServeError
from repro.obs.prometheus import MetricsRegistry
from repro.serve.worker import worker_main

__all__ = ["WorkerPool", "PoolTask"]


@dataclass
class PoolTask:
    """Bookkeeping for one submitted task."""

    task_id: int
    kind: str
    payload: dict
    callback: Callable[[str, Optional[dict]], None]
    state: str = "queued"  # queued | dispatched | running | done | error
    worker: Optional[int] = None
    requeues: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "error")


@dataclass
class _Worker:
    """One live worker process and its private channels."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    tasks: object  # mp.Queue of (task_id, kind, payload)
    results: object  # mp.Queue of (tag, worker_id, task_id, info)
    busy: Optional[int] = None  # task_id dispatched to it, if any
    warm: bool = False  # has it reported "ready" (imports done)?
    stats: dict = field(default_factory=lambda: {"done": 0, "errors": 0})


class WorkerPool:
    """A fixed-size pool of warm worker processes.

    Parameters
    ----------
    workers:
        Pool size (≥ 1). Each worker is one OS process kept alive for
        the lifetime of the pool.
    poll_interval:
        Monitor cadence in seconds: how often result queues are drained
        and worker liveness is checked. The ceiling on kill-detection
        latency.
    metrics:
        Optional :class:`~repro.obs.prometheus.MetricsRegistry`. When
        given, the pool publishes lifecycle counters
        (``repro_pool_workers_spawned_total`` / ``_died_total``,
        ``repro_pool_tasks_done_total`` / ``_error_total`` /
        ``_requeued_total``, ``repro_pool_broken_total``), a
        ``repro_pool_task_seconds`` histogram, and render-time gauges
        for the :meth:`describe` fields (alive/warm/busy/backlog).
    """

    #: A task killed this many times stops being requeued and errors
    #: out instead — some payloads deterministically crash the worker
    #: (OOM kills), and requeueing those forever would wedge the job.
    MAX_REQUEUES = 3

    #: Consecutive dead-before-warm workers tolerated before the pool
    #: declares itself broken (the environment cannot start workers at
    #: all — e.g. a spawn context with no importable ``__main__``).
    MAX_CRASH_STREAK = 8

    def __init__(
        self,
        workers: int = 2,
        *,
        poll_interval: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ServeError(f"worker pool needs at least one worker, got {workers}")
        self.size = workers
        self.poll_interval = poll_interval
        self.metrics = metrics
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._tasks: dict[int, PoolTask] = {}
        self._backlog: collections.deque[int] = collections.deque()
        self._workers: dict[int, _Worker] = {}
        self._task_ids = itertools.count(1)
        self._worker_ids = itertools.count(1)
        self._closed = threading.Event()
        self._crash_streak = 0
        self._broken = False
        if metrics is not None:
            self._register_metrics(metrics)
        with self._lock:
            for _ in range(workers):
                self._spawn_worker()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-pool", daemon=True
        )
        self._monitor.start()

    def _register_metrics(self, metrics: MetricsRegistry) -> None:
        """Describe the counter families and hook up describe() gauges."""
        for name, help_text in (
            ("repro_pool_workers_spawned_total", "Worker processes started"),
            ("repro_pool_workers_died_total", "Worker processes found dead"),
            ("repro_pool_tasks_done_total", "Tasks finished successfully"),
            ("repro_pool_tasks_error_total", "Tasks finished in error"),
            ("repro_pool_tasks_requeued_total", "Tasks requeued after a worker death"),
            ("repro_pool_broken_total", "Times the pool declared itself broken"),
            ("repro_pool_task_seconds", "Wall seconds per completed pool task"),
        ):
            metrics.describe(name, help_text)
            if not name.endswith("_seconds"):
                metrics.inc(name, 0)  # surface the family before first event
        for field_name in ("alive", "warm", "busy", "backlog"):
            gauge = f"repro_pool_workers_{field_name}"
            if field_name == "backlog":
                gauge = "repro_pool_backlog"
            metrics.describe(gauge, f"Pool describe() field: {field_name}")
            metrics.gauge(
                gauge, lambda field_name=field_name: self.describe()[field_name]
            )

    def _metric_inc(self, name: str, value: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: dict,
        callback: Callable[[str, Optional[dict]], None],
    ) -> int:
        """Queue one task; returns its pool-level task id.

        ``callback(event, info)`` fires from the monitor thread with
        ``event`` in ``"started"`` / ``"requeued"`` / ``"done"`` /
        ``"error"``; ``info`` carries ``record``/``seconds`` for
        ``done`` and ``message`` for ``error``. Exactly one terminal
        event is delivered per task.
        """
        if self._closed.is_set():
            raise ServeError("worker pool is shut down")
        if self._broken:
            raise ServeError(
                "worker pool is broken: workers crash before becoming ready"
            )
        with self._lock:
            task_id = next(self._task_ids)
            self._tasks[task_id] = PoolTask(
                task_id=task_id, kind=kind, payload=payload, callback=callback
            )
            self._backlog.append(task_id)
            self._dispatch_locked()
        return task_id

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (test hook for kill experiments)."""
        with self._lock:
            return [
                w.process.pid
                for w in self._workers.values()
                if w.process.pid is not None
            ]

    def busy_pids(self) -> list[int]:
        """PIDs of workers with a dispatched task (kill these mid-job)."""
        with self._lock:
            return [
                w.process.pid
                for w in self._workers.values()
                if w.busy is not None and w.process.pid is not None
            ]

    def describe(self) -> dict:
        """Pool health snapshot for the ``/v1/health`` endpoint."""
        with self._lock:
            return {
                "size": self.size,
                "alive": sum(
                    1 for w in self._workers.values() if w.process.is_alive()
                ),
                "warm": sum(1 for w in self._workers.values() if w.warm),
                "busy": sum(
                    1 for w in self._workers.values() if w.busy is not None
                ),
                "backlog": len(self._backlog),
                "completed": sum(
                    w.stats["done"] for w in self._workers.values()
                ),
            }

    def shutdown(self) -> None:
        """Terminate workers and stop the monitor (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._monitor.join(timeout=5.0)
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            try:
                worker.tasks.put_nowait(None)
            except Exception:
                pass
        for worker in workers:
            worker.process.terminate()
        for worker in workers:
            worker.process.join(timeout=2.0)
            for channel in (worker.tasks, worker.results):
                try:
                    channel.cancel_join_thread()
                    channel.close()
                except Exception:
                    pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Internals (monitor thread)
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        """Start one worker (caller holds the lock)."""
        worker_id = next(self._worker_ids)
        tasks = self._ctx.Queue()
        results = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, tasks, results),
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _Worker(
            worker_id=worker_id, process=process, tasks=tasks, results=results
        )
        self._metric_inc("repro_pool_workers_spawned_total")

    def _dispatch_locked(self) -> None:
        """Hand backlog tasks to idle workers (caller holds the lock)."""
        if not self._backlog:
            return
        for worker in self._workers.values():
            if not self._backlog:
                return
            if worker.busy is not None or not worker.process.is_alive():
                continue
            task_id = self._backlog.popleft()
            task = self._tasks[task_id]
            task.state = "dispatched"
            task.worker = worker.worker_id
            worker.busy = task_id
            worker.tasks.put((task_id, task.kind, task.payload))

    def _monitor_loop(self) -> None:
        while not self._closed.is_set():
            fired = self._drain_results()
            fired += self._reap_dead()
            for callback, event, info in fired:
                try:
                    callback(event, info)
                except Exception:  # a job-layer bug must not kill the pool
                    pass
            if not fired:
                self._closed.wait(self.poll_interval)

    def _drain_results(self) -> list[tuple]:
        """Pull every pending message off every worker's result queue."""
        fired: list[tuple] = []
        with self._lock:
            for worker in list(self._workers.values()):
                while True:
                    try:
                        message = worker.results.get_nowait()
                    except (queue_module.Empty, OSError, EOFError):
                        break
                    fired.extend(self._handle_locked(worker, message))
            self._dispatch_locked()
        return fired

    def _handle_locked(self, worker: _Worker, message: tuple) -> list[tuple]:
        """Apply one worker message; returns callbacks to fire."""
        tag, _worker_id, task_id, info = message
        if tag == "ready":
            worker.warm = True
            self._crash_streak = 0
            return []
        task = self._tasks.get(task_id)
        if task is None:
            worker.busy = None
            return []
        if tag == "started":
            # A late "started" from a pre-requeue run must not resurrect
            # a task another worker already finished.
            if not task.terminal and task.worker == worker.worker_id:
                task.state = "running"
                return [(task.callback, "started", None)]
            return []
        # Terminal message: the worker is idle again either way.
        worker.busy = None
        worker.stats["done" if tag == "done" else "errors"] += 1
        self._metric_inc(
            "repro_pool_tasks_done_total"
            if tag == "done"
            else "repro_pool_tasks_error_total"
        )
        if tag == "done" and self.metrics is not None and info:
            self.metrics.observe_seconds(
                "repro_pool_task_seconds", float(info.get("seconds", 0.0))
            )
        if task.terminal:
            # Duplicate terminal (a requeued task's first run finished
            # right before its worker died): results are deterministic,
            # so dropping the duplicate is lossless.
            return []
        task.state = "done" if tag == "done" else "error"
        return [(task.callback, tag, info)]

    def _reap_dead(self) -> list[tuple]:
        """Detect killed workers: requeue their task, spawn replacements."""
        fired: list[tuple] = []
        with self._lock:
            dead = [
                w for w in self._workers.values() if not w.process.is_alive()
            ]
            for worker in dead:
                # A final message may have beaten the kill; honor it so a
                # completed task is not pointlessly re-run.
                while True:
                    try:
                        message = worker.results.get_nowait()
                    except (queue_module.Empty, OSError, EOFError):
                        break
                    fired.extend(self._handle_locked(worker, message))
                lost_id = worker.busy
                self._metric_inc("repro_pool_workers_died_total")
                if not worker.warm:
                    self._crash_streak += 1
                del self._workers[worker.worker_id]
                for channel in (worker.tasks, worker.results):
                    try:
                        channel.cancel_join_thread()
                        channel.close()
                    except Exception:
                        pass
                if lost_id is not None:
                    task = self._tasks.get(lost_id)
                    if task is not None and not task.terminal:
                        task.worker = None
                        if task.requeues >= self.MAX_REQUEUES:
                            # This payload keeps killing workers; stop
                            # feeding it to fresh ones.
                            task.state = "error"
                            self._metric_inc("repro_pool_tasks_error_total")
                            fired.append(
                                (
                                    task.callback,
                                    "error",
                                    {
                                        "message": (
                                            "task killed its worker "
                                            f"{task.requeues + 1} times; giving up"
                                        )
                                    },
                                )
                            )
                        else:
                            task.state = "queued"
                            task.requeues += 1
                            self._backlog.appendleft(lost_id)
                            self._metric_inc("repro_pool_tasks_requeued_total")
                            fired.append((task.callback, "requeued", None))
                if self._crash_streak >= self.MAX_CRASH_STREAK:
                    fired.extend(self._break_locked())
                else:
                    self._spawn_worker()
            if dead:
                self._dispatch_locked()
        return fired

    def _break_locked(self) -> list[tuple]:
        """Give up on a crash-looping environment: fail everything queued."""
        self._broken = True
        self._metric_inc("repro_pool_broken_total")
        fired: list[tuple] = []
        message = (
            "worker pool is broken: workers crash before becoming ready "
            f"({self._crash_streak} consecutive startup failures)"
        )
        while self._backlog:
            task = self._tasks[self._backlog.popleft()]
            if not task.terminal:
                task.state = "error"
                self._metric_inc("repro_pool_tasks_error_total")
                fired.append((task.callback, "error", {"message": message}))
        return fired
