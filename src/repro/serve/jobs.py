"""Jobs: submissions, spec-hash dedup, shard lifecycle events.

:class:`JobManager` is the brain of the serve layer. It turns a
submitted document — a :class:`~repro.api.spec.ScenarioSpec`, a
:class:`~repro.campaign.spec.CampaignSpec`, or the one-cell
``{"experiment": ...}`` shorthand — into a :class:`Job` of tasks,
dedupes before any work is queued, and checkpoints every completed
task into the :class:`~repro.campaign.store.ResultStore` the campaign
layer already owns:

* **store dedup** — a task whose ``(spec_hash, seed)`` already has a
  record (:meth:`~repro.campaign.store.ResultStore.find`) is marked
  ``resumed`` (the campaign lifecycle's own word for "checkpoint says
  done") and costs zero trials. A whole-grid resubmission therefore
  returns the cached aggregates without touching the pool.
* **in-flight dedup** — a submission identical to a job that is still
  running returns *that* job (``deduped``), so two clients racing the
  same spec share one computation.
* **events** — each job carries an append-only event log mirroring the
  campaign runner's shard lifecycle (``start`` / ``done`` /
  ``resumed``, plus ``requeued`` when a killed worker's task is
  reassigned); ``GET /v1/runs/<id>/events`` streams it as
  line-delimited JSON via :func:`stream_events`.

Determinism surface: the records a job appends are byte-identical to
what the offline paths write — :func:`~repro.campaign.runner.shard_record`
for campaign cells, :func:`scenario_record` for spec runs — so one
store serves CLI campaigns and API jobs interchangeably.
"""

from __future__ import annotations

import platform
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Union

from repro.api.spec import ScenarioSpec
from repro.campaign.runner import shard_record
from repro.campaign.spec import CampaignSpec, Shard
from repro.campaign.store import SCHEMA_VERSION, ResultStore
from repro.core.canonical import stable_hash
from repro.core.errors import ReproError, ServeError
from repro.obs.prometheus import MetricsRegistry
from repro.serve.pool import WorkerPool

__all__ = [
    "Job",
    "JobTask",
    "JobManager",
    "parse_submission",
    "scenario_record",
    "scenario_shard_id",
    "stream_events",
    "SERVE_CAMPAIGN",
]

#: Store "campaign" bucket for ad-hoc spec runs submitted over the API.
SERVE_CAMPAIGN = "serve"

#: Default master seed / trial count for bare spec submissions (matches
#: the CLI's ``run-spec`` defaults).
DEFAULT_SEED = 2013
DEFAULT_TRIALS = 1


def scenario_shard_id(spec_hash: str, master_seed: int, trials: int) -> str:
    """Checkpoint key for one spec-run batch (mirrors ``Shard.shard_id``)."""
    return f"spec-{spec_hash[:16]}@trials{trials}/seed{master_seed}"


def scenario_record(
    spec: ScenarioSpec, master_seed: int, trials: int, aggregate: dict, *, seconds: float
) -> dict:
    """Assemble the store record for one completed spec-run batch.

    The spec-run twin of :func:`~repro.campaign.runner.shard_record`:
    same schema/kind (so :class:`~repro.campaign.store.ResultStore`
    merges it unchanged), ``aggregate`` from
    :meth:`~repro.analysis.runner.TrialStats.to_record`, volatile bits
    under ``meta``. ``spec_hash`` + ``trials`` are the dedup key;
    the full canonical spec travels along for provenance.
    """
    spec_hash = spec.spec_hash()
    return {
        "schema": SCHEMA_VERSION,
        "kind": "shard",
        "campaign": SERVE_CAMPAIGN,
        "shard_id": scenario_shard_id(spec_hash, master_seed, trials),
        "experiment": f"spec:{spec.algorithm.name}",
        "scale": f"trials{trials}",
        "engine": spec.engine,
        "master_seed": master_seed,
        "spec_hash": spec_hash,
        "trials": trials,
        "spec": spec.canonical_dict(),
        "aggregate": aggregate,
        "meta": {
            "seconds": round(seconds, 6),
            "python": platform.python_version(),
        },
    }


@dataclass
class JobTask:
    """One unit of a job: a campaign shard or a spec-run batch."""

    label: str  # shard_id — the event log's stable name for this unit
    kind: str  # pool task kind: "campaign-shard" | "scenario"
    payload: dict
    #: (worker record, seconds) -> full store record for this task.
    build_record: Callable[[dict, float], dict]
    status: str = "pending"  # pending | running | done | resumed | failed
    cached: bool = False
    seconds: float = 0.0
    requeues: int = 0
    record: Optional[dict] = None

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "resumed", "failed")


class Job:
    """A submission and its progress, event log, and result."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        *,
        spec_hash: str,
        description: str,
        master_seed: Optional[int] = None,
        trials: Optional[int] = None,
    ) -> None:
        self.job_id = job_id
        self.kind = kind  # "scenario" | "campaign"
        self.spec_hash = spec_hash
        self.description = description
        self.master_seed = master_seed
        self.trials = trials
        self.state = "queued"  # queued | running | done | failed
        self.error: Optional[str] = None
        self.tasks: list[JobTask] = []
        self.events: list[dict] = []
        self.cond = threading.Condition()
        self.created = time.time()  # display only, never in records
        self.deduped = False  # served from an identical in-flight job?

    # -- counters ------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def _count(self, status: str) -> int:
        return sum(1 for t in self.tasks if t.status == status)

    def shard_summary(self) -> dict:
        """Progress counters, shaped like ``campaign status --json``."""
        executed = self._count("done")
        cached = self._count("resumed")
        return {
            "total": len(self.tasks),
            "executed": executed,
            "cached": cached,
            "completed": executed + cached,
            "pending": self._count("pending"),
            "running": self._count("running"),
            "failed": self._count("failed"),
            "requeues": sum(t.requeues for t in self.tasks),
            "finished": all(t.terminal for t in self.tasks),
        }

    # -- result --------------------------------------------------------
    def aggregate_rows(self) -> list[dict]:
        """The job's results, row-shaped exactly like
        :meth:`~repro.campaign.store.ResultStore.aggregates_json` — so
        ``json.dumps(rows, sort_keys=True, indent=1)`` is byte-
        comparable against a store populated by a direct run."""
        rows = [
            {
                "campaign": t.record["campaign"],
                "shard_id": t.record["shard_id"],
                "aggregate": t.record["aggregate"],
            }
            for t in self.tasks
            if t.record is not None
        ]
        return sorted(rows, key=lambda row: (row["campaign"], row["shard_id"]))

    def to_payload(self, *, detail: bool = False) -> dict:
        payload = {
            "id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "spec_hash": self.spec_hash,
            "description": self.description,
            "deduped": self.deduped,
            "shards": self.shard_summary(),
            "created": self.created,
        }
        if self.master_seed is not None:
            payload["master_seed"] = self.master_seed
        if self.trials is not None:
            payload["trials"] = self.trials
        if self.error is not None:
            payload["error"] = self.error
        if detail:
            payload["tasks"] = [
                {
                    "shard": t.label,
                    "status": t.status,
                    "cached": t.cached,
                    "seconds": round(t.seconds, 6),
                    "requeues": t.requeues,
                }
                for t in self.tasks
            ]
            if self.terminal:
                rows = self.aggregate_rows()
                payload["aggregates"] = rows
                if self.kind == "scenario" and rows:
                    # Convenience: the single batch's aggregate, directly.
                    payload["result"] = rows[0]["aggregate"]
        return payload


def _validate_spec_refs(spec: ScenarioSpec) -> None:
    """Resolve every registry ref now, not in the worker.

    ``ScenarioSpec.from_dict`` only checks shapes; the registries are
    consulted at build time. A submission naming a component that does
    not exist must be a 400 at the front door, not a failed job minutes
    later — so resolve each name eagerly (RegistryError → ReproError →
    client error).
    """
    from repro.core.engine import ENGINE_NAMES
    from repro.registry import ADVERSARIES, ALGORITHMS, GRAPHS, MACS, PROBLEMS

    GRAPHS.get(spec.graph.name)
    ALGORITHMS.get(spec.algorithm.name)
    ADVERSARIES.get(spec.adversary.name)
    PROBLEMS.get(spec.problem.name)
    if spec.mac is not None:
        MACS.get(spec.mac.name)
    if spec.engine not in ENGINE_NAMES:
        raise ServeError(
            f"unknown engine {spec.engine!r}; registered: {sorted(ENGINE_NAMES)}"
        )


def parse_submission(
    document: object,
) -> tuple[str, Union[tuple[ScenarioSpec, int, int], CampaignSpec]]:
    """Classify and validate one ``POST /v1/runs`` document.

    Accepted shapes:

    * ``{"scenario": {...spec...}, "seed": N, "trials": N}`` — explicit
      spec-run wrapper (seed/trials optional);
    * a bare :class:`~repro.api.spec.ScenarioSpec` dict (has
      ``"graph"``) — defaults seed 2013, 1 trial;
    * ``{"campaign": {...campaign spec...}}`` or a bare campaign dict
      (has ``"experiments"``);
    * ``{"experiment": "E1b", "scale": "tiny", "engine": "reference",
      "seed": 2013}`` — one-cell shorthand, compiled to a single-shard
      campaign named ``api-<id>`` (this is how "run any experiment id
      via the API" reads in curl).
    """
    if not isinstance(document, Mapping):
        raise ServeError(
            f"submission must be a JSON object, got {type(document).__name__}"
        )
    if "scenario" in document or "graph" in document:
        if "scenario" in document:
            extra = set(document) - {"scenario", "seed", "trials"}
            if extra:
                raise ServeError(
                    f"unknown scenario submission keys {sorted(extra)}"
                )
            spec_data = document["scenario"]
            seed = int(document.get("seed", DEFAULT_SEED))
            trials = int(document.get("trials", DEFAULT_TRIALS))
        else:
            spec_data, seed, trials = document, DEFAULT_SEED, DEFAULT_TRIALS
        spec = ScenarioSpec.from_dict(spec_data)
        if trials < 1:
            raise ServeError(f"trials must be positive, got {trials}")
        _validate_spec_refs(spec)
        return "scenario", (spec, seed, trials)
    if "campaign" in document:
        return "campaign", CampaignSpec.from_dict(document["campaign"])
    if "experiments" in document:
        return "campaign", CampaignSpec.from_dict(document)
    if "experiment" in document:
        extra = set(document) - {"experiment", "scale", "engine", "seed"}
        if extra:
            raise ServeError(f"unknown experiment submission keys {sorted(extra)}")
        exp_id = str(document["experiment"])
        return "campaign", CampaignSpec(
            name=f"api-{exp_id}",
            experiments=(exp_id,),
            scales=(str(document.get("scale", "tiny")),),
            engines=(str(document.get("engine", "reference")),),
            seeds=(int(document.get("seed", DEFAULT_SEED)),),
        )
    raise ServeError(
        "cannot classify submission: expected a ScenarioSpec (a 'graph' "
        "section or a 'scenario' wrapper), a CampaignSpec ('experiments' "
        "or a 'campaign' wrapper), or an 'experiment' shorthand"
    )


class JobManager:
    """Owns the job table, the dedup maps, and the store writes.

    With a ``metrics`` registry attached, the manager publishes job
    lifecycle counters (``repro_jobs_submitted_total`` /
    ``_done_total`` / ``_failed_total``), dedup counters
    (``repro_jobs_dedup_inflight_total`` for submissions served by an
    identical running job, ``repro_jobs_dedup_store_total`` for tasks
    answered straight from the result store), and duration histograms
    (``repro_job_seconds`` submit→terminal,
    ``repro_job_task_exec_seconds`` per executed task).
    """

    def __init__(
        self,
        store: ResultStore,
        pool: WorkerPool,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.pool = pool
        self.metrics = metrics
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # insertion-ordered
        self._inflight: dict[str, str] = {}  # dedup key -> job id
        self._counter = 0
        if metrics is not None:
            for name, help_text in (
                ("repro_jobs_submitted_total", "Jobs created from submissions"),
                ("repro_jobs_done_total", "Jobs finished successfully"),
                ("repro_jobs_failed_total", "Jobs finished with a failed task"),
                (
                    "repro_jobs_dedup_inflight_total",
                    "Submissions served by an identical in-flight job",
                ),
                (
                    "repro_jobs_dedup_store_total",
                    "Tasks answered from the result store without running",
                ),
                ("repro_job_seconds", "Wall seconds from job submit to terminal"),
                ("repro_job_task_exec_seconds", "Worker wall seconds per executed task"),
                (
                    "repro_worker_spec_cache_hit_total",
                    "Scenario specs served from a worker's prepared-spec cache",
                ),
                (
                    "repro_worker_spec_cache_miss_total",
                    "Scenario specs parsed fresh in a worker",
                ),
            ):
                metrics.describe(name, help_text)
                if not name.endswith("_seconds"):
                    metrics.inc(name, 0)  # surface the family before first event

    def _metric_inc(self, name: str, value: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, document: object) -> Job:
        """Create (or dedup onto) a job for one submission document."""
        kind, parsed = parse_submission(document)
        if kind == "scenario":
            spec, seed, trials = parsed
            return self._submit_scenario(spec, seed, trials)
        return self._submit_campaign(parsed)

    def _new_job_locked(self, *args, **kwargs) -> Job:
        self._counter += 1
        job = Job(f"job-{self._counter:06d}", *args, **kwargs)
        self._jobs[job.job_id] = job
        self._metric_inc("repro_jobs_submitted_total")
        return job

    def _submit_scenario(self, spec: ScenarioSpec, seed: int, trials: int) -> Job:
        spec_hash = spec.spec_hash()
        key = stable_hash(
            {"kind": "scenario-run", "spec": spec_hash, "seed": seed, "trials": trials}
        )
        pending: list[tuple[Job, JobTask, str]] = []
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                job = self._jobs[inflight]
                job.deduped = True
                self._metric_inc("repro_jobs_dedup_inflight_total")
                return job
            job = self._new_job_locked(
                "scenario",
                spec_hash=spec_hash,
                description=spec.describe(),
                master_seed=seed,
                trials=trials,
            )
            task = JobTask(
                label=scenario_shard_id(spec_hash, seed, trials),
                kind="scenario",
                payload={
                    "spec": spec.canonical_dict(),
                    "spec_hash": spec_hash,
                    "master_seed": seed,
                    "trials": trials,
                },
                build_record=lambda record, seconds: scenario_record(
                    spec, seed, trials, record, seconds=seconds
                ),
            )
            job.tasks.append(task)
            cached = self._cached_scenario(spec_hash, seed, trials)
            if cached is not None:
                self._mark_cached(job, task, cached)
            else:
                self._inflight[key] = job.job_id
                pending.append((job, task, key))
        if not pending:
            self._finish(job, key=None)
        else:
            self._launch(pending)
        return job

    def _submit_campaign(self, spec: CampaignSpec) -> Job:
        spec.validate()
        key = stable_hash({"kind": "campaign-run", "spec": spec.spec_hash()})
        pending: list[tuple[Job, JobTask, str]] = []
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                job = self._jobs[inflight]
                job.deduped = True
                self._metric_inc("repro_jobs_dedup_inflight_total")
                return job
            job = self._new_job_locked(
                "campaign",
                spec_hash=spec.spec_hash(),
                description=spec.describe(),
            )
            for shard in spec.shards():
                task = JobTask(
                    label=shard.shard_id,
                    kind="campaign-shard",
                    payload={
                        "experiment": shard.experiment,
                        "scale": shard.scale,
                        "engine": shard.engine,
                        "master_seed": shard.master_seed,
                    },
                    build_record=(
                        lambda record, seconds, shard=shard: shard_record(
                            shard, record, seconds=seconds
                        )
                    ),
                )
                job.tasks.append(task)
                cached = self._cached_shard(shard)
                if cached is not None:
                    self._mark_cached(job, task, cached)
                else:
                    pending.append((job, task, key))
            if pending:
                self._inflight[key] = job.job_id
        if not pending:
            self._finish(job, key=None)
        else:
            self._launch(pending)
        return job

    def _launch(self, pending: list[tuple[Job, JobTask, str]]) -> None:
        """Queue pending tasks on the pool (outside the manager lock)."""
        for job, task, key in pending:
            if job.state == "queued":
                job.state = "running"
                self._emit(job, {"event": "job", "job": job.job_id, "status": "running"})
            self.pool.submit(
                task.kind,
                task.payload,
                self._pool_callback(job, task, key),
            )

    # ------------------------------------------------------------------
    # Cache lookups (caller holds the manager lock)
    # ------------------------------------------------------------------
    def _cached_scenario(
        self, spec_hash: str, seed: int, trials: int
    ) -> Optional[dict]:
        matches = [
            record
            for record in self.store.find(spec_hash, seed)
            if int(record.get("trials", -1)) == trials
        ]
        return matches[-1] if matches else None

    def _cached_shard(self, shard: Shard) -> Optional[dict]:
        matches = self.store.find(shard.spec_hash(), shard.master_seed)
        return matches[-1] if matches else None

    def _mark_cached(self, job: Job, task: JobTask, record: dict) -> None:
        task.status = "resumed"
        task.cached = True
        task.record = record
        self._metric_inc("repro_jobs_dedup_store_total")
        self._emit(
            job,
            {
                "event": "shard",
                "job": job.job_id,
                "shard": task.label,
                "status": "resumed",
                "cached": True,
            },
        )

    # ------------------------------------------------------------------
    # Pool callbacks (monitor thread)
    # ------------------------------------------------------------------
    def _pool_callback(self, job: Job, task: JobTask, key: str):
        def on_event(event: str, info: Optional[dict]) -> None:
            if event == "started":
                task.status = "running"
                self._emit(
                    job,
                    {
                        "event": "shard",
                        "job": job.job_id,
                        "shard": task.label,
                        "status": "start",
                    },
                )
            elif event == "requeued":
                task.status = "pending"
                task.requeues += 1
                self._emit(
                    job,
                    {
                        "event": "shard",
                        "job": job.job_id,
                        "shard": task.label,
                        "status": "requeued",
                        "requeues": task.requeues,
                    },
                )
            elif event == "done":
                record = task.build_record(info["record"], info["seconds"])
                try:
                    self.store.append(record)
                except ReproError as exc:  # pragma: no cover - disk trouble
                    task.status = "failed"
                    job.error = f"store append failed: {exc}"
                else:
                    task.record = record
                    task.seconds = float(info["seconds"])
                    task.status = "done"
                if self.metrics is not None:
                    self.metrics.observe_seconds(
                        "repro_job_task_exec_seconds", float(info["seconds"])
                    )
                    for counter, value in (info.get("counters") or {}).items():
                        if counter.startswith("serve.spec_cache."):
                            suffix = counter.rsplit(".", 1)[1]
                            self.metrics.inc(
                                f"repro_worker_spec_cache_{suffix}_total", value
                            )
                done_event = {
                    "event": "shard",
                    "job": job.job_id,
                    "shard": task.label,
                    "status": "done" if task.status == "done" else "error",
                    "seconds": round(float(info["seconds"]), 6),
                }
                # Per-job phase timings ride the NDJSON stream: the
                # worker's trace recorder attributes its wall time to
                # engine phases (nanoseconds, repro.obs phase taxonomy).
                if info.get("phases"):
                    done_event["phases"] = info["phases"]
                self._emit(job, done_event)
                self._maybe_finish(job, key)
            elif event == "error":
                task.status = "failed"
                job.error = info["message"] if info else "task failed"
                self._emit(
                    job,
                    {
                        "event": "shard",
                        "job": job.job_id,
                        "shard": task.label,
                        "status": "error",
                        "message": job.error,
                    },
                )
                self._maybe_finish(job, key)

        return on_event

    def _maybe_finish(self, job: Job, key: Optional[str]) -> None:
        if all(task.terminal for task in job.tasks):
            self._finish(job, key=key)

    def _finish(self, job: Job, *, key: Optional[str]) -> None:
        job.state = (
            "failed" if any(t.status == "failed" for t in job.tasks) else "done"
        )
        self._metric_inc(
            "repro_jobs_failed_total" if job.state == "failed" else "repro_jobs_done_total"
        )
        if self.metrics is not None:
            self.metrics.observe_seconds(
                "repro_job_seconds", max(0.0, time.time() - job.created)
            )
        if key is not None:
            with self._lock:
                self._inflight.pop(key, None)
        self._emit(
            job,
            {
                "event": "job",
                "job": job.job_id,
                "status": job.state,
                "shards": job.shard_summary(),
            },
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _emit(self, job: Job, event: dict) -> None:
        with job.cond:
            event["seq"] = len(job.events)
            job.events.append(event)
            job.cond.notify_all()


def stream_events(job: Job, *, from_seq: int = 0, poll: float = 0.5) -> Iterator[dict]:
    """Yield a job's events in order, blocking until it finishes.

    Replays history from ``from_seq``, then follows live appends; the
    iterator ends once the job is terminal and fully drained. This is
    the generator behind ``GET /v1/runs/<id>/events``.
    """
    while True:
        with job.cond:
            while len(job.events) <= from_seq and not job.terminal:
                job.cond.wait(timeout=poll)
            batch = list(job.events[from_seq:])
            terminal = job.terminal
        for event in batch:
            yield event
        from_seq += len(batch)
        if terminal and not batch:
            return
