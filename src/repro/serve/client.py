"""``SimulationClient``: the blessed urllib client for a serve instance.

A thin, dependency-free wrapper over the JSON API — every method maps
one-to-one onto an endpoint of :mod:`repro.serve.server`. The CLI
verbs ``repro submit`` and ``repro jobs`` are built on it, and tests
use it to drive a live server without hand-rolling sockets.

The one convenience with behavior in it is :meth:`SimulationClient.run`:
submit, follow the event stream to completion, return the finished job
payload. On a cache hit the event stream is already terminal, so
``run`` returns immediately with ``shards.executed == 0``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional

from repro.core.errors import ServeError

__all__ = ["SimulationClient"]


class SimulationClient:
    """Talk to a running serve instance at ``base_url``.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8013`` (trailing slash tolerated).
    timeout:
        Socket timeout for request/response endpoints, seconds. The
        event stream ignores it (a shard may legitimately compute for
        longer than any sane socket timeout).
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}", method=method
        )
        data = None
        if body is not None:
            data = json.dumps(body).encode("ascii")
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(
                request, data=data, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServeError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach serve instance at {self.base_url}: {exc.reason}"
            ) from exc

    # -- endpoints, one-to-one -----------------------------------------
    def submit(self, document: object) -> dict:
        """``POST /v1/runs`` — returns the job payload (see ``id``)."""
        return self._request("POST", "/v1/runs", document)

    def job(self, job_id: str) -> dict:
        """``GET /v1/runs/<id>`` — full job payload with task detail."""
        return self._request("GET", f"/v1/runs/{job_id}")

    def jobs(self) -> list[dict]:
        """``GET /v1/runs`` — all jobs, oldest first."""
        return self._request("GET", "/v1/runs")["jobs"]

    def components(self) -> dict:
        """``GET /v1/components`` — the registry payload."""
        return self._request("GET", "/v1/components")

    def health(self) -> dict:
        """``GET /v1/health`` — pool and job counters."""
        return self._request("GET", "/v1/health")

    def results(
        self, spec_hash: Optional[str] = None, seed: Optional[int] = None
    ) -> dict:
        """``GET /v1/results`` — store query (all aggregates, or one key)."""
        if spec_hash is None:
            return self._request("GET", "/v1/results")
        path = f"/v1/results?spec_hash={spec_hash}"
        if seed is not None:
            path += f"&seed={seed}"
        return self._request("GET", path)

    def events(self, job_id: str, *, from_seq: int = 0) -> Iterator[dict]:
        """``GET /v1/runs/<id>/events`` — yield NDJSON events until the
        job finishes (blocks while the job runs)."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/runs/{job_id}/events?from={from_seq}"
        )
        try:
            with urllib.request.urlopen(request) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServeError(
                f"event stream for {job_id} failed ({exc.code})"
            ) from exc

    # -- convenience ---------------------------------------------------
    def run(self, document: object, *, poll: float = 0.2) -> dict:
        """Submit and wait: returns the terminal job payload.

        Follows the event stream (not a polling loop) while the job
        runs, then fetches the final payload — which carries the
        aggregate rows and, for spec runs, the batch ``result``.
        """
        submitted = self.submit(document)
        job_id = submitted["id"]
        if submitted["state"] in ("done", "failed"):
            return self.job(job_id)
        for _event in self.events(job_id):
            pass
        # The stream closes when the job turns terminal; one re-fetch
        # gets the payload with aggregates attached.
        deadline = time.monotonic() + self.timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:  # pragma: no cover - safety net
                raise ServeError(f"job {job_id} did not settle after its events ended")
            time.sleep(poll)
