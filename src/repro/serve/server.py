"""The HTTP face of the serve layer: stdlib-only JSON over TCP.

:class:`ReproServer` glues a :class:`http.server.ThreadingHTTPServer`
to one :class:`~repro.serve.jobs.JobManager` (and, through it, one
:class:`~repro.campaign.store.ResultStore` and one
:class:`~repro.serve.pool.WorkerPool`). Endpoints:

========================  ====================================================
``POST /v1/runs``         submit a spec document → job payload (``id``, state,
                          shard counters). Identical spec+seed dedupes against
                          the store (cached aggregate, zero shards executed)
                          and against in-flight jobs (``deduped: true``).
``GET /v1/runs``          list jobs, newest last (``repro jobs`` reads this).
``GET /v1/runs/<id>``     one job, with per-task detail and — once terminal —
                          its aggregate rows (store-shaped, byte-comparable).
``GET /v1/runs/<id>/events``  line-delimited JSON stream of the shard
                          lifecycle (``start``/``done``/``resumed``/
                          ``requeued``), replaying from ``?from=<seq>`` and
                          following live until the job finishes.
``GET /v1/components``    :func:`repro.cli.components_payload`, verbatim —
                          the same truth ``repro components --json`` prints.
``GET /v1/results``       ResultStore query: ``?spec_hash=&seed=`` runs
                          :meth:`~repro.campaign.store.ResultStore.find`;
                          bare, it returns the aggregate rows.
``GET /v1/health``        pool liveness/warmth + job counts.
``GET /v1/metrics``       Prometheus text exposition (0.0.4): pool worker
                          lifecycle and requeue/crash-loop counters, job and
                          task duration histograms, dedup hits — rendered
                          from the server's
                          :class:`~repro.obs.prometheus.MetricsRegistry`.
========================  ====================================================

Transport choices, deliberately boring: ``HTTP/1.0`` (close-delimited
bodies, so the event stream needs no chunked encoding), one thread per
connection (the threading server), all JSON. Anything that speaks
``urllib`` or ``curl`` is a client; :mod:`repro.serve.client` is the
blessed one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.campaign.store import ResultStore
from repro.core.errors import ReproError, ServeError
from repro.obs.prometheus import MetricsRegistry, render_prometheus
from repro.serve.jobs import JobManager, stream_events
from repro.serve.pool import WorkerPool

__all__ = ["ReproServer", "DEFAULT_PORT"]

#: The paper year, as a port.
DEFAULT_PORT = 8013


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.0: every response is delimited by connection close, which
    # lets the events endpoint stream NDJSON with no chunked framing.
    protocol_version = "HTTP/1.0"
    server_version = "repro-serve/1"

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.repro_server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        self.server.repro_server._log(  # type: ignore[attr-defined]
            "%s %s" % (self.address_string(), format % args)
        )

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("empty request body (expected a JSON document)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["v1", "components"]:
                from repro.cli import components_payload

                self._send_json(components_payload())
            elif parts == ["v1", "health"]:
                self._send_json(self.server.repro_server.health())  # type: ignore[attr-defined]
            elif parts == ["v1", "metrics"]:
                self._send_metrics()
            elif parts == ["v1", "results"]:
                self._send_json(self._results_payload(query))
            elif parts == ["v1", "runs"]:
                self._send_json(
                    {"jobs": [job.to_payload() for job in self.manager.jobs()]}
                )
            elif len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                self._send_json(self.manager.job(parts[2]).to_payload(detail=True))
            elif len(parts) == 4 and parts[:2] == ["v1", "runs"] and parts[3] == "events":
                self._stream_events(parts[2], query)
            else:
                self._send_error_json(404, f"no such endpoint: GET {url.path}")
        except ServeError as exc:
            self._send_error_json(404 if "unknown job id" in str(exc) else 400, str(exc))
        except ReproError as exc:
            self._send_error_json(400, str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "runs"]:
                document = self._read_body()
                job = self.manager.submit(document)
                self._send_json(job.to_payload(), status=202)
            else:
                self._send_error_json(404, f"no such endpoint: POST {url.path}")
        except (ServeError, ReproError) as exc:
            self._send_error_json(400, str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            # Malformed spec documents (bad refs, wrong shapes) surface
            # as client errors, never as a dead connection.
            self._send_error_json(400, f"{type(exc).__name__}: {exc}")

    # -- endpoint bodies ----------------------------------------------
    def _send_metrics(self) -> None:
        text = render_prometheus(self.server.repro_server.metrics)  # type: ignore[attr-defined]
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _results_payload(self, query: dict) -> dict:
        store: ResultStore = self.manager.store
        spec_hash = query.get("spec_hash", [None])[0]
        if spec_hash is not None:
            seed_raw = query.get("seed", [None])[0]
            seed = int(seed_raw) if seed_raw is not None else None
            return {"records": store.find(spec_hash, seed)}
        return {"aggregates": json.loads(store.aggregates_json())}

    def _stream_events(self, job_id: str, query: dict) -> None:
        job = self.manager.job(job_id)
        from_seq = int(query.get("from", ["0"])[0])
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for event in stream_events(job, from_seq=from_seq):
                self.wfile.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("ascii")
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; nothing to clean up


class ReproServer:
    """One serve instance: store + pool + job manager + HTTP listener.

    Usable as a context manager (tests) or via :meth:`serve_forever`
    (the ``repro serve`` CLI verb). ``port=0`` binds an ephemeral port;
    read it back from :attr:`port`.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        quiet: bool = True,
    ) -> None:
        self.store = store
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(workers=workers, metrics=self.metrics)
        self.manager = JobManager(store, self.pool, metrics=self.metrics)
        self.quiet = quiet
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- introspection -------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self) -> dict:
        jobs = self.manager.jobs()
        return {
            "service": "repro-serve",
            "store": str(self.store.root),
            "pool": self.pool.describe(),
            "jobs": {
                "total": len(jobs),
                "running": sum(1 for j in jobs if not j.terminal),
            },
        }

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[serve] {message}")

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ReproServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI use)."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.pool.shutdown()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
