"""Trial runner: one execution, many executions, aggregated statistics.

The paper's complexity measure is *rounds until the problem is solved*,
with high probability over the algorithm's coins. The runner mirrors
that: a :func:`run_broadcast_trial` executes one algorithm/adversary/
problem triple to completion (or a round cap) and
:func:`run_broadcast_trials` repeats it over independent seeds,
reporting the distribution (mean/median/percentiles) plus the success
rate under the cap.

Scenario factories (:class:`Scenario`) package the whole triple so
sweeps can rebuild fresh state per trial — adversaries and processes
are stateful and must never be reused across executions.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # executors live above this layer; type-only import
    from repro.api.executor import TrialExecutor

from repro.adversaries.base import LinkProcess
from repro.algorithms.base import AlgorithmSpec
from repro.core.engine import ExecutionResult, create_engine
from repro.core.rng import derive_seed
from repro.graphs.dual_graph import DualGraph
from repro.problems.base import Problem

__all__ = [
    "PreparedTrial",
    "Scenario",
    "TrialResult",
    "TrialStats",
    "run_broadcast_trial",
    "run_prepared_trial",
    "probe_engine_fallbacks",
    "run_bank_trials",
    "run_broadcast_trials",
]


@dataclass
class PreparedTrial:
    """Everything one execution needs, freshly constructed.

    ``engine`` selects the round-loop implementation
    (:data:`repro.core.engine.ENGINE_NAMES`): ``"reference"``, the
    seed-for-seed identical ``"bitset"`` fast path, or ``"bank"`` —
    also seed-for-seed identical, and additionally batched *across
    trials* when a whole seed bank reaches :func:`run_bank_trials`.

    ``mac`` (optional) is the trial's abstract MAC layer
    (:class:`repro.mac.base.AbstractMACLayer`). Engine-mode layers are
    already compiled into the algorithm's processes and change nothing
    here; an *oracle*-mode layer replaces the round loop entirely —
    :func:`run_prepared_trial` routes such trials to the event-driven
    simulation in :mod:`repro.mac.oracle`.

    ``skip`` controls event-driven round skipping (``None`` = the
    resolved engine's default: on for the fast engines, off for
    ``reference``); like the engine choice it cannot change results.
    ``label`` names the scenario in engine-fallback warnings.
    """

    network: DualGraph
    algorithm: AlgorithmSpec
    link_process: LinkProcess
    problem: Problem
    max_rounds: int
    validate_topologies: bool = False
    engine: str = "reference"
    mac: object = None
    skip: Optional[bool] = None
    label: Optional[str] = None


#: A scenario builds a fresh :class:`PreparedTrial` from a trial seed.
Scenario = Callable[[int], PreparedTrial]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one execution."""

    solved: bool
    rounds: int
    seed: int

    def rounds_to_solve(self) -> int:
        if not self.solved:
            raise ValueError(f"trial (seed={self.seed}) did not solve within the cap")
        return self.rounds


@dataclass
class TrialStats:
    """Aggregate over independent trials of one scenario."""

    results: list[TrialResult] = field(default_factory=list)

    def add(self, result: TrialResult) -> None:
        self.results.append(result)

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def successes(self) -> int:
        return sum(1 for r in self.results if r.solved)

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def solved_rounds(self) -> list[int]:
        """Round counts of successful trials (unsolved trials excluded)."""
        return [r.rounds for r in self.results if r.solved]

    def _all_rounds_censored(self) -> list[int]:
        """Round counts with unsolved trials censored at their cap."""
        return [r.rounds for r in self.results]

    @property
    def mean_rounds(self) -> float:
        """Mean rounds, censored at the cap for unsolved trials.

        Censoring biases the estimate *downward*, which is conservative
        for lower-bound experiments (measured growth only understates
        the true cost).
        """
        rounds = self._all_rounds_censored()
        return statistics.fmean(rounds) if rounds else math.nan

    @property
    def median_rounds(self) -> float:
        rounds = self._all_rounds_censored()
        return float(statistics.median(rounds)) if rounds else math.nan

    def percentile_rounds(self, q: float) -> float:
        """Inclusive percentile ``q ∈ [0, 100]`` of (censored) rounds."""
        rounds = sorted(self._all_rounds_censored())
        if not rounds:
            return math.nan
        if len(rounds) == 1:
            return float(rounds[0])
        position = (q / 100.0) * (len(rounds) - 1)
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return float(rounds[low])
        weight = position - low
        return rounds[low] * (1.0 - weight) + rounds[high] * weight

    @property
    def stdev_rounds(self) -> float:
        rounds = self._all_rounds_censored()
        return statistics.pstdev(rounds) if len(rounds) > 1 else 0.0

    def summary_row(self) -> dict:
        """Dict row for the table renderers."""
        return {
            "trials": self.trials,
            "success": f"{self.success_rate:.0%}",
            "median": self.median_rounds,
            "mean": round(self.mean_rounds, 1),
            "p90": round(self.percentile_rounds(90.0), 1),
        }

    def to_record(self) -> dict:
        """JSON-safe, seed-determined aggregate of the whole batch.

        The spec-run analogue of
        :meth:`~repro.experiments.registry.ExperimentResult.to_record`:
        a pure function of ``(scenario, master_seed, trials)`` with no
        timings or host details, so the serve layer can checkpoint it
        and assert byte-identity between a service run and a direct
        :class:`~repro.api.executor.TrialExecutor` run. Per-trial
        outcomes are included — they are the ground truth the summary
        statistics derive from.
        """
        return {
            "trials": self.trials,
            "successes": self.successes,
            "median_rounds": self.median_rounds,
            "mean_rounds": self.mean_rounds,
            "p90_rounds": self.percentile_rounds(90.0),
            "results": [
                {"seed": r.seed, "rounds": r.rounds, "solved": r.solved}
                for r in self.results
            ],
        }


def run_prepared_trial(
    trial: PreparedTrial, seed: int, *, observer=None, warn_fallback: bool = True
) -> TrialResult:
    """Execute one prepared trial to completion or its round cap.

    ``observer`` (optional) substitutes a caller-held problem observer
    for the freshly made one, so callers that need per-problem detail
    beyond the :class:`TrialResult` (e.g. per-message completion
    rounds) can read it off after the run instead of duplicating the
    engine-invocation sequence. Ignored on the oracle path, which has
    no engine rounds to observe.

    ``warn_fallback=False`` suppresses :class:`EngineFallbackWarning`
    emission — executors pass it for every trial after the first so a
    degraded scenario warns once per batch, not once per trial.
    """
    mac = trial.mac
    if mac is not None and getattr(mac, "mode", "engine") == "oracle":
        # Oracle-mode MAC layers skip the radio engine: delays are
        # sampled straight from the guarantee envelopes.
        from repro.mac.oracle import run_oracle_trial

        return run_oracle_trial(trial, seed)
    network = trial.network
    processes = trial.algorithm.build_processes(
        network.n, network.max_degree, seed=seed
    )
    if observer is None:
        observer = trial.problem.make_observer()
    engine = create_engine(
        network,
        processes,
        trial.link_process,
        engine=trial.engine,
        seed=seed,
        algorithm_info=trial.algorithm.info(),
        validate_topologies=trial.validate_topologies,
        observers=[observer],
        skip=trial.skip,
        label=trial.label,
        warn=warn_fallback,
    )
    result: ExecutionResult = engine.run(
        max_rounds=trial.max_rounds, stop=lambda: observer.solved
    )
    return TrialResult(solved=result.solved, rounds=result.rounds, seed=seed)


def probe_engine_fallbacks(trial: PreparedTrial, seed: int) -> list[str]:
    """The :class:`EngineFallbackWarning` texts this trial would emit.

    Builds the trial's processes (cheap relative to a run) and resolves
    the engine + skip choice exactly as :func:`run_prepared_trial`
    will, *without* emitting anything — executors call this once per
    scenario, warn once with the scenario label attached, and then run
    every trial with ``warn_fallback=False``. Oracle-mode MAC trials
    have no engine and therefore no fallbacks.
    """
    mac = trial.mac
    if mac is not None and getattr(mac, "mode", "engine") == "oracle":
        return []
    from repro.core.engine import resolve_engine_choice

    processes = trial.algorithm.build_processes(
        trial.network.n, trial.network.max_degree, seed=seed
    )
    _, _, notes = resolve_engine_choice(
        trial.engine, processes, trial.link_process, skip=trial.skip
    )
    if trial.label:
        notes = [f"{note} [scenario: {trial.label}]" for note in notes]
    return notes


def run_bank_trials(
    scenario: Scenario,
    seeds: Sequence[int],
    *,
    first: Optional[PreparedTrial] = None,
    warn_fallback: bool = True,
) -> list[TrialResult]:
    """Run a whole seed bank of one scenario through the bank engine.

    This is the cross-trial entry point ``engine="bank"`` exists for:
    every seed's trial becomes one lane of a shared struct-of-arrays
    kernel, and :func:`repro.core.bankpath.run_bank_batch` advances all
    lanes in lockstep rounds with batched coins and (where topologies
    coincide) batched reception. Results are identical to running each
    seed through :func:`run_prepared_trial` — only the batching axis
    changes.

    ``first`` optionally passes a pre-built (and still unused) trial
    for ``seeds[0]`` so executors that peeked at the scenario don't pay
    the build twice. Trials the batch cannot serve — oracle-mode MAC
    layers, adaptive adversaries (which fall back to the reference
    engine per trial, with the usual warning), or banks whose trials
    disagree on the node count — take the per-trial path instead.
    Heterogeneous ``max_rounds`` is fine: each lane carries its own cap
    and retires from the lockstep batch when it reaches it.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    trials = [
        first if index == 0 and first is not None else scenario(seed)
        for index, seed in enumerate(seeds)
    ]

    def _per_trial() -> list[TrialResult]:
        # The first trial carries the (once-per-batch) fallback warning.
        return [
            run_prepared_trial(t, s, warn_fallback=warn_fallback and i == 0)
            for i, (t, s) in enumerate(zip(trials, seeds))
        ]

    lead = trials[0]
    mac = lead.mac
    if mac is not None and getattr(mac, "mode", "engine") == "oracle":
        return _per_trial()
    from repro.adversaries.base import AdversaryClass

    if lead.link_process.adversary_class is not AdversaryClass.OBLIVIOUS:
        return _per_trial()
    if any(t.network.n != lead.network.n for t in trials):
        return _per_trial()

    from repro.core.bankpath import (
        BankLane,
        BankRadioNetworkEngine,
        build_bank_kernel,
        run_bank_batch,
    )

    banks = [
        trial.algorithm.build_processes(
            trial.network.n, trial.network.max_degree, seed=seed
        )
        for trial, seed in zip(trials, seeds)
    ]
    # Lanes bypass create_engine, so resolve the skip flag (and emit
    # any contract-gap warning, once for the whole bank) here.
    from repro.core.engine import resolve_engine_choice
    from repro.core.errors import EngineFallbackWarning

    _, resolved_skip, notes = resolve_engine_choice(
        "bank", banks[0], lead.link_process, skip=lead.skip
    )
    if warn_fallback:
        import warnings

        from repro.obs.recorder import inc as _obs_inc

        for note in notes:
            if lead.label:
                note = f"{note} [scenario: {lead.label}]"
            _obs_inc("engine.fallback.warned")
            warnings.warn(note, EngineFallbackWarning, stacklevel=2)
    kernel = build_bank_kernel(banks)
    lanes = []
    for lane_index, (trial, seed) in enumerate(zip(trials, seeds)):
        observer = trial.problem.make_observer()
        engine = BankRadioNetworkEngine(
            trial.network,
            banks[lane_index],
            trial.link_process,
            seed=seed,
            algorithm_info=trial.algorithm.info(),
            validate_topologies=trial.validate_topologies,
            observers=[observer],
            kernel=kernel,
            lane=lane_index,
            skip=resolved_skip,
        )
        lanes.append(
            BankLane(
                engine=engine,
                stop=(lambda obs=observer: obs.solved),
                max_rounds=trial.max_rounds,
            )
        )
    results = run_bank_batch(
        lanes, max_rounds=max(t.max_rounds for t in trials)
    )
    return [
        TrialResult(solved=res.solved, rounds=res.rounds, seed=seed)
        for res, seed in zip(results, seeds)
    ]


def run_broadcast_trial(
    *,
    network: DualGraph,
    algorithm: AlgorithmSpec,
    link_process: LinkProcess,
    problem: Optional[Problem] = None,
    seed: int,
    max_rounds: Optional[int] = None,
    validate_topologies: bool = False,
    engine: str = "reference",
    skip: Optional[bool] = None,
) -> TrialResult:
    """Convenience single-trial entry point (used by examples/tests).

    When ``problem`` is omitted it is inferred from the algorithm's
    metadata (``problem`` + ``source``/``broadcasters`` keys every
    factory in :mod:`repro.algorithms` fills in).
    """
    if problem is None:
        problem = infer_problem(network, algorithm)
    cap = max_rounds if max_rounds is not None else default_round_cap(network.n)
    trial = PreparedTrial(
        network=network,
        algorithm=algorithm,
        link_process=link_process,
        problem=problem,
        max_rounds=cap,
        validate_topologies=validate_topologies,
        engine=engine,
        skip=skip,
    )
    return run_prepared_trial(trial, seed)


def run_broadcast_trials(
    scenario: Scenario,
    *,
    trials: int,
    master_seed: int,
    label: object = "trial",
    executor: Optional["TrialExecutor"] = None,
) -> TrialStats:
    """Run ``trials`` independent executions of a scenario.

    Per-trial seeds derive from ``(master_seed, label, index)``, so the
    batch is reproducible from one seed and independent of *where* the
    trials run: pass an ``executor`` (see :mod:`repro.api.executor`) to
    fan the batch out — e.g. ``ParallelExecutor()`` across cores for a
    picklable scenario such as a :class:`~repro.api.spec.ScenarioSpec` —
    with results identical to the default in-process loop.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    seeds = [derive_seed(master_seed, label, index) for index in range(trials)]
    if executor is None:
        # Lazy import: the executors layer sits above this module.
        from repro.api.executor import SerialExecutor

        executor = SerialExecutor()
    stats = TrialStats()
    for result in executor.run_trials(scenario, seeds):
        stats.add(result)
    return stats


def default_round_cap(n: int) -> int:
    """A generous default cap: the paper's footnote-5 ``n²`` fallback,
    floored for small graphs."""
    return max(4 * n * n, 4096)


def infer_problem(network: DualGraph, algorithm: AlgorithmSpec) -> Problem:
    """Build the problem instance an algorithm's metadata declares."""
    from repro.problems.global_broadcast import GlobalBroadcastProblem
    from repro.problems.local_broadcast import LocalBroadcastProblem

    kind = algorithm.metadata.get("problem")
    if kind == "global-broadcast":
        return GlobalBroadcastProblem(network, int(algorithm.metadata["source"]))
    if kind == "local-broadcast":
        return LocalBroadcastProblem(
            network, frozenset(algorithm.metadata["broadcasters"])
        )
    raise ValueError(
        f"algorithm {algorithm.name!r} does not declare a problem; pass one explicitly"
    )
