"""Parameter sweeps: one scenario family across a parameter range.

A sweep is how every Figure-1 cell becomes an empirical claim: fix a
scenario family (algorithm + adversary + network family + problem),
vary one parameter (usually ``n``, sometimes ``D`` or ``Δ``), run
independent trials per point, and hand the medians to the model fitter
to recover the growth shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generic, Optional, Sequence, TypeVar

if TYPE_CHECKING:  # executors live above this layer; type-only import
    from repro.api.executor import TrialExecutor

from repro.analysis.runner import Scenario, TrialStats, run_broadcast_trials
from repro.core.rng import derive_seed

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]

P = TypeVar("P")


@dataclass
class SweepPoint(Generic[P]):
    """One parameter value's aggregated trials."""

    parameter: P
    stats: TrialStats
    #: Wall-clock seconds this point's trials took. Deliberately
    #: excluded from :meth:`SweepResult.to_dict` and from comparisons —
    #: serialized sweeps stay a pure function of their seeds; benches
    #: read this to attribute cost per cell (see ``benchmarks/``).
    seconds: Optional[float] = field(default=None, compare=False)

    @property
    def median_rounds(self) -> float:
        return self.stats.median_rounds

    @property
    def mean_rounds(self) -> float:
        return self.stats.mean_rounds


@dataclass
class SweepResult(Generic[P]):
    """All points of one sweep, in parameter order."""

    name: str
    points: list[SweepPoint[P]] = field(default_factory=list)

    def parameters(self) -> list[P]:
        return [point.parameter for point in self.points]

    def medians(self) -> list[float]:
        return [point.median_rounds for point in self.points]

    def means(self) -> list[float]:
        return [point.mean_rounds for point in self.points]

    def success_rates(self) -> list[float]:
        return [point.stats.success_rate for point in self.points]

    def growth_ratios(self) -> list[float]:
        """Successive median ratios — the quick-look scaling signal.

        For a parameter doubling sweep, ratios ≈ 2 mean linear growth,
        ≈ 1 mean polylog, ≈ √2 mean square-root.
        """
        medians = self.medians()
        return [
            medians[i + 1] / medians[i] if medians[i] > 0 else float("nan")
            for i in range(len(medians) - 1)
        ]

    def as_rows(self) -> list[dict]:
        """Table rows (parameter + the stats summary)."""
        rows = []
        for point in self.points:
            row = {"param": point.parameter}
            row.update(point.stats.summary_row())
            rows.append(row)
        return rows

    def to_dict(self) -> dict:
        """JSON-safe summary of the sweep.

        Only seed-determined aggregates are included (no wall-clock or
        host details), so two runs of the same sweep serialize to
        byte-identical JSON — the property the campaign
        :class:`~repro.campaign.store.ResultStore` checkpoints rely on.
        """
        return {
            "name": self.name,
            "parameters": list(self.parameters()),
            "medians": self.medians(),
            "means": self.means(),
            "success_rates": self.success_rates(),
        }


def run_sweep(
    name: str,
    parameters: Sequence[P],
    scenario_for: Callable[[P], Scenario],
    *,
    trials: int,
    master_seed: int,
    progress: Optional[Callable[[P, TrialStats], None]] = None,
    executor: Optional["TrialExecutor"] = None,
) -> SweepResult[P]:
    """Run ``trials`` executions of ``scenario_for(p)`` at every ``p``.

    Seeds are derived per ``(master_seed, name, parameter)`` so points
    are independent and the whole sweep is reproducible from one seed —
    including under a parallel ``executor``, which changes only *where*
    trials run, never their results.
    """
    result: SweepResult[P] = SweepResult(name=name)
    for parameter in parameters:
        started = time.perf_counter()
        stats = run_broadcast_trials(
            scenario_for(parameter),
            trials=trials,
            master_seed=derive_seed(master_seed, name, repr(parameter)),
            label=(name, repr(parameter)),
            executor=executor,
        )
        result.points.append(
            SweepPoint(
                parameter=parameter,
                stats=stats,
                seconds=time.perf_counter() - started,
            )
        )
        if progress is not None:
            progress(parameter, stats)
    return result
