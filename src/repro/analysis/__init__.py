"""Experiment harness: from single executions to Figure-1 style claims.

The paper states asymptotic bounds; the reproduction's claims are
*measured growth shapes*. This package is the pipeline that turns
engine executions into those claims, bottom-up:

* :mod:`repro.analysis.runner` — one trial
  (:func:`run_prepared_trial`: build processes, pick an engine via
  :func:`repro.core.engine.create_engine`, run to the problem
  observer's stop condition) and batches of independent trials with
  per-seed derivation (:func:`run_broadcast_trials`), aggregated into
  :class:`TrialStats` (success rate, censored medians/percentiles —
  censoring at the round cap is conservative for lower bounds).

* :mod:`repro.analysis.sweep` — one scenario family across a swept
  parameter (``n``, ``D``, ``Δ``): the empirical analogue of "as n
  grows", and the unit every Figure-1 cell is measured in.

* :mod:`repro.analysis.fitting` — turns sweep medians into shape
  verdicts: log-log power-law slopes, candidate-model selection
  (``log n``, ``log² n``, ``√n``, ``n`` …), and the coarse
  :func:`~repro.analysis.fitting.classify_growth` classes
  (sublinear / near-linear) that the experiment registry asserts —
  robust claims, since neighbouring fine-grained models are
  indistinguishable at laptop scale.

* :mod:`repro.analysis.progress` — trajectory diagnostics (informed
  curves, per-hop latencies): *how* a broadcast advances, which is
  where algorithm mechanisms and attack effects become visible before
  they show up in the endpoint round counts.

* :mod:`repro.analysis.tables` — fixed-width/Markdown rendering shared
  by the CLI, benches, and EXPERIMENTS.md so reports diff cleanly.

Everything here is engine-agnostic: trials built from specs honor the
spec's ``engine`` field, and statistics are identical under the
reference and bitset engines by the equivalence guarantee.
"""

from repro.analysis.fitting import (
    STANDARD_MODELS,
    ModelFit,
    PowerLawFit,
    best_model_name,
    fit_model,
    fit_power_law,
    select_model,
)
from repro.analysis.runner import (
    PreparedTrial,
    Scenario,
    TrialResult,
    TrialStats,
    default_round_cap,
    infer_problem,
    run_broadcast_trial,
    run_broadcast_trials,
    run_prepared_trial,
)
from repro.analysis.progress import (
    ascii_sparkline,
    frontier_progress,
    informed_curve,
    per_hop_latencies,
)
from repro.analysis.sweep import SweepPoint, SweepResult, run_sweep
from repro.analysis.tables import (
    format_cell,
    render_markdown_table,
    render_table,
    rows_from_dicts,
)

__all__ = [
    "PreparedTrial",
    "Scenario",
    "TrialResult",
    "TrialStats",
    "run_broadcast_trial",
    "run_broadcast_trials",
    "run_prepared_trial",
    "default_round_cap",
    "infer_problem",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "PowerLawFit",
    "fit_power_law",
    "ModelFit",
    "fit_model",
    "select_model",
    "best_model_name",
    "STANDARD_MODELS",
    "render_table",
    "render_markdown_table",
    "format_cell",
    "rows_from_dicts",
    "informed_curve",
    "frontier_progress",
    "per_hop_latencies",
    "ascii_sparkline",
]
