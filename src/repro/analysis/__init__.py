"""Experiment harness: trial running, sweeps, shape fitting, tables."""

from repro.analysis.fitting import (
    STANDARD_MODELS,
    ModelFit,
    PowerLawFit,
    best_model_name,
    fit_model,
    fit_power_law,
    select_model,
)
from repro.analysis.runner import (
    PreparedTrial,
    Scenario,
    TrialResult,
    TrialStats,
    default_round_cap,
    infer_problem,
    run_broadcast_trial,
    run_broadcast_trials,
    run_prepared_trial,
)
from repro.analysis.progress import (
    ascii_sparkline,
    frontier_progress,
    informed_curve,
    per_hop_latencies,
)
from repro.analysis.sweep import SweepPoint, SweepResult, run_sweep
from repro.analysis.tables import (
    format_cell,
    render_markdown_table,
    render_table,
    rows_from_dicts,
)

__all__ = [
    "PreparedTrial",
    "Scenario",
    "TrialResult",
    "TrialStats",
    "run_broadcast_trial",
    "run_broadcast_trials",
    "run_prepared_trial",
    "default_round_cap",
    "infer_problem",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "PowerLawFit",
    "fit_power_law",
    "ModelFit",
    "fit_model",
    "select_model",
    "best_model_name",
    "STANDARD_MODELS",
    "render_table",
    "render_markdown_table",
    "format_cell",
    "rows_from_dicts",
    "informed_curve",
    "frontier_progress",
    "per_hop_latencies",
    "ascii_sparkline",
]
