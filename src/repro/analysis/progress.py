"""Progress analysis: how broadcasts advance, hop by hop and round by round.

The Figure-1 experiments measure the *endpoint* (rounds to solve); this
module measures the *trajectory*, which is where the algorithms'
mechanisms become visible:

* :func:`informed_curve` — cumulative informed-node counts per round
  for a global broadcast execution (from the problem observer's
  first-informed records);
* :func:`frontier_progress` — informed counts bucketed by hop distance
  from the source: the classic "frontier wave" view in which decay's
  ``O(log n)``-per-hop advance and round robin's ``n``-per-hop advance
  are immediately distinguishable;
* :func:`per_hop_latencies` — rounds spent between consecutive frontier
  advances, the quantity the ``D log n`` term bounds per hop;
* :func:`ascii_sparkline` — terminal-friendly rendering used by the
  examples.

These work on data the standard observers already collect — no extra
engine instrumentation, so trajectory analysis is free on any run that
kept its observer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graphs.dual_graph import DualGraph
from repro.problems.global_broadcast import GlobalBroadcastObserver

__all__ = [
    "informed_curve",
    "frontier_progress",
    "per_hop_latencies",
    "ascii_sparkline",
]

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def informed_curve(
    observer: GlobalBroadcastObserver, *, rounds: Optional[int] = None
) -> list[int]:
    """``curve[r]`` = number of nodes informed by the end of round ``r``.

    The source (informed at start, recorded as round ``-1``) counts from
    round 0 on. ``rounds`` defaults to the last recorded informing
    round + 1.
    """
    informing_rounds = [
        r for r in observer.first_informed_round if r is not None
    ]
    if rounds is None:
        rounds = max((r for r in informing_rounds), default=-1) + 1
    curve = []
    for r in range(rounds):
        curve.append(sum(1 for fr in informing_rounds if fr <= r))
    return curve


def frontier_progress(
    network: DualGraph,
    observer: GlobalBroadcastObserver,
) -> dict[int, Optional[int]]:
    """Round by which each hop-distance ring was *fully* informed.

    Returns ``{hop distance: round}`` where the round is when the last
    node at that ``G``-distance from the source got the message
    (``None`` if the ring never completed). Ring 0 is the source
    (round ``-1`` by convention).
    """
    distances = network.bfs_distances(observer.source)
    rings: dict[int, list[Optional[int]]] = {}
    for node, distance in enumerate(distances):
        if distance < 0:
            continue
        rings.setdefault(distance, []).append(observer.first_informed_round[node])
    completed: dict[int, Optional[int]] = {}
    for distance, rounds in sorted(rings.items()):
        if any(r is None for r in rounds):
            completed[distance] = None
        else:
            completed[distance] = max(rounds)  # type: ignore[type-var]
    return completed


def per_hop_latencies(
    network: DualGraph, observer: GlobalBroadcastObserver
) -> list[Optional[int]]:
    """Rounds between consecutive frontier-ring completions.

    ``latencies[i]`` is the gap between ring ``i`` and ring ``i+1``
    completing (``None`` once a ring never completes). The ``D log n``
    upper-bound term says these gaps are ``O(log n)`` w.h.p. for decay
    broadcast in the static model.
    """
    completion = frontier_progress(network, observer)
    latencies: list[Optional[int]] = []
    previous: Optional[int] = -1
    for distance in sorted(completion):
        if distance == 0:
            previous = completion[distance]
            continue
        current = completion[distance]
        if current is None or previous is None:
            latencies.append(None)
            previous = None
        else:
            latencies.append(current - previous)
            previous = current
    return latencies


def ascii_sparkline(values: Sequence[float], *, width: Optional[int] = None) -> str:
    """Render a numeric series as a unicode sparkline.

    Down-samples to ``width`` buckets by taking bucket maxima (peaks are
    what progress plots care about).
    """
    cleaned = [max(0.0, float(v)) for v in values]
    if not cleaned:
        return ""
    if width is not None and width > 0 and len(cleaned) > width:
        bucket = len(cleaned) / width
        cleaned = [
            max(cleaned[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    top = max(cleaned) or 1.0
    scale = len(_SPARK_LEVELS) - 1
    return "".join(_SPARK_LEVELS[round(v / top * scale)] for v in cleaned)
