"""Fixed-width and Markdown table rendering for experiment reports.

Every bench prints the Figure-1 row(s) it regenerates; these helpers
keep the formatting consistent between the console output, the
EXPERIMENTS.md record, and the test logs. No dependencies, no wrapping
cleverness — just aligned monospace columns.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_markdown_table", "format_cell", "rows_from_dicts"]


def format_cell(value: object) -> str:
    """Render one value: floats get 4 significant digits, rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _normalize(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> list[list[str]]:
    width = len(headers)
    table = []
    for row in rows:
        cells = [format_cell(cell) for cell in row]
        if len(cells) != width:
            raise ValueError(
                f"row has {len(cells)} cells but the table has {width} headers"
            )
        table.append(cells)
    return table


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Aligned monospace table with a rule under the header."""
    body = _normalize(headers, rows)
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavored Markdown table (for EXPERIMENTS.md snippets)."""
    body = _normalize(headers, rows)
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def rows_from_dicts(
    dict_rows: Sequence[Mapping[str, object]], *, headers: Sequence[str] | None = None
) -> tuple[list[str], list[list[object]]]:
    """Convert dict rows (e.g. ``SweepResult.as_rows()``) to header+rows."""
    if not dict_rows:
        return list(headers or []), []
    resolved = list(headers) if headers is not None else list(dict_rows[0].keys())
    rows = [[row.get(h, "") for h in resolved] for row in dict_rows]
    return resolved, rows
