"""Growth-shape fitting: turning sweeps into Figure-1 style claims.

The paper's results are asymptotic bounds; the reproduction's claim is
that measured round counts *grow like* the paper's expressions. Two
tools implement that:

* :func:`fit_power_law` — least-squares slope on the log-log plot.
  A slope ≈ 1 is linear (the offline adaptive cells), ≈ 0.5 is ``√n``
  (the oblivious general-graph local cell), ≈ 0 is polylog (the
  oblivious upper bounds).
* :func:`select_model` — compare candidate growth models (the actual
  bound expressions: ``n``, ``n/log n``, ``√n/log n``, ``log² n``, …)
  by best-scaled log-space residuals and report the winner. This is the
  sharper statement: "the measured series tracks ``n/log n`` better
  than ``n`` or ``log² n``."

Both operate on medians across trials, the robust centre of heavy-
tailed round distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "ModelFit",
    "fit_model",
    "select_model",
    "best_model_name",
    "STANDARD_MODELS",
    "GROWTH_CLASSES",
    "classify_growth",
]


@dataclass(frozen=True)
class PowerLawFit:
    """``rounds ≈ coefficient · parameter^exponent`` (log-log least squares)."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, parameter: float) -> float:
        return self.coefficient * parameter**self.exponent


def fit_power_law(parameters: Sequence[float], rounds: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log rounds`` against ``log parameter``."""
    if len(parameters) != len(rounds):
        raise ValueError("parameters and rounds must have equal length")
    if len(parameters) < 2:
        raise ValueError("need at least two sweep points to fit")
    if any(p <= 0 for p in parameters) or any(r <= 0 for r in rounds):
        raise ValueError("power-law fitting needs positive values")
    log_x = np.log(np.asarray(parameters, dtype=float))
    log_y = np.log(np.asarray(rounds, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    ss_res = float(np.sum((log_y - predicted) ** 2))
    ss_tot = float(np.sum((log_y - np.mean(log_y)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
    )


# ----------------------------------------------------------------------
# Model selection against the paper's bound expressions
# ----------------------------------------------------------------------
def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


#: The growth shapes appearing in Figure 1, as ``parameter ↦ value``.
STANDARD_MODELS: dict[str, Callable[[float], float]] = {
    "n": lambda n: n,
    "n^2": lambda n: n * n,
    "n log n": lambda n: n * _log2(n),
    "n / log n": lambda n: n / _log2(n),
    "sqrt(n)": lambda n: math.sqrt(n),
    "sqrt(n) / log n": lambda n: math.sqrt(n) / _log2(n),
    "sqrt(n) log n": lambda n: math.sqrt(n) * _log2(n),
    "log n": lambda n: _log2(n),
    "log^2 n": lambda n: _log2(n) ** 2,
    "log^3 n": lambda n: _log2(n) ** 3,
    "constant": lambda n: 1.0,
}


@dataclass(frozen=True)
class ModelFit:
    """One candidate model's best scaling and residual."""

    model_name: str
    scale: float
    rms_log_residual: float

    def describe(self) -> str:
        return (
            f"{self.model_name} (scale {self.scale:.3g}, "
            f"rms log-residual {self.rms_log_residual:.3f})"
        )


def fit_model(
    parameters: Sequence[float],
    rounds: Sequence[float],
    model: Callable[[float], float],
    model_name: str = "model",
) -> ModelFit:
    """Best multiplicative scale for one model, with log-space residual."""
    if len(parameters) != len(rounds) or len(parameters) < 2:
        raise ValueError("need >= 2 aligned points")
    predictions = np.asarray([model(p) for p in parameters], dtype=float)
    observed = np.asarray(rounds, dtype=float)
    if np.any(predictions <= 0) or np.any(observed <= 0):
        raise ValueError("model fitting needs positive values")
    # Optimal multiplicative scale in log space is the mean log-ratio.
    log_ratio = np.log(observed) - np.log(predictions)
    scale = float(math.exp(float(np.mean(log_ratio))))
    residuals = log_ratio - np.mean(log_ratio)
    rms = float(np.sqrt(np.mean(residuals**2)))
    return ModelFit(model_name=model_name, scale=scale, rms_log_residual=rms)


def select_model(
    parameters: Sequence[float],
    rounds: Sequence[float],
    *,
    models: Mapping[str, Callable[[float], float]] | None = None,
) -> list[ModelFit]:
    """Rank candidate models by residual (best first)."""
    candidates = models if models is not None else STANDARD_MODELS
    fits = [
        fit_model(parameters, rounds, fn, name) for name, fn in candidates.items()
    ]
    fits.sort(key=lambda fit: fit.rms_log_residual)
    return fits


def best_model_name(
    parameters: Sequence[float],
    rounds: Sequence[float],
    *,
    models: Mapping[str, Callable[[float], float]] | None = None,
) -> str:
    """Shortcut: the winning model's name."""
    return select_model(parameters, rounds, models=models)[0].model_name


# ----------------------------------------------------------------------
# Coarse growth classes — the robust verdicts
# ----------------------------------------------------------------------
#: Class name → half-open exponent interval [low, high).
GROWTH_CLASSES: dict[str, tuple[float, float]] = {
    "sublinear": (-math.inf, 0.60),
    "near-linear": (0.60, 1.35),
    "superlinear": (1.35, math.inf),
}


def classify_growth(parameters: Sequence[float], rounds: Sequence[float]) -> str:
    """Bin the fitted power-law exponent into a coarse growth class.

    Neighbouring Figure-1 shapes produce nearly identical *apparent*
    exponents at laptop-scale ``n`` — over a ``[64, 1024]`` window,
    ``log² n`` reads as ``n^{0.4}``, ``√n/log n`` as ``n^{0.3}``,
    ``n/log n`` as ``n^{0.8}`` — so fine-grained model claims are
    brittle. The three coarse classes below capture the separations the
    paper's table actually rests on, with boundaries sitting in the
    gaps between the shape clusters:

    * ``sublinear``    — apparent exponent < 0.60: the polylog upper
      bounds and the ``√n``-family cells (``√n`` itself reads 0.5,
      ``√n·log n`` reads ≈ 0.7 and lands near-linear);
    * ``near-linear``  — [0.60, 1.35): the ``Ω(n)`` and ``Ω(n/log n)``
      adaptive-adversary cells (``n/log n`` reads ≈ 0.8);
    * ``superlinear``  — ≥ 1.35: e.g. round robin's ``O(nD)`` under a
      diameter sweep.

    Within-experiment *contrast claims* (attacked vs. control medians)
    carry the finer separations; see
    :class:`repro.experiments.registry.ContrastClaim`.
    """
    exponent = fit_power_law(parameters, rounds).exponent
    for name, (low, high) in GROWTH_CLASSES.items():
        if low <= exponent < high:
            return name
    raise AssertionError(f"exponent {exponent} escaped the class table")
