"""Isolated broadcast functions (Lemma 4.4) and their stability (Lemma 4.5).

The bracelet lower bound rests on a structural fact: for the first
``L = √(n/2)`` rounds, a band's head behaves *exactly* as it would if
the band were an isolated ``G`` path — no information from outside the
band (the endpoint clique, or the clasp) can travel the ``L − 1`` hops
to the head any faster than one hop per round. Lemma 4.4 packages this
as a deterministic function

    ``f_{A,u}(support sequence, r) ∈ {0, 1}``

of the band's random bits: whether head ``u`` would broadcast in round
``r`` of an isolated execution. Because distinct bands' functions are
evaluated on *independent* support sequences, the per-round head
broadcast counts concentrate (Lemma 4.5): two independent trials agree
on which rounds are dense (many heads would broadcast) and which are
sparse — which is what lets an *oblivious* adversary precompute a
dense/sparse schedule before the execution begins and still have it
classify the real execution correctly w.h.p.

Here a support sequence is realized as a seed: the function simulates
the band as an isolated line with per-node RNGs and coins derived from
that seed, caching one output vector per seed. The simulation
replicates the engine's round semantics (plan → Bernoulli coin →
exactly-one-transmitting-neighbor reception → feedback) on the path
topology, where bands have no flaky edges to schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms.base import AlgorithmSpec
from repro.core.process import Process, ProcessContext, RoundPlan
from repro.core.rng import derive_seed, spawn_rng

__all__ = [
    "BandSimulationResult",
    "simulate_isolated_band",
    "IsolatedBroadcastFunction",
    "head_broadcast_counts",
    "two_trial_counts",
]


@dataclass(frozen=True)
class BandSimulationResult:
    """Transmission record of one isolated band execution.

    ``head_broadcasts[r]`` is whether the band head (position 0)
    transmitted in round ``r``; ``transmit_counts[r]`` counts the whole
    band's transmitters that round (diagnostics).
    """

    band_nodes: tuple[int, ...]
    head_broadcasts: tuple[bool, ...]
    transmit_counts: tuple[int, ...]


def simulate_isolated_band(
    spec: AlgorithmSpec,
    band_nodes: Sequence[int],
    *,
    n: int,
    max_degree: int,
    rounds: int,
    seed: int,
) -> BandSimulationResult:
    """Run ``spec`` on a band as an isolated ``G`` path for ``rounds`` rounds.

    ``band_nodes`` lists the band's *real* node ids, head first — the
    processes are built with their real ids so role assignments
    (broadcaster set membership) match the real network, while the
    simulated topology is the bare path with no flaky edges.

    Validity horizon: head outputs are distribution-exact for
    ``rounds ≤ len(band_nodes)`` (Lemma 4.4's staircase argument —
    endpoint-clique influence needs one hop per round to reach the
    head). Callers enforce the horizon; the function itself simulates
    any requested length.
    """
    k = len(band_nodes)
    if k < 1:
        raise ValueError("band must contain at least one node")
    processes: list[Process] = []
    for position, real_id in enumerate(band_nodes):
        ctx = ProcessContext(
            node_id=int(real_id),
            n=n,
            max_degree=max_degree,
            rng=spawn_rng(seed, "band-process", position),
        )
        processes.append(spec.build_process(ctx))
    for process in processes:
        process.begin()
    coin_rng = random.Random(derive_seed(seed, "band-coins"))

    head_broadcasts: list[bool] = []
    transmit_counts: list[int] = []
    for r in range(rounds):
        plans: list[RoundPlan] = [process.plan(r) for process in processes]
        transmitted = [
            plan.probability >= 1.0
            or (plan.probability > 0.0 and coin_rng.random() < plan.probability)
            for plan in plans
        ]
        head_broadcasts.append(transmitted[0])
        transmit_counts.append(sum(transmitted))
        # Path reception: exactly one transmitting path-neighbor.
        received = [None] * k
        for position in range(k):
            if transmitted[position]:
                continue
            senders = [
                q
                for q in (position - 1, position + 1)
                if 0 <= q < k and transmitted[q]
            ]
            if len(senders) == 1:
                received[position] = plans[senders[0]].message
        for position, process in enumerate(processes):
            process.on_feedback(r, transmitted[position], received[position])

    return BandSimulationResult(
        band_nodes=tuple(int(b) for b in band_nodes),
        head_broadcasts=tuple(head_broadcasts),
        transmit_counts=tuple(transmit_counts),
    )


@dataclass
class IsolatedBroadcastFunction:
    """Lemma 4.4's ``f_{A,u}``: (support seed, round) ↦ would-broadcast.

    One instance per band. Deterministic: evaluating twice with the
    same seed returns identical outputs (the simulation is cached per
    seed); independent seeds give independent draws — the property
    Lemma 4.5's concentration argument needs.
    """

    spec: AlgorithmSpec
    band_nodes: tuple[int, ...]
    n: int
    max_degree: int
    horizon: int
    _cache: dict[int, tuple[bool, ...]] = field(default_factory=dict, repr=False)

    def evaluate(self, support_seed: int, round_index: int) -> bool:
        """``f(γ, r)``: would the head broadcast in round ``r``?"""
        if not 0 <= round_index < self.horizon:
            raise ValueError(
                f"round {round_index} outside the validity horizon "
                f"[0, {self.horizon}) of the isolated simulation"
            )
        return self.trajectory(support_seed)[round_index]

    def trajectory(self, support_seed: int) -> tuple[bool, ...]:
        """The full head-broadcast vector for one support sequence."""
        cached = self._cache.get(support_seed)
        if cached is None:
            cached = simulate_isolated_band(
                self.spec,
                self.band_nodes,
                n=self.n,
                max_degree=self.max_degree,
                rounds=self.horizon,
                seed=support_seed,
            ).head_broadcasts
            self._cache[support_seed] = cached
        return cached

    __call__ = evaluate


def head_broadcast_counts(
    functions: Sequence[IsolatedBroadcastFunction],
    support_seeds: Sequence[int],
    horizon: int,
) -> list[int]:
    """Lemma 4.5's ``Y_r``: per-round count of heads that would broadcast.

    ``functions[i]`` is evaluated on ``support_seeds[i]``; counts are
    summed per round across all bands.
    """
    if len(functions) != len(support_seeds):
        raise ValueError("need one support seed per function")
    counts = [0] * horizon
    for function, seed in zip(functions, support_seeds):
        trajectory = function.trajectory(seed)
        for r in range(min(horizon, len(trajectory))):
            if trajectory[r]:
                counts[r] += 1
    return counts


def two_trial_counts(
    functions: Sequence[IsolatedBroadcastFunction],
    horizon: int,
    rng: random.Random,
) -> tuple[list[int], list[int]]:
    """Draw two independent trials of ``Y`` (Lemma 4.5's ``Y¹``, ``Y²``).

    Used by the stability tests: rounds dense in one trial should not
    be empty in the other, and sparse rounds should stay ``O(log n)``.
    """
    seeds_1 = [rng.getrandbits(63) for _ in functions]
    seeds_2 = [rng.getrandbits(63) for _ in functions]
    return (
        head_broadcast_counts(functions, seeds_1, horizon),
        head_broadcast_counts(functions, seeds_2, horizon),
    )
