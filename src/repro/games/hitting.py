"""The β-hitting game (Section 3) and its players.

"The game is defined for integer β > 0. There is a player represented
by a probabilistic automaton P. At the beginning of the game, an
adversary chooses a target value t ∈ [β], which it keeps secret from
the player. The P automaton executes in rounds. In each round, it can
output a guess from [β]. The player wins the game when P outputs t.
The only information it learns in other rounds is that it has not yet
won the game."

Lemma 3.2 (adapted from [11]): for β > 3 and 1 ≤ k ≤ β − 2, no player
wins in ``k`` rounds with probability greater than ``k/(β − 1)``.

The lemma is information-theoretic and holds against a *uniformly
random* secret target (the average case lower-bounds the worst case),
so the empirical check draws ``t`` uniformly and verifies no player's
win rate beats the envelope. The near-optimal players —
:class:`SequentialPlayer` and :class:`NoRepeatRandomPlayer` — achieve
``k/β``, pinning the envelope from below; both broadcast reductions
(Theorems 3.1 and 4.3) plug in as :class:`Player` implementations via
:mod:`repro.games.reduction_clique` / ``reduction_bracelet``.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Player",
    "SequentialPlayer",
    "UniformRandomPlayer",
    "NoRepeatRandomPlayer",
    "HittingGame",
    "GameOutcome",
    "play_hitting_game",
    "empirical_win_rate",
    "lemma_3_2_envelope",
]


class Player(abc.ABC):
    """A hitting-game player: emits one guess per game round."""

    @abc.abstractmethod
    def next_guess(self) -> Optional[int]:
        """The next guess in ``[1, β]``, or ``None`` to pass this round.

        Passing models reduction players mid-simulation (a simulated
        round that generates no guesses still consumes no game rounds —
        the game clock in Lemma 3.2 counts *guesses*).
        """

    def on_miss(self, guess: int) -> None:  # noqa: B027 - optional hook
        """Feedback: the guess did not hit (the only signal the game leaks)."""


class SequentialPlayer(Player):
    """Guess ``1, 2, 3, …`` — deterministic, wins by round ``t``.

    Against a uniform target its win probability in ``k`` rounds is
    exactly ``k/β``, matching the Lemma 3.2 envelope up to the
    ``β/(β−1)`` factor.
    """

    def __init__(self, beta: int) -> None:
        self.beta = beta
        self._next = 1

    def next_guess(self) -> Optional[int]:
        guess = self._next
        self._next = self._next % self.beta + 1
        return guess


class UniformRandomPlayer(Player):
    """Guess uniformly with replacement: win rate ``1 − (1 − 1/β)^k``.

    Strictly below the no-repeat players — included as the memoryless
    baseline.
    """

    def __init__(self, beta: int, rng: random.Random) -> None:
        self.beta = beta
        self.rng = rng

    def next_guess(self) -> Optional[int]:
        return self.rng.randrange(1, self.beta + 1)


class NoRepeatRandomPlayer(Player):
    """Uniform guessing without replacement — the optimal strategy.

    Win probability in ``k`` rounds is exactly ``k/β`` for a uniform
    target, which Lemma 3.2 says cannot be improved beyond
    ``k/(β−1)``.
    """

    def __init__(self, beta: int, rng: random.Random) -> None:
        self.beta = beta
        self._remaining = list(range(1, beta + 1))
        rng.shuffle(self._remaining)

    def next_guess(self) -> Optional[int]:
        if not self._remaining:
            return None
        return self._remaining.pop()


@dataclass(frozen=True)
class GameOutcome:
    """Result of one game: whether/when the player hit the target."""

    won: bool
    guesses_used: int
    target: int

    def rounds_to_win(self) -> int:
        if not self.won:
            raise ValueError("player did not win the game")
        return self.guesses_used


class HittingGame:
    """One β-hitting game instance with a fixed secret target."""

    def __init__(self, beta: int, target: int) -> None:
        if beta < 1:
            raise ValueError(f"beta must be >= 1, got {beta}")
        if not 1 <= target <= beta:
            raise ValueError(f"target {target} outside [1, {beta}]")
        self.beta = beta
        self.target = target

    def play(self, player: Player, *, max_guesses: int) -> GameOutcome:
        """Drive the player until it hits, passes forever, or exhausts guesses."""
        guesses = 0
        passes_in_a_row = 0
        while guesses < max_guesses:
            guess = player.next_guess()
            if guess is None:
                passes_in_a_row += 1
                if passes_in_a_row > max_guesses:
                    break  # player is stuck; treat as loss
                continue
            passes_in_a_row = 0
            guesses += 1
            if guess == self.target:
                return GameOutcome(won=True, guesses_used=guesses, target=self.target)
            player.on_miss(guess)
        return GameOutcome(won=False, guesses_used=guesses, target=self.target)


def play_hitting_game(
    beta: int,
    player: Player,
    rng: random.Random,
    *,
    max_guesses: Optional[int] = None,
) -> GameOutcome:
    """Play one game against a uniformly random secret target."""
    target = rng.randrange(1, beta + 1)
    cap = max_guesses if max_guesses is not None else 4 * beta * beta
    return HittingGame(beta, target).play(player, max_guesses=cap)


def empirical_win_rate(
    beta: int,
    k: int,
    player_factory,
    *,
    trials: int,
    rng: random.Random,
) -> float:
    """Fraction of games a fresh player wins within ``k`` guesses.

    ``player_factory(rng) -> Player`` builds an independent player per
    game (players are stateful).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    wins = 0
    for _ in range(trials):
        player = player_factory(rng)
        outcome = play_hitting_game(beta, player, rng, max_guesses=k)
        if outcome.won:
            wins += 1
    return wins / trials


def lemma_3_2_envelope(beta: int, k: int) -> float:
    """The Lemma 3.2 bound: max win probability ``k/(β − 1)``."""
    if beta <= 3:
        raise ValueError("Lemma 3.2 requires beta > 3")
    if not 1 <= k <= beta - 2:
        raise ValueError(f"Lemma 3.2 requires 1 <= k <= beta - 2, got k={k}")
    return k / (beta - 1)
