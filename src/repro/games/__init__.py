"""Lower-bound machinery: the β-hitting game, isolated broadcast
functions, and the executable reductions of Theorems 3.1 and 4.3."""

from repro.games.hitting import (
    GameOutcome,
    HittingGame,
    NoRepeatRandomPlayer,
    Player,
    SequentialPlayer,
    UniformRandomPlayer,
    empirical_win_rate,
    lemma_3_2_envelope,
    play_hitting_game,
)
from repro.games.isolated import (
    BandSimulationResult,
    IsolatedBroadcastFunction,
    head_broadcast_counts,
    simulate_isolated_band,
    two_trial_counts,
)
from repro.games.reduction_bracelet import BraceletReductionPlayer, claspless_bracelet
from repro.games.reduction_clique import DualCliqueReductionPlayer, bridgeless_dual_clique

__all__ = [
    "Player",
    "SequentialPlayer",
    "UniformRandomPlayer",
    "NoRepeatRandomPlayer",
    "HittingGame",
    "GameOutcome",
    "play_hitting_game",
    "empirical_win_rate",
    "lemma_3_2_envelope",
    "BandSimulationResult",
    "simulate_isolated_band",
    "IsolatedBroadcastFunction",
    "head_broadcast_counts",
    "two_trial_counts",
    "DualCliqueReductionPlayer",
    "bridgeless_dual_clique",
    "BraceletReductionPlayer",
    "claspless_bracelet",
]
