"""Lower-bound machinery: the paper's impossibility arguments, executable.

The paper's lower bounds are not adversary constructions alone — each
one is a *reduction* from radio broadcast to a simple combinatorial
game whose cost is known exactly. This package makes those reductions
runnable, so the measured round counts in the Figure-1 lower-bound
cells are produced by the proofs' own machinery rather than by ad-hoc
attack scripts. Module by module:

* :mod:`repro.games.hitting` — the **β-hitting game** of Section 3: a
  player must guess a secret target ``t ∈ [β]`` with only "not yet"
  feedback. Lemma 3.2 pins its expected cost at ``(β + 1)/2`` guesses
  (:func:`lemma_3_2_envelope` checks the measured envelope), which is
  the currency every reduction converts rounds into.

* :mod:`repro.games.reduction_clique` — **Theorem 3.1**, executable:
  a global-broadcast algorithm beating ``o(n / log n)`` rounds on the
  dual clique would win the β-hitting game too fast. The player
  simulates the algorithm on the *bridgeless* dual clique
  (:func:`bridgeless_dual_clique` — it does not know the secret
  bridge) and converts every plausibly-bridge-crossing round into a
  game guess; the simulation remains faithful because only a winning
  guess could have been affected by the missing bridge.

* :mod:`repro.games.isolated` — **Lemmas 4.4 and 4.5**: for the first
  ``L = √(n/2)`` rounds a bracelet band's head behaves exactly as in
  an isolated band, so its transmission pattern is a deterministic
  function of the band's coins (an *isolated broadcast function*) that
  an oblivious adversary can precompute from support sequences drawn
  "with uniform and independent randomness" (Lemma 4.5's stability).

* :mod:`repro.games.reduction_bracelet` — **Theorem 4.3**: the
  bracelet reduction replaces Theorem 3.1's live expectation
  thresholding (information an oblivious adversary lacks) with the
  precomputed isolated functions, yielding an *oblivious* link process
  that still forces ``Ω(√n / log n)`` local broadcast on general
  graphs — the separation against the geographic ``O(log² n log Δ)``
  upper bound of Section 4.3.

``docs/paper_map.md`` maps each of these claims to its module and the
test that reproduces it.
"""

from repro.games.hitting import (
    GameOutcome,
    HittingGame,
    NoRepeatRandomPlayer,
    Player,
    SequentialPlayer,
    UniformRandomPlayer,
    empirical_win_rate,
    lemma_3_2_envelope,
    play_hitting_game,
)
from repro.games.isolated import (
    BandSimulationResult,
    IsolatedBroadcastFunction,
    head_broadcast_counts,
    simulate_isolated_band,
    two_trial_counts,
)
from repro.games.reduction_bracelet import BraceletReductionPlayer, claspless_bracelet
from repro.games.reduction_clique import DualCliqueReductionPlayer, bridgeless_dual_clique

__all__ = [
    "Player",
    "SequentialPlayer",
    "UniformRandomPlayer",
    "NoRepeatRandomPlayer",
    "HittingGame",
    "GameOutcome",
    "play_hitting_game",
    "empirical_win_rate",
    "lemma_3_2_envelope",
    "BandSimulationResult",
    "simulate_isolated_band",
    "IsolatedBroadcastFunction",
    "head_broadcast_counts",
    "two_trial_counts",
    "DualCliqueReductionPlayer",
    "bridgeless_dual_clique",
    "BraceletReductionPlayer",
    "claspless_bracelet",
]
