"""Theorem 3.1's reduction, executable: broadcast ⇒ β-hitting player.

The proof constructs a player ``P_A`` that wins the β-hitting game by
simulating a broadcast algorithm ``A`` on the *dual clique* network —
crucially, on the dual clique **without its bridge**, because the
player does not know where the bridge (= the secret target ``t``) is.
The simulation stays valid anyway: the only rounds in which the missing
bridge could change anything are rounds whose guesses win the game
first.

Per simulated round, with ``S`` the start-of-round states and
``X`` the realized transmitter set:

* label the round **dense** iff ``E[|X| | S] > c·log β``;
* dense ∧ ``|X| = 1``   → guess every value ``1 … β`` (a sure win);
* dense ∧ ``|X| ≠ 1``   → no guesses;
* sparse                → guess the ids of ``X`` (ids from clique B
  reduced by ``β`` — the bridge pair ``(t, t+β)`` maps to the single
  game value ``t``);

and resolve receptions with the link rule *dense → all ``G'`` edges,
sparse → no cross edges* — which is exactly
:class:`~repro.adversaries.dense_sparse.OnlineDenseSparseAttacker`, so
the player literally drives the main engine with the paper's adversary
and reads guesses off the round records.

The headline consequence (tested in the benches): if ``A`` solves
broadcast on dual cliques in ``f(n)`` rounds, ``P_A`` wins β-hitting in
``O(f(2β) log β)`` guesses — so Lemma 3.2's ``Ω(β)`` guess bound forces
``f(n) = Ω(n / log n)``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Optional

from repro.adversaries.dense_sparse import OnlineDenseSparseAttacker
from repro.algorithms.base import AlgorithmSpec
from repro.core.engine import RadioNetworkEngine
from repro.core.trace import RoundRecord, iter_bits
from repro.games.hitting import Player
from repro.graphs.dual_graph import DualGraph

__all__ = ["DualCliqueReductionPlayer", "bridgeless_dual_clique"]


def bridgeless_dual_clique(beta: int) -> DualGraph:
    """The player's simulated network: two ``G`` cliques, complete ``G'``.

    This is the dual clique of Theorem 3.1 *minus the secret bridge* —
    all the player can construct without knowing ``t``. Side A is ids
    ``0 … β-1``, side B is ``β … 2β-1``.
    """
    if beta < 2:
        raise ValueError("beta must be >= 2")
    n = 2 * beta
    g_edges = []
    for base in (0, beta):
        g_edges.extend(
            (base + u, base + v) for u in range(beta) for v in range(u + 1, beta)
        )
    extra = [(u, v) for u in range(beta) for v in range(beta, n)]
    return DualGraph.from_edges(n, g_edges, extra, name=f"bridgeless-dual-clique-{n}")


class DualCliqueReductionPlayer(Player):
    """``P_A``: wins β-hitting by simulating ``A`` on the dual clique.

    Parameters
    ----------
    beta:
        Game size; the simulated network has ``n = 2β`` nodes.
    algorithm_for:
        ``(n, side_a) ↦ AlgorithmSpec`` building the broadcast algorithm
        under reduction with the paper's role assignment — global
        broadcast sources in side A (the proof uses node 1 ∈ A), local
        broadcast sets ``B =`` side A.
    seed:
        Master seed for the simulation (processes + coins).
    threshold_c:
        The ``c`` of the dense threshold ``c·log β`` (base-2).
    max_simulated_rounds:
        Safety cap; the paper's w.l.o.g. cap is ``(2β)²``.
    """

    def __init__(
        self,
        beta: int,
        algorithm_for: Callable[[int, range], AlgorithmSpec],
        *,
        seed: int,
        threshold_c: float = 2.0,
        max_simulated_rounds: Optional[int] = None,
    ) -> None:
        self.beta = beta
        self.network = bridgeless_dual_clique(beta)
        self.side_a = range(beta)
        self.spec = algorithm_for(self.network.n, self.side_a)
        self.threshold = threshold_c * math.log2(max(beta, 2))
        self.max_simulated_rounds = max_simulated_rounds or (2 * beta) ** 2
        self.simulated_rounds = 0
        self._pending: deque[int] = deque()
        self._exhausted = False

        side_a_mask = (1 << beta) - 1
        self.adversary = OnlineDenseSparseAttacker(
            side_a_mask, threshold=self.threshold
        )
        processes = self.spec.build_processes(
            self.network.n, self.network.max_degree, seed=seed
        )
        self.engine = RadioNetworkEngine(
            self.network,
            processes,
            self.adversary,
            seed=seed,
            algorithm_info=self.spec.info(),
            validate_topologies=False,
        )

    # ------------------------------------------------------------------
    # Player interface
    # ------------------------------------------------------------------
    def next_guess(self) -> Optional[int]:
        while not self._pending and not self._exhausted:
            self._advance_one_round()
        if self._pending:
            return self._pending.popleft()
        return None

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _advance_one_round(self) -> None:
        if self.simulated_rounds >= self.max_simulated_rounds:
            self._exhausted = True
            return
        record = self.engine.step()
        self.simulated_rounds += 1
        self._pending.extend(self._guesses_for(record))

    def _guesses_for(self, record: RoundRecord) -> list[int]:
        dense = record.expected_transmitters > self.threshold
        count = record.transmitter_count
        if dense:
            if count == 1:
                return list(range(1, self.beta + 1))
            return []
        guesses = []
        seen = set()
        for node in iter_bits(record.transmitter_mask):
            value = node + 1 if node < self.beta else node - self.beta + 1
            if value not in seen:
                seen.add(value)
                guesses.append(value)
        return guesses

    def describe(self) -> str:
        return (
            f"P_A(beta={self.beta}, algorithm={self.spec.name}, "
            f"threshold={self.threshold:.1f})"
        )
