"""Theorem 4.3's reduction, executable: local broadcast on the bracelet
⇒ β-hitting player with an *oblivious* simulated link process.

The online-adaptive player of Theorem 3.1 labels rounds dense/sparse
using the live expectation ``E[|X| | S]`` — information an oblivious
adversary does not have. The bracelet construction removes the need
for it: bands evolve independently for their first ``L = √(n/2)``
rounds, so the player precomputes every band's isolated broadcast
function (Lemma 4.4), evaluates them on fresh support sequences, and
fixes the dense/sparse schedule *before the simulation starts*.
Lemma 4.5 guarantees the precomputed labels classify the actual
simulated execution correctly w.h.p.

The player then simulates the algorithm on the bracelet **without its
clasp** (the clasp position is the game's secret ``t``), driving the
main engine with
:class:`~repro.adversaries.schedule_attack.PrecomputedDenseSparseLinks`.
Guesses per simulated round mirror Theorem 3.1, with band *heads*
playing the role of the clique nodes (only heads carry flaky edges):

* sparse → guess the band indices of broadcasting heads
  (``a_i`` and ``b_i`` both map to game value ``i``);
* dense ∧ exactly one broadcasting head → guess everything (sure win);
* dense otherwise → no guesses.

Here ``β = L``: the game's target is the secret clasp *band index*,
and Lemma 3.2's ``Ω(β)`` guess bound forces local broadcast to take
``Ω(√n / log n)`` rounds — Figure 1's oblivious general-graph cell.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Optional

from repro.adversaries.schedule_attack import PrecomputedDenseSparseLinks
from repro.algorithms.base import AlgorithmSpec
from repro.core.engine import RadioNetworkEngine
from repro.core.rng import spawn_rng
from repro.core.trace import RoundRecord, iter_bits
from repro.games.hitting import Player
from repro.games.isolated import IsolatedBroadcastFunction, head_broadcast_counts
from repro.graphs.bracelet import BraceletNetwork, bracelet
from repro.graphs.dual_graph import DualGraph

__all__ = ["BraceletReductionPlayer", "claspless_bracelet"]


def claspless_bracelet(band_length: int) -> tuple[DualGraph, BraceletNetwork]:
    """The player's simulated network: a bracelet with the clasp removed.

    Returns the claspless graph plus a reference
    :class:`~repro.graphs.bracelet.BraceletNetwork` (built with clasp
    index 0) used purely for its id layout helpers — the clasp edge
    itself is stripped, and the full head-to-head flaky layer is
    restored (in the real network the secret pair is a ``G`` edge; the
    player, not knowing it, simulates every pair as flaky).
    """
    reference = bracelet(band_length, clasp_index=0)
    clasp = reference.clasp
    g_edges = reference.graph.g_edges() - {clasp}
    extra = reference.graph.flaky_edges() | {clasp}
    graph = DualGraph.from_edges(
        reference.n, g_edges, extra, name=f"claspless-bracelet-L{band_length}"
    )
    return graph, reference


class BraceletReductionPlayer(Player):
    """The Theorem 4.3 player: oblivious simulated link process.

    Parameters
    ----------
    band_length:
        ``L``; the game size is ``β = L`` and the simulated network has
        ``n = 2L²`` nodes.
    algorithm_for:
        ``(n, heads_a) ↦ AlgorithmSpec``; the proof places all side-A
        heads in the local broadcast set.
    seed:
        Master seed (support sequences, simulation processes, coins).
    threshold_factor:
        The ``c`` of the ``c·ln n`` dense threshold.
    """

    def __init__(
        self,
        band_length: int,
        algorithm_for: Callable[[int, list[int]], AlgorithmSpec],
        *,
        seed: int,
        threshold_factor: float = 1.0,
    ) -> None:
        self.beta = band_length
        self.network, self.layout = claspless_bracelet(band_length)
        heads_a = self.layout.heads_a()
        self.spec = algorithm_for(self.network.n, heads_a)
        self.horizon = band_length

        # --- Oblivious precomputation (before any simulated round) ---
        support_rng = spawn_rng(seed, "bracelet-support")
        self.predicted_counts = self._predict_counts(support_rng)
        threshold = threshold_factor * math.log(max(self.network.n, 3))
        self.labels = [count > threshold for count in self.predicted_counts]

        heads_a_mask = 0
        for head in heads_a:
            heads_a_mask |= 1 << head
        self._head_mask = heads_a_mask
        for head in self.layout.heads_b():
            self._head_mask |= 1 << head
        adversary = PrecomputedDenseSparseLinks(
            heads_a_mask, self.labels, tail_dense=True
        )
        processes = self.spec.build_processes(
            self.network.n, self.network.max_degree, seed=seed
        )
        self.engine = RadioNetworkEngine(
            self.network,
            processes,
            adversary,
            seed=seed,
            algorithm_info=self.spec.info(),
            validate_topologies=False,
        )
        self.simulated_rounds = 0
        self._pending: deque[int] = deque()
        self._exhausted = False

    def _predict_counts(self, rng: random.Random) -> list[int]:
        functions = []
        for i in range(self.beta):
            functions.append(
                IsolatedBroadcastFunction(
                    spec=self.spec,
                    band_nodes=tuple(self.layout.band_a(i)),
                    n=self.network.n,
                    max_degree=self.network.max_degree,
                    horizon=self.horizon,
                )
            )
        for i in range(self.beta):
            functions.append(
                IsolatedBroadcastFunction(
                    spec=self.spec,
                    band_nodes=tuple(self.layout.band_b(i)),
                    n=self.network.n,
                    max_degree=self.network.max_degree,
                    horizon=self.horizon,
                )
            )
        seeds = [rng.getrandbits(63) for _ in functions]
        return head_broadcast_counts(functions, seeds, self.horizon)

    # ------------------------------------------------------------------
    # Player interface
    # ------------------------------------------------------------------
    def next_guess(self) -> Optional[int]:
        while not self._pending and not self._exhausted:
            self._advance_one_round()
        if self._pending:
            return self._pending.popleft()
        return None

    def _advance_one_round(self) -> None:
        if self.simulated_rounds >= self.horizon:
            # Beyond the isolation horizon the simulation is no longer
            # provably valid; the reduction's claim covers only the
            # first L rounds. Fall back to exhaustive guessing (the
            # game bound already paid Ω(L / log n) rounds to get here).
            self._pending.extend(range(1, self.beta + 1))
            self._exhausted = True
            return
        record = self.engine.step()
        label_dense = self.labels[self.simulated_rounds]
        self.simulated_rounds += 1
        self._pending.extend(self._guesses_for(record, label_dense))

    def _guesses_for(self, record: RoundRecord, dense: bool) -> list[int]:
        broadcasting_heads = []
        for node in iter_bits(record.transmitter_mask & self._head_mask):
            classified = self.layout.head_index(node)
            if classified is not None:
                broadcasting_heads.append(classified[1])
        if dense:
            if len(broadcasting_heads) == 1:
                return list(range(1, self.beta + 1))
            return []
        guesses = []
        seen = set()
        for band in broadcasting_heads:
            value = band + 1
            if value not in seen:
                seen.add(value)
                guesses.append(value)
        return guesses

    def describe(self) -> str:
        dense_fraction = (
            sum(self.labels) / len(self.labels) if self.labels else 0.0
        )
        return (
            f"P_bracelet(L={self.beta}, algorithm={self.spec.name}, "
            f"dense_fraction={dense_fraction:.2f})"
        )
