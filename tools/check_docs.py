#!/usr/bin/env python3
"""Documentation checker: links, anchors, code fences, path references.

Validates the repository's Markdown (README.md + docs/) without any
third-party dependency, so it runs identically in CI's docs job and in
the test suite (tests/test_docs.py):

* relative links ``[text](path)`` must point at files that exist;
* intra-document anchors ``[text](#heading)`` (and ``path#heading``)
  must match a heading's GitHub-style slug in the target document;
* fenced code blocks must be balanced (every ``` opener is closed);
* inline-code references to repository paths (``src/...``,
  ``tests/...``, ``benchmarks/...``, ``docs/...``, ``examples/...``)
  must exist — this is what keeps docs/paper_map.md honest as modules
  move;
* the experiment catalog (``docs/experiments.md``) must name every
  registered experiment id (and must not name ids that no longer
  exist) — this is what keeps the catalog honest as the registry
  grows. Registry contents come from the CLI's machine-readable
  ``repro components --json`` payload
  (:func:`repro.cli.components_payload`) rather than ad-hoc registry
  imports, so the checker and the CLI can never disagree about what
  exists.

Exit status 0 when clean; 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# The catalog check imports the experiment registry; make the script
# runnable from a bare checkout (no `pip install -e .`) too.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Documents under check: the README plus the whole docs tree.
DOCUMENTS = ["README.md", *sorted(str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md"))]

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_PATH_RE = re.compile(
    r"`((?:src|tests|benchmarks|docs|examples|tools)/[A-Za-z0-9_./-]+)`"
)
_FENCE_RE = re.compile(r"^\s{0,3}(```+|~~~+)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dashes for spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_code_blocks(lines: list[str]) -> tuple[list[str], bool]:
    """Lines outside fenced blocks, plus whether fences balance."""
    kept: list[str] = []
    fence: str | None = None
    for line in lines:
        match = _FENCE_RE.match(line)
        if match:
            marker = match.group(1)[0] * 3
            if fence is None:
                fence = marker
            elif line.strip().startswith(fence):
                fence = None
            continue
        if fence is None:
            kept.append(line)
    return kept, fence is None


def check_document(relative: str) -> list[str]:
    path = REPO_ROOT / relative
    problems: list[str] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    prose, balanced = strip_code_blocks(lines)
    if not balanced:
        problems.append(f"{relative}: unbalanced code fence")

    headings = {github_slug(m.group(2)) for line in prose if (m := _HEADING_RE.match(line))}

    def anchors_of(target: Path) -> set[str]:
        target_prose, _ = strip_code_blocks(
            target.read_text(encoding="utf-8").splitlines()
        )
        return {
            github_slug(m.group(2))
            for line in target_prose
            if (m := _HEADING_RE.match(line))
        }

    for line_number, line in enumerate(prose, start=1):
        for match in _LINK_RE.finditer(line):
            destination = match.group(1)
            if destination.startswith(("http://", "https://", "mailto:")):
                continue
            target_part, _, anchor = destination.partition("#")
            if not target_part:  # same-document anchor
                if anchor and github_slug(anchor) not in headings:
                    problems.append(
                        f"{relative}: broken anchor #{anchor} (near line {line_number})"
                    )
                continue
            target = (path.parent / target_part).resolve()
            if not target.exists():
                problems.append(
                    f"{relative}: broken link {destination} (near line {line_number})"
                )
                continue
            if anchor and target.suffix == ".md":
                if github_slug(anchor) not in anchors_of(target):
                    problems.append(
                        f"{relative}: broken anchor {destination} (near line {line_number})"
                    )

    full_text = "\n".join(lines)
    for match in _CODE_PATH_RE.finditer(full_text):
        referenced = match.group(1).rstrip("/.")
        if not (REPO_ROOT / referenced).exists():
            problems.append(f"{relative}: dangling path reference `{referenced}`")
    return problems


#: Experiment ids as they appear in prose: `E1a`, `E7b`, `A2`, `M1`, …
_EXP_ID_RE = re.compile(r"`([EAM]\d+[a-z]?(?:_[a-z]+)?)`")

CATALOG = "docs/experiments.md"


def check_experiment_catalog() -> list[str]:
    """The catalog names exactly the registered experiment ids.

    Missing ids fail (a new experiment landed without documentation);
    unknown ids fail too (the catalog drifted ahead of — or kept a
    removed entry from — the registry). The id list comes from the
    CLI's ``repro components --json`` payload.
    """
    from repro.cli import components_payload

    registered = set(components_payload()["experiments"])
    path = REPO_ROOT / CATALOG
    if not path.exists():
        return [f"{CATALOG}: missing (the experiment catalog is mandatory)"]
    text = path.read_text(encoding="utf-8")
    mentioned = set(_EXP_ID_RE.findall(text))
    problems = [
        f"{CATALOG}: registered experiment `{exp_id}` is not in the catalog"
        for exp_id in sorted(registered)
        if exp_id not in mentioned
    ]
    problems.extend(
        f"{CATALOG}: `{exp_id}` is not a registered experiment id"
        for exp_id in sorted(mentioned - registered)
    )
    return problems


def main() -> int:
    all_problems: list[str] = []
    for document in DOCUMENTS:
        all_problems.extend(check_document(document))
    all_problems.extend(check_experiment_catalog())
    if all_problems:
        print(f"docs check: {len(all_problems)} problem(s)")
        for problem in all_problems:
            print(f"  - {problem}")
        return 1
    print(f"docs check: {len(DOCUMENTS)} documents clean ({', '.join(DOCUMENTS)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
