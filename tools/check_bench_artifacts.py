#!/usr/bin/env python3
"""Bench-artifact checker: the committed numbers must support the claims.

The repository commits bench artifacts (``benchmarks/results/
BENCH_<experiment>_<scale>_<engine>.json``) so perf claims are reviewable
data rather than folklore. The guards in ``benchmarks/_common.py`` bite
only when someone *regenerates* an artifact; this checker re-validates
the committed set on every CI run, so an artifact edited by hand, half
regenerated, or regenerated on a machine where a fast path silently
stopped paying cannot merge quietly:

* **fast beats reference** — every skip-enabled fast-engine artifact
  must be no slower than 1.10x the committed ``reference`` artifact for
  the same (experiment, scale) cell (min-of-repeats, the noise-robust
  statistic — the same rule as ``assert_not_slower_than_reference``);
* **decay kernels pay** — the committed E1b_large ``bank`` cells must
  beat the committed ``bitset`` cells by >= 3x at the largest parameter
  of both single-message series ("round-robin", "static-local-decay").
  The engine-equivalence suite cannot catch a kernel-selection
  regression (the per-process fallback is byte-identical, just slow);
  only the committed timings can.

No third-party dependencies; exit 0 when clean, 1 with a per-problem
report otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

#: Fast engines may be at most this factor slower than the reference
#: loop (absorbs machine noise between the two committed runs).
REFERENCE_ALLOWANCE = 1.10

#: (experiment, scale, fast engine, slow engine, series substring, min ratio):
#: largest-parameter cell comparisons between two committed artifacts.
CELL_SPEEDUPS = [
    ("E1b_large", "small", "bank", "bitset", "round-robin", 3.0),
    ("E1b_large", "small", "bank", "bitset", "static-local-decay", 3.0),
]


def load_artifacts() -> dict[tuple[str, str, str], dict]:
    """Committed artifacts keyed by (experiment, scale, engine label)."""
    artifacts: dict[tuple[str, str, str], dict] = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        # ``skip`` is null for default-skip runs; only an explicit
        # ``false`` (REPRO_BENCH_SKIP=0) marks a -noskip artifact.
        label = payload["engine"] + ("-noskip" if payload.get("skip") is False else "")
        artifacts[(payload["experiment"], payload["scale"], label)] = payload
    return artifacts


def check_reference_floor(artifacts: dict, problems: list[str]) -> None:
    """Every skip-enabled fast-engine artifact beats its reference."""
    for (experiment, scale, label), payload in artifacts.items():
        if label == "reference" or label.endswith("-noskip"):
            continue
        reference = artifacts.get((experiment, scale, "reference"))
        if reference is None:
            continue
        mine = payload["seconds"]["min"]
        floor = reference["seconds"]["min"]
        if mine > floor * REFERENCE_ALLOWANCE:
            problems.append(
                f"{experiment}/{scale}: committed {label!r} artifact took "
                f"{mine:.3f}s vs reference {floor:.3f}s — the fast engine "
                "is slower than the loop it is supposed to beat"
            )


def largest_cell(payload: dict, series_contains: str):
    """The largest-parameter cell of the matching series, or ``None``."""
    cells = [
        cell
        for cell in payload.get("cells", [])
        if series_contains in cell["series"]
    ]
    return max(cells, key=lambda cell: cell["parameter"]) if cells else None


def check_cell_speedups(artifacts: dict, problems: list[str]) -> None:
    """The declared engine-vs-engine cell ratios hold in committed data."""
    for experiment, scale, fast, slow, series, min_ratio in CELL_SPEEDUPS:
        fast_payload = artifacts.get((experiment, scale, fast))
        slow_payload = artifacts.get((experiment, scale, slow))
        if fast_payload is None or slow_payload is None:
            problems.append(
                f"{experiment}/{scale}: missing committed {fast!r} or "
                f"{slow!r} artifact for the {series!r} speedup guard"
            )
            continue
        fast_cell = largest_cell(fast_payload, series)
        slow_cell = largest_cell(slow_payload, series)
        if fast_cell is None or slow_cell is None:
            problems.append(
                f"{experiment}/{scale}: committed artifacts carry no "
                f"{series!r} cells — regenerate with cell recording on"
            )
            continue
        if fast_cell["parameter"] != slow_cell["parameter"]:
            problems.append(
                f"{experiment}/{scale}: artifacts disagree on the largest "
                f"{series!r} parameter ({fast_cell['parameter']} vs "
                f"{slow_cell['parameter']}) — regenerate both engines"
            )
            continue
        ratio = slow_cell["seconds"] / fast_cell["seconds"]
        if ratio < min_ratio:
            problems.append(
                f"{experiment}/{scale}: engine {fast!r} beats {slow!r} by "
                f"only {ratio:.2f}x on {fast_cell['series']!r} at parameter "
                f"{fast_cell['parameter']} ({slow_cell['seconds']:.3f}s -> "
                f"{fast_cell['seconds']:.3f}s), claimed >= {min_ratio:g}x"
            )


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print(f"no results directory at {RESULTS_DIR}", file=sys.stderr)
        return 1
    artifacts = load_artifacts()
    problems: list[str] = []
    check_reference_floor(artifacts, problems)
    check_cell_speedups(artifacts, problems)
    if problems:
        print(f"{len(problems)} bench-artifact problem(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"checked {len(artifacts)} committed bench artifacts: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
