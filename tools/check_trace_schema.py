#!/usr/bin/env python3
"""Trace schema checker: validates JSONL traces from ``repro.obs``.

Validates the committed sample trace (``docs/samples/trace_sample.jsonl``
by default, any trace file by argument) against the record schema
documented in ``src/repro/obs/report.py``:

* every line is a JSON object with ``kind`` ``"trial"`` or ``"shard"``;
* ``trial`` records carry ``engine`` (a registered engine name),
  integer ``seed``/``n``/``rounds``, boolean ``solved``, ``phases``
  (known phase name → positive integer nanoseconds), and ``counters``
  (name → number);
* ``shard`` records carry ``shard_id``, non-negative ``seconds``, and
  the same ``phases``/``counters`` shapes.

For the committed sample the checker additionally requires coverage:
all three engines must appear among the trial records, and at least
one shard rollup must be present — that is the acceptance bar for "the
sample shows a per-phase breakdown for every engine".

``--regenerate`` rebuilds the sample deterministically (a tiny E1b
campaign cell per engine, traced) before validating it. Run it after
changing the record schema or the phase taxonomy.

Exit status 0 when clean; 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

SAMPLE = REPO_ROOT / "docs" / "samples" / "trace_sample.jsonl"

_NUMBER = (int, float)


def _check_phases(record: dict, where: str, phases_taxonomy: tuple) -> list[str]:
    problems = []
    phases = record.get("phases")
    if not isinstance(phases, dict):
        return [f"{where}: 'phases' must be an object, got {type(phases).__name__}"]
    for name, ns in phases.items():
        if name not in phases_taxonomy:
            problems.append(f"{where}: unknown phase {name!r}")
        if not isinstance(ns, int) or isinstance(ns, bool) or ns <= 0:
            problems.append(
                f"{where}: phase {name!r} must be positive integer "
                f"nanoseconds, got {ns!r}"
            )
    return problems


def _check_counters(record: dict, where: str) -> list[str]:
    counters = record.get("counters")
    if not isinstance(counters, dict):
        return [
            f"{where}: 'counters' must be an object, got {type(counters).__name__}"
        ]
    return [
        f"{where}: counter {name!r} must be a number, got {value!r}"
        for name, value in counters.items()
        if not isinstance(value, _NUMBER) or isinstance(value, bool)
    ]


def check_trace(path: Path, *, require_coverage: bool = False) -> list[str]:
    from repro.core.engine import ENGINE_NAMES
    from repro.obs.report import PHASES, read_trace

    try:
        records = read_trace(str(path))
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not records:
        return [f"{path}: empty trace"]

    problems: list[str] = []
    engines_seen: set[str] = set()
    shards_seen = 0
    for index, record in enumerate(records, start=1):
        where = f"{path}:{index}"
        kind = record.get("kind")
        if kind == "trial":
            engine = record.get("engine")
            if engine not in ENGINE_NAMES:
                problems.append(f"{where}: unknown engine {engine!r}")
            else:
                engines_seen.add(engine)
            for key in ("seed", "n", "rounds"):
                value = record.get(key)
                if not isinstance(value, int) or isinstance(value, bool):
                    problems.append(f"{where}: {key!r} must be an int, got {value!r}")
            if not isinstance(record.get("solved"), bool):
                problems.append(f"{where}: 'solved' must be a bool")
            problems.extend(_check_phases(record, where, PHASES))
            problems.extend(_check_counters(record, where))
        elif kind == "shard":
            shards_seen += 1
            if not isinstance(record.get("shard_id"), str):
                problems.append(f"{where}: 'shard_id' must be a string")
            seconds = record.get("seconds")
            if not isinstance(seconds, _NUMBER) or isinstance(seconds, bool) or seconds < 0:
                problems.append(
                    f"{where}: 'seconds' must be a non-negative number, got {seconds!r}"
                )
            problems.extend(_check_phases(record, where, PHASES))
            problems.extend(_check_counters(record, where))
        else:
            problems.append(f"{where}: unknown record kind {kind!r}")

    if require_coverage:
        missing = set(ENGINE_NAMES) - engines_seen
        if missing:
            problems.append(
                f"{path}: sample must cover every engine; missing {sorted(missing)}"
            )
        if not shards_seen:
            problems.append(f"{path}: sample must include a shard rollup record")
    return problems


def regenerate_sample() -> None:
    """Rebuild the committed sample: one tiny E1b cell per engine, traced."""
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import ResultStore
    from repro.core.engine import ENGINE_NAMES
    from repro.obs.recorder import disable, enable

    SAMPLE.parent.mkdir(parents=True, exist_ok=True)
    spec = CampaignSpec(
        name="trace-sample",
        experiments=("E1b",),
        scales=("tiny",),
        engines=tuple(ENGINE_NAMES),
        seeds=(2013,),
    )
    with tempfile.TemporaryDirectory() as scratch:
        enable(str(SAMPLE))
        try:
            CampaignRunner(spec, ResultStore(scratch, bench_dir="")).run()
        finally:
            disable()
    print(f"regenerated {SAMPLE.relative_to(REPO_ROOT)}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace",
        nargs="?",
        default=str(SAMPLE),
        help="trace file to validate (default: the committed sample)",
    )
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help="rebuild the committed sample before validating",
    )
    args = parser.parse_args(argv)
    if args.regenerate:
        regenerate_sample()
    path = Path(args.trace)
    is_sample = path.resolve() == SAMPLE.resolve()
    problems = check_trace(path, require_coverage=is_sample)
    if problems:
        print(f"trace schema check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"trace schema check: {path} clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
