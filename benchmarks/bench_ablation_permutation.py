"""Ablation A1: does hiding the decay schedule matter? (§4.1 motivation)

Same dual clique, same oblivious schedule-predicting adversary, four
series: {plain, permuted} × {attacked, control}. The attack multiplies
plain decay's cost — its per-round prediction of the expected
transmitter count is exact — while permuted decay, whose rungs come
from post-start bits the adversary never sees, stays within a constant
of its unattacked control.
"""

from __future__ import annotations

from benchmarks._common import assert_contrasts, assert_success, run_experiment


def test_a1_hidden_schedule(benchmark):
    result = run_experiment(benchmark, "A1")
    assert_success(result)
    assert_contrasts(result)
