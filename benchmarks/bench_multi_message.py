"""Multi-message broadcast over abstract MAC layers (``M1``–``M3``).

The new workload axis: k-message dissemination through the simulated
MAC's decay-window contention resolution (GKLN queueing vs GLNP simple
back-off), the link-model tax on a multi-message workload, and the
simulated realization measured against the oracle envelope. The
``BENCH_M1_small_*.json`` artifacts extend the committed perf
trajectory to the MAC subsystem.
"""

from __future__ import annotations

from benchmarks._common import (
    assert_contrasts,
    assert_growth,
    assert_not_slower_than_reference,
    assert_success,
    run_experiment,
)


def test_m1_message_load(benchmark):
    result = run_experiment(benchmark, "M1")
    assert_not_slower_than_reference("M1")
    assert_success(result)
    # Back-off's robustness claim: near-linear in k at every scale.
    assert_growth(result, "backoff-concurrent vs GE-fade", "near-linear")
    # The crossover: ack-paced queueing wins at moderate load (k ≤ 8).
    gkln = result.series_by_label("gkln-queued vs GE-fade").sweep
    backoff = result.series_by_label("backoff-concurrent vs GE-fade").sweep
    for parameter, g, b in zip(
        gkln.parameters(), gkln.medians(), backoff.medians()
    ):
        if parameter <= 8:
            assert g < b, (
                f"k={parameter}: gkln {g} should beat backoff {b} at moderate load"
            )


def test_m2_link_models(benchmark):
    result = run_experiment(benchmark, "M2")
    assert_not_slower_than_reference("M2")
    assert_success(result)
    # The offline adaptive attacker is the regime that hurts.
    assert_contrasts(result)


def test_m3_mac_constants(benchmark):
    result = run_experiment(benchmark, "M3")
    assert_not_slower_than_reference("M3")
    assert_success(result)
    # The realized layer is never faster than its idealized envelope.
    assert_contrasts(result)
    assert_growth(result, "gkln on oracle MAC", "sublinear")
