"""Theorems 3.1 and 4.3 as executable reductions.

Runs the actual proof objects: the player P_A that wins β-hitting by
simulating a broadcast algorithm on the (bridgeless) dual clique with
the online dense/sparse link rule, and the bracelet player whose link
schedule is fixed obliviously from isolated band simulations
(Lemmas 4.4/4.5). The printed table shows guesses-to-win scaling with
β — the quantity Lemma 3.2 lower-bounds at Ω(β), which is what forces
the broadcast lower bounds.
"""

from __future__ import annotations

import math
import random
import statistics

from repro.algorithms.local_static import make_static_local_broadcast
from repro.algorithms.uniform import make_uniform_global_broadcast
from repro.analysis.tables import render_table
from repro.games.hitting import play_hitting_game
from repro.games.reduction_bracelet import BraceletReductionPlayer
from repro.games.reduction_clique import DualCliqueReductionPlayer

from benchmarks._common import BENCH_SCALE

SCALES = {
    "tiny": ([8, 16], [4, 6], 3),
    "small": ([16, 32, 64], [4, 6, 8], 5),
    "full": ([16, 32, 64, 128], [4, 6, 8, 12], 8),
}


def riding_global(n, side_a):
    threshold = 2.0 * math.log2(n)
    return make_uniform_global_broadcast(
        n, 0, probability=threshold / (2.0 * len(side_a))
    )


def heads_local(n, heads_a):
    return make_static_local_broadcast(n, frozenset(heads_a), max_degree=n - 1)


def run_clique_reduction():
    betas, _, trials = SCALES[BENCH_SCALE]
    rng = random.Random(31)
    rows = []
    medians = []
    for beta in betas:
        guesses = []
        sim_rounds = []
        for _ in range(trials):
            player = DualCliqueReductionPlayer(
                beta, riding_global, seed=rng.getrandbits(63)
            )
            outcome = play_hitting_game(beta, player, rng, max_guesses=4 * beta * beta)
            assert outcome.won
            guesses.append(outcome.guesses_used)
            sim_rounds.append(player.simulated_rounds)
        median = statistics.median(guesses)
        medians.append(median)
        rows.append([beta, median, statistics.median(sim_rounds), 2 * beta * beta])
    table = render_table(
        ["β", "median guesses", "median sim rounds", "naive β·2β cap"],
        rows,
        title="Theorem 3.1 reduction — P_A wins β-hitting via dual-clique simulation:",
    )
    return table, betas, medians


def run_bracelet_reduction():
    _, lengths, trials = SCALES[BENCH_SCALE]
    rng = random.Random(43)
    rows = []
    for length in lengths:
        guesses = []
        for _ in range(trials):
            player = BraceletReductionPlayer(
                length, heads_local, seed=rng.getrandbits(63)
            )
            outcome = play_hitting_game(
                length, player, rng, max_guesses=4 * length * length
            )
            assert outcome.won
            guesses.append(outcome.guesses_used)
        rows.append([length, 2 * length * length, statistics.median(guesses)])
    table = render_table(
        ["L (β)", "n = 2L²", "median guesses"],
        rows,
        title="Theorem 4.3 reduction — oblivious bracelet player (isolated-band labels):",
    )
    return table


def test_theorem_3_1_reduction(benchmark):
    table, betas, medians = benchmark.pedantic(
        run_clique_reduction, rounds=1, iterations=1
    )
    print()
    print(table)
    # Guesses stay far below the exhaustive β² and scale sub-quadratically.
    for beta, median in zip(betas, medians):
        assert median <= beta * beta / 2
    assert medians[-1] / medians[0] < (betas[-1] / betas[0]) ** 2


def test_theorem_4_3_reduction(benchmark):
    table = benchmark.pedantic(run_bracelet_reduction, rounds=1, iterations=1)
    print()
    print(table)
