"""Engine scale: round skipping at n ≥ 10⁴ (E1b_large).

E1b_large runs local broadcast on rings two decades of n past the
Figure-1 sweeps — the regime where engine implementation choices, not
asymptotic shape, dominate wall-clock time. The round-robin series is
~63/64 provably silent rounds, which the skip-enabled engines
fast-forward through; round counts stay bit-identical either way
(tests/test_skip_properties.py), so the two committed bitset artifacts
(default skip on vs ``REPRO_BENCH_SKIP=0``) isolate the skip win.

Regenerating the committed artifacts::

    REPRO_BENCH_ENGINE=reference pytest benchmarks/bench_engine_skip.py
    REPRO_BENCH_ENGINE=bitset    pytest benchmarks/bench_engine_skip.py
    REPRO_BENCH_ENGINE=bitset REPRO_BENCH_SKIP=0 \
        pytest benchmarks/bench_engine_skip.py
    REPRO_BENCH_ENGINE=bank     pytest benchmarks/bench_engine_skip.py
"""

from __future__ import annotations

from benchmarks._common import (
    assert_engine_cell_speedup,
    assert_growth,
    assert_not_slower_than_reference,
    assert_skip_speedup,
    assert_success,
    run_experiment,
)


def test_e1b_large_engine_scale(benchmark):
    result = run_experiment(benchmark, "E1b_large")
    assert_success(result)
    assert_growth(result, "round-robin (1/64 broadcasters)", "near-linear")
    assert_growth(result, "static-local-decay [8]", "sublinear")
    # The static-row separation, at engine scale: decay's polylog beats
    # the linear slot schedule by the experiment's contrast claim.
    for claim, ratio, holds in result.contrast_outcomes():
        assert holds, f"{claim.description}: measured {ratio:.1f}x"
    # Perf guards against the committed artifacts: the fast engine must
    # beat the reference loop, and skipping must pay >= 5x on the
    # silence-heavy series' largest cell.
    assert_not_slower_than_reference("E1b_large")
    assert_skip_speedup(
        "E1b_large", series_contains="round-robin", min_ratio=5.0
    )
    # The decay-kernel guard: the committed bank cells must beat the
    # committed bitset cells 3x on both single-message series' largest
    # parameter, or the struct-of-arrays path has regressed.
    assert_engine_cell_speedup(
        "E1b_large", series_contains="round-robin", min_ratio=3.0
    )
    assert_engine_cell_speedup(
        "E1b_large", series_contains="static-local-decay", min_ratio=3.0
    )
