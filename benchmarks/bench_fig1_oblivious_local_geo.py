"""Figure 1, row 3, local, geographic graphs: O(log² n log Δ) (Thm 4.6).

The Section 4.3 two-stage algorithm (seed-election initialization +
seed-coordinated permuted decay) on random quasi-unit-disk graphs under
the full oblivious suite — including the moving-fade and cut-jammer
adversaries that exploit geography. Round counts include the
initialization stage and stay polylog, completing the row's
general-vs-geographic separation against E8.
"""

from __future__ import annotations

from benchmarks._common import assert_success, run_experiment


def test_e9_oblivious_local_geographic(benchmark):
    result = run_experiment(benchmark, "E9")
    assert_success(result)
    # Polylog check, robust form: when n doubles, a log²n·logΔ round
    # count grows by well under 2x; a linear one doubles. (The fitted
    # exponent flirts with the class boundary at small n because the
    # initialization stage's ceil'd log factors step between points.)
    for sr in result.series_results:
        if "round-robin" in sr.series.label:
            continue
        for ratio in sr.sweep.growth_ratios():
            assert ratio <= 2.2, (
                f"{sr.series.label}: per-doubling ratio {ratio:.2f} "
                f"(medians {sr.sweep.medians()})"
            )
