"""Figure 1, row 3, global: O(D log n + log² n) obliviously (Theorem 4.1).

E7a: the *same dual clique* that costs near-linear rounds against the
adaptive adversaries (rows 1–2) costs only polylog against the whole
oblivious suite — the paper's central separation, measured. E7b checks
the ``D log n`` term on fading lines of cliques.
"""

from __future__ import annotations

from benchmarks._common import assert_growth, assert_success, run_experiment


def test_e7a_oblivious_global_constant_diameter(benchmark):
    result = run_experiment(benchmark, "E7a")
    assert_success(result)
    for sr in result.series_results:
        assert sr.growth_class == "sublinear", (
            f"{sr.series.label}: {sr.growth_class} ({sr.sweep.medians()})"
        )


def test_e7b_oblivious_global_diameter_sweep(benchmark):
    result = run_experiment(benchmark, "E7b")
    assert_success(result)
    assert_growth(result, "permuted-decay vs GE-fade", "near-linear")
    # Round robin's nD pays an extra factor of n over permuted decay.
    rr = result.series_by_label("round-robin vs GE-fade")
    pd = result.series_by_label("permuted-decay vs GE-fade")
    assert rr.sweep.medians()[-1] > 2 * pd.sweep.medians()[-1]
