"""Ablation A2: do *shared* permutation rungs matter? (Lemma 4.2)

Funnel graph, fully static: the sink hears the entire informed middle
clique, so a delivery needs exactly one transmitter among k = n−2
peers. With shared rungs (permuted decay) or a shared clock (plain
decay) the solo window opens with probability Ω(1/log n) per round;
with private rungs it collapses like (k/log n)·e^{-k/log n} — the
uncoordinated series stops solving at all as n grows.
"""

from __future__ import annotations

from benchmarks._common import assert_contrasts, assert_success, run_experiment


def test_a2_shared_rungs(benchmark):
    result = run_experiment(benchmark, "A2")
    assert_success(result, skip_labels=("uncoordinated",))
    assert_contrasts(result)
    # The collapse is visible in the success rate itself at the top n.
    uncoordinated = result.series_by_label("uncoordinated decay (private rungs)")
    assert uncoordinated.sweep.success_rates()[-1] < 1.0
