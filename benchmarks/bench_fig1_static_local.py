"""Figure 1, row 4, local broadcast: ``Θ(log n log Δ)`` in the static model.

E2a runs [8]-style decay local broadcast on geographic graphs (constant
density ⇒ slowly growing Δ); E2b stresses the ``log Δ`` term on
all-broadcaster cliques (Δ = n − 1) and shows the ladder is the
mechanism by ablating it to a single rung.
"""

from __future__ import annotations

from benchmarks._common import assert_growth, assert_success, run_experiment


def test_e2a_static_local_geographic(benchmark):
    result = run_experiment(benchmark, "E2a")
    assert_success(result)
    assert_growth(result, "static-local-decay [8]", "sublinear")
    # Round robin pays Θ(n) regardless of the easy radio environment.
    rr = result.series_by_label("round-robin")
    decay = result.series_by_label("static-local-decay [8]")
    assert rr.sweep.medians()[-1] > 2 * decay.sweep.medians()[-1]


def test_e2b_static_local_clique(benchmark):
    result = run_experiment(benchmark, "E2b")
    assert_success(result, skip_labels=("ladderless",))
    assert_growth(
        result, "static-local-decay [8] (ladder to 1/Δ)", "sublinear"
    )
    # Without the ladder the fixed 1/2 rate cannot find a solo
    # transmitter among n-1 contenders: it must be far slower (or
    # censored at its cap) at the largest n.
    ladder = result.series_by_label("static-local-decay [8] (ladder to 1/Δ)")
    flat = result.series_by_label("uniform(1/2) ladderless")
    assert flat.sweep.medians()[-1] > 3 * ladder.sweep.medians()[-1]
