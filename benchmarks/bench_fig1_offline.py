"""Figure 1, row 1: the offline adaptive dual graph model — Ω(n) [11].

The solo-blocker adversary (sees the realized coins) forces linear
round counts on the constant-diameter dual clique for both problems,
and round robin's O(n) upper bound closes the cell from above: the
measured victim and baseline medians grow together, linearly.
"""

from __future__ import annotations

from benchmarks._common import assert_growth, assert_success, run_experiment


def test_e3_offline_adaptive_global(benchmark):
    result = run_experiment(benchmark, "E3")
    assert_success(result)
    assert_growth(result, "uniform(1/|A|) vs solo-blocker", "near-linear")
    assert_growth(result, "round-robin vs solo-blocker", "near-linear")
    # Ω(n) floor with a generous constant.
    victim = result.series_by_label("uniform(1/|A|) vs solo-blocker")
    for n, median in zip(victim.sweep.parameters(), victim.sweep.medians()):
        assert median >= n / 8


def test_e4_offline_adaptive_local(benchmark):
    result = run_experiment(benchmark, "E4")
    assert_success(result)
    assert_growth(result, "uniform(1/|A|) vs solo-blocker", "near-linear")
    # Footnote 4: round robin solves local broadcast within n rounds
    # against ANY link process — deterministically.
    rr = result.series_by_label("round-robin vs solo-blocker")
    for point in rr.sweep.points:
        for trial in point.stats.results:
            assert trial.solved and trial.rounds <= point.parameter
