"""Figure 1, row 3, local, general graphs: Ω(√n / log n) (Theorem 4.3).

The bracelet attacker pre-simulates every band in isolation
(Lemma 4.4), fixes its dense/sparse cross-edge schedule before round 0,
and still delays local broadcast for rounds growing like √n — while the
identical algorithm without the attack stays flat. This is the cell
that separates general graphs from E9's geographic ones.
"""

from __future__ import annotations

from benchmarks._common import assert_contrasts, assert_success, run_experiment


def test_e8_oblivious_local_general_graphs(benchmark):
    result = run_experiment(benchmark, "E8")
    assert_success(result)
    # √n-shape check by total growth: over the sweep's ~9x range of n,
    # √n predicts ~3x; linear would be ~9x; flat would be ~1x. The
    # apparent power-law exponent sits exactly on the class boundary at
    # this window, so the ratio bound is the robust assertion.
    riding = result.series_by_label("threshold-riding uniform vs bracelet attacker")
    medians = riding.sweep.medians()
    params = riding.sweep.parameters()
    total_growth = medians[-1] / medians[0]
    param_growth = params[-1] / params[0]
    assert 1.5 <= total_growth <= 0.75 * param_growth, (
        f"growth {total_growth:.1f}x over {param_growth:.0f}x n: "
        "expected clearly-growing but clearly-sublinear"
    )
    # The attack's bite: attacked runs measurably slower than the
    # unattacked control at the largest n, and the gap widens with n.
    assert_contrasts(result)
    control = result.series_by_label("static-local-decay, no attack")
    first_gap = medians[0] / max(control.sweep.medians()[0], 1)
    last_gap = medians[-1] / max(control.sweep.medians()[-1], 1)
    assert last_gap > first_gap
