"""Shared bench harness.

Every bench runs one registry experiment exactly once (timed through
``benchmark.pedantic``), prints the full report — the regenerated
Figure-1 row — and asserts the robust facts (success rates, growth
classes, contrast claims) that the paper's table rests on.

Scale selection: set ``REPRO_BENCH_SCALE=tiny|small|full`` (default
``small``). ``full`` reproduces the EXPERIMENTS.md numbers; ``small``
keeps the suite in the minutes range.
"""

from __future__ import annotations

import os

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.registry import ExperimentResult

__all__ = ["BENCH_SCALE", "run_experiment", "assert_success", "assert_contrasts"]

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Master seed shared by all benches (the paper year).
MASTER_SEED = 2013


def run_experiment(benchmark, exp_id: str) -> ExperimentResult:
    """Run experiment ``exp_id`` once under the benchmark timer."""
    experiment = ALL_EXPERIMENTS[exp_id]

    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH_SCALE, master_seed=MASTER_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    return result


def assert_success(result: ExperimentResult, *, skip_labels: tuple[str, ...] = ()) -> None:
    """Every (non-skipped) series solved every trial within its cap."""
    for sr in result.series_results:
        if any(skip in sr.series.label for skip in skip_labels):
            continue
        rate = min(sr.sweep.success_rates())
        assert rate == 1.0, f"{sr.series.label}: min success {rate:.0%}"


def assert_contrasts(result: ExperimentResult) -> None:
    """All of the experiment's contrast claims hold."""
    for claim, ratio, holds in result.contrast_outcomes():
        assert holds, (
            f"contrast {claim.slow_label!r} / {claim.fast_label!r}: measured "
            f"{ratio:.2f}x, claimed ≥ {claim.min_ratio:g}x"
        )


def assert_growth(result: ExperimentResult, label: str, expected: str) -> None:
    """One series' coarse growth class matches."""
    sr = result.series_by_label(label)
    assert sr.growth_class == expected, (
        f"{label}: measured growth {sr.growth_class}, expected {expected} "
        f"(medians {sr.sweep.medians()})"
    )
