"""Shared bench harness.

Every bench runs one registry experiment (timed through
``benchmark.pedantic``), prints the full report — the regenerated
Figure-1 row — and asserts the robust facts (success rates, growth
classes, contrast claims) that the paper's table rests on.

Knobs (environment variables):

* ``REPRO_BENCH_SCALE=tiny|small|full`` (default ``small``) — sweep
  sizing. ``full`` reproduces the EXPERIMENTS.md numbers; ``small``
  keeps the suite in the minutes range.
* ``REPRO_BENCH_ENGINE=reference|bitset|bank`` (default ``reference``)
  — the round-loop implementation
  (:data:`repro.core.engine.ENGINE_NAMES`). Results are seed-for-seed
  identical across engines, so switching only moves wall-clock time;
  run a bench once per engine to measure the fast engines' speedup.
* ``REPRO_BENCH_SKIP=1|0`` (default unset) — force event-driven round
  skipping on or off for every trial; unset leaves each engine's own
  default (on for bitset/bank, off for reference). Results are
  identical either way (tests/test_skip_properties.py pins this), so
  the knob exists purely to measure the skip win: artifacts from an
  explicit setting carry an engine label suffix (``bitset-noskip``,
  ``reference-skip``) so both sides of the comparison can be
  committed side by side.
* ``REPRO_BENCH_REPEATS`` (default 1) — timing repeats per experiment;
  with ≥ 2 the JSON artifact gains a spread and a 95% CI.
* ``REPRO_BENCH_RESULTS`` — directory for the machine-readable
  ``BENCH_<experiment>_<scale>_<engine>.json`` artifacts (default
  ``benchmarks/results/``). Set it empty to disable writing.
* ``REPRO_BENCH_PROFILE=1`` — run the experiment under ``cProfile``
  (via :func:`repro.obs.profile.profiled`, the same helper behind
  ``repro trace --profile``) and write the top-20 cumulative-time
  functions to ``BENCH_<experiment>_<scale>_<engine>.profile.txt``
  beside the JSON artifact. This is the first tool to reach for when a
  bench number moves: the profile names the Python-level hotspot (plan
  loops, mask minting, observer dispatch) that the timings alone only
  hint at. Profiling overhead inflates wall times, so profiled runs
  still write the JSON artifact but should not be committed as timing
  artifacts.
* ``REPRO_BENCH_TRACE=0`` — disable the per-phase breakdown. By
  default each bench also runs under a timing-only
  :mod:`repro.obs.recorder` and writes the engine-phase nanoseconds
  plus semantic counters to ``TRACE_<experiment>_<scale>_<engine>.json``
  beside the timing artifact (the ``TRACE_`` prefix keeps it out of the
  store's ``BENCH_*.json`` merge glob). Tracing overhead is pinned at
  ≤ 3% by ``tests/test_obs.py``, and it is applied uniformly, so
  committed artifacts stay comparable.

The JSON artifacts are how the perf trajectory is tracked across PRs:
each file records the experiment, scale, engine, per-repeat wall
times, and summary statistics, so ``git log -p benchmarks/results``
reads as a performance history. See ``docs/architecture.md``
("Engines") for how to read them. The campaign layer's
:class:`repro.campaign.store.ResultStore` merges these artifacts with
campaign shard records into one queryable history, and
``repro campaign report`` renders them into ``docs/results.md``.
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import time
from pathlib import Path
from typing import Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.registry import ExperimentResult

__all__ = [
    "BENCH_SCALE",
    "BENCH_ENGINE",
    "BENCH_REPEATS",
    "BENCH_SKIP",
    "ENGINE_LABEL",
    "run_experiment",
    "assert_success",
    "assert_contrasts",
    "assert_growth",
    "assert_not_slower_than_reference",
    "assert_skip_speedup",
]

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "reference")
BENCH_REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "1")))

_SKIP_ENV = os.environ.get("REPRO_BENCH_SKIP", "").strip().lower()
#: None = each engine's default; True/False = forced for every trial.
BENCH_SKIP: Optional[bool] = (
    None if _SKIP_ENV in ("", "default") else _SKIP_ENV in ("1", "true", "on", "yes")
)

#: Engine label used in artifact names: the engine itself under default
#: skip semantics, suffixed when skip is forced so that e.g. ``bitset``
#: and ``bitset-noskip`` artifacts coexist for the speedup comparison.
ENGINE_LABEL = BENCH_ENGINE + {True: "-skip", False: "-noskip", None: ""}[BENCH_SKIP]

#: When truthy, run each experiment under cProfile and dump the top-20
#: cumulative functions beside the JSON artifact.
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
)

#: Phase breakdown: on unless REPRO_BENCH_TRACE explicitly disables it.
BENCH_TRACE = os.environ.get("REPRO_BENCH_TRACE", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)

#: Master seed shared by all benches (the paper year).
MASTER_SEED = 2013


def _results_dir() -> Optional[Path]:
    configured = os.environ.get("REPRO_BENCH_RESULTS")
    if configured is not None:
        return Path(configured) if configured else None
    return Path(__file__).resolve().parent / "results"


def _summarize(seconds: list[float]) -> dict:
    """Median/CI summary of repeat wall times (normal-approximation CI)."""
    summary = {
        "all": [round(s, 6) for s in seconds],
        "median": round(statistics.median(seconds), 6),
        "mean": round(statistics.fmean(seconds), 6),
        "min": round(min(seconds), 6),
        "max": round(max(seconds), 6),
    }
    if len(seconds) >= 2:
        stdev = statistics.stdev(seconds)
        half_width = 1.96 * stdev / math.sqrt(len(seconds))
        mean = statistics.fmean(seconds)
        summary["stdev"] = round(stdev, 6)
        summary["ci95"] = [round(mean - half_width, 6), round(mean + half_width, 6)]
    else:
        summary["stdev"] = None
        summary["ci95"] = None
    return summary


def write_bench_artifact(
    exp_id: str, seconds: list[float], cells: Optional[list[dict]] = None
) -> Optional[Path]:
    """Persist ``BENCH_<exp>_<scale>_<engine>.json`` (returns its path).

    ``cells`` (optional) attributes wall time per sweep cell — one
    ``{"series", "parameter", "seconds"}`` entry per (series, swept
    parameter) pair, min across repeats. Cell timings are what the
    skip-speedup guard reads: whole-experiment seconds mix every
    series, while the skip win lives in specific large-n cells.
    """
    directory = _results_dir()
    if directory is None:
        return None
    from repro.campaign.spec import Shard

    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        # schema/kind let the campaign ResultStore merge bench artifacts
        # with shard records into one queryable history.
        "schema": 1,
        "kind": "bench",
        "experiment": exp_id,
        "scale": BENCH_SCALE,
        "engine": BENCH_ENGINE,
        "skip": BENCH_SKIP,
        "master_seed": MASTER_SEED,
        # The same dedup key campaign shard records carry: a bench and
        # a shard of the same (experiment, scale, engine) cell share a
        # spec_hash, so store queries can join timing to verdicts.
        "spec_hash": Shard(
            campaign="bench",
            experiment=exp_id,
            scale=BENCH_SCALE,
            engine=BENCH_ENGINE,
            master_seed=MASTER_SEED,
        ).spec_hash(),
        "repeats": len(seconds),
        "seconds": _summarize(seconds),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if cells is not None:
        payload["cells"] = cells
    path = directory / f"BENCH_{exp_id}_{BENCH_SCALE}_{ENGINE_LABEL}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _write_profile(exp_id: str, profiler) -> Optional[Path]:
    """Dump the top-20 cumulative-time rows of a finished profiler."""
    directory = _results_dir()
    if directory is None:
        return None
    from repro.obs.profile import profile_text

    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{exp_id}_{BENCH_SCALE}_{ENGINE_LABEL}.profile.txt"
    path.write_text(profile_text(profiler))
    return path


def _write_phases(exp_id: str, delta: dict, repeats: int) -> Optional[Path]:
    """Persist the phase/counter breakdown beside the timing artifact.

    ``delta`` is a recorder counter delta spanning every repeat;
    ``phase.*`` keys become the nanosecond phase map, the rest stay
    semantic counters. The ``TRACE_`` filename prefix keeps the file
    out of the store's ``BENCH_*.json`` merge glob.
    """
    directory = _results_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": 1,
        "kind": "bench-phases",
        "experiment": exp_id,
        "scale": BENCH_SCALE,
        "engine": BENCH_ENGINE,
        "skip": BENCH_SKIP,
        "repeats": repeats,
        "phases_ns": {
            name[len("phase."):]: value
            for name, value in sorted(delta.items())
            if name.startswith("phase.")
        },
        "counters": {
            name: value
            for name, value in sorted(delta.items())
            if not name.startswith("phase.")
        },
    }
    path = directory / f"TRACE_{exp_id}_{BENCH_SCALE}_{ENGINE_LABEL}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_experiment(benchmark, exp_id: str) -> ExperimentResult:
    """Run experiment ``exp_id`` under the benchmark timer.

    The experiment executes ``BENCH_REPEATS`` times with the engine
    selected by ``REPRO_BENCH_ENGINE``; wall times are recorded both in
    pytest-benchmark's own stats and in the committed JSON artifact.
    """
    experiment = ALL_EXPERIMENTS[exp_id]
    seconds: list[float] = []
    cell_seconds: dict[tuple[str, object], float] = {}
    profiler = None
    if BENCH_PROFILE:
        import cProfile

        profiler = cProfile.Profile()
    obs = None
    obs_mark: Optional[dict] = None
    if BENCH_TRACE:
        from repro.obs.recorder import enable as _obs_enable
        from repro.obs.recorder import recorder as _obs_recorder

        # Respect an externally-enabled recorder; otherwise own a
        # timing-only one for the span of this experiment.
        obs = _obs_recorder()
        owns_obs = obs is None
        if owns_obs:
            obs = _obs_enable(None)
        obs_mark = obs.checkpoint()
    else:
        owns_obs = False

    def timed_run() -> ExperimentResult:
        started = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        try:
            outcome = experiment.run(
                scale=BENCH_SCALE,
                master_seed=MASTER_SEED,
                engine=BENCH_ENGINE,
                skip=BENCH_SKIP,
            )
        finally:
            if profiler is not None:
                profiler.disable()
        seconds.append(time.perf_counter() - started)
        for sr in outcome.series_results:
            for point in sr.sweep.points:
                if point.seconds is None:
                    continue
                key = (sr.series.label, point.parameter)
                best = cell_seconds.get(key)
                if best is None or point.seconds < best:
                    cell_seconds[key] = point.seconds
        return outcome

    result = benchmark.pedantic(timed_run, rounds=BENCH_REPEATS, iterations=1)
    phases_path = None
    if obs is not None and obs_mark is not None:
        delta = obs.delta(obs_mark)
        if owns_obs:
            from repro.obs.recorder import disable as _obs_disable

            _obs_disable()
        if delta:
            phases_path = _write_phases(exp_id, delta, len(seconds))
    cells = [
        {"series": label, "parameter": parameter, "seconds": round(value, 6)}
        for (label, parameter), value in sorted(
            cell_seconds.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        )
    ]
    artifact = write_bench_artifact(exp_id, seconds, cells or None)
    print()
    print(result.render())
    print(
        f"[engine={ENGINE_LABEL}, repeats={len(seconds)}, "
        f"median={statistics.median(seconds):.2f}s"
        + (f", artifact={artifact}]" if artifact else "]")
    )
    if phases_path is not None:
        print(f"[phases={phases_path}]")
    if profiler is not None:
        profile_path = _write_profile(exp_id, profiler)
        if profile_path is not None:
            print(f"[profile={profile_path}]")
    return result


def assert_success(result: ExperimentResult, *, skip_labels: tuple[str, ...] = ()) -> None:
    """Every (non-skipped) series solved every trial within its cap."""
    for sr in result.series_results:
        if any(skip in sr.series.label for skip in skip_labels):
            continue
        rate = min(sr.sweep.success_rates())
        assert rate == 1.0, f"{sr.series.label}: min success {rate:.0%}"


def assert_contrasts(result: ExperimentResult) -> None:
    """All of the experiment's contrast claims hold."""
    for claim, ratio, holds in result.contrast_outcomes():
        assert holds, (
            f"contrast {claim.slow_label!r} / {claim.fast_label!r}: measured "
            f"{ratio:.2f}x, claimed ≥ {claim.min_ratio:g}x"
        )


def assert_not_slower_than_reference(exp_id: str) -> None:
    """Fail loudly (nonzero pytest exit) when a fast engine loses.

    Compares the artifact this run just wrote against the committed
    ``reference``-engine artifact for the same (experiment, scale)
    cell. This is the regression tripwire for the bitset MAC slowdown:
    the fast path once shipped *losing* 2x on every M experiment while
    the equivalence suite stayed green, because nothing asserted wall
    time. Min-of-repeats is compared (the noise-robust statistic).

    A no-op for the reference engine itself, and when either artifact
    is missing (fresh checkout, artifacts disabled) — the guard bites
    exactly when someone regenerates a fast-engine artifact. The 10%
    allowance absorbs machine noise between the two runs (the original
    regression was a 2x loss, not a rounding error); artifacts
    committed together should still show the fast engine strictly
    ahead.
    """
    if BENCH_ENGINE == "reference":
        return
    directory = _results_dir()
    if directory is None:
        return
    baseline_path = directory / f"BENCH_{exp_id}_{BENCH_SCALE}_reference.json"
    mine_path = directory / f"BENCH_{exp_id}_{BENCH_SCALE}_{ENGINE_LABEL}.json"
    if not baseline_path.exists() or not mine_path.exists():
        return
    baseline = json.loads(baseline_path.read_text())["seconds"]["min"]
    mine = json.loads(mine_path.read_text())["seconds"]["min"]
    assert mine <= baseline * 1.10, (
        f"{exp_id}/{BENCH_SCALE}: engine {ENGINE_LABEL!r} took {mine:.3f}s "
        f"vs reference {baseline:.3f}s — the fast engine is slower than "
        "the loop it is supposed to beat"
    )


def assert_skip_speedup(
    exp_id: str,
    *,
    series_contains: str,
    min_ratio: float,
    engine: str = "bitset",
) -> None:
    """The committed skip-on artifact beats skip-off by ``min_ratio``.

    Compares the largest-parameter cell of the matching series between
    ``BENCH_<exp>_<scale>_<engine>.json`` (skip on by default for fast
    engines) and ``BENCH_<exp>_<scale>_<engine>-noskip.json``
    (``REPRO_BENCH_SKIP=0``). Cell-level comparison is deliberate: the
    whole-experiment total mixes in series and build work that skipping
    cannot touch, while the claim — event-driven skipping pays at
    scale — lives in the silence-heavy series' biggest cell.

    A no-op when either artifact is missing or lacks cells (fresh
    checkout, artifacts disabled); like the reference guard, it bites
    when artifacts are regenerated.
    """
    directory = _results_dir()
    if directory is None:
        return
    pair = {}
    for label in (engine, f"{engine}-noskip"):
        path = directory / f"BENCH_{exp_id}_{BENCH_SCALE}_{label}.json"
        if not path.exists():
            return
        cells = [
            cell
            for cell in json.loads(path.read_text()).get("cells", [])
            if series_contains in cell["series"]
        ]
        if not cells:
            return
        pair[label] = max(cells, key=lambda cell: cell["parameter"])
    skipping = pair[engine]
    full = pair[f"{engine}-noskip"]
    assert skipping["parameter"] == full["parameter"], (
        f"{exp_id}/{BENCH_SCALE}: artifacts disagree on the largest "
        f"parameter ({skipping['parameter']} vs {full['parameter']}) — "
        "regenerate both sides at the same scale"
    )
    ratio = full["seconds"] / skipping["seconds"]
    assert ratio >= min_ratio, (
        f"{exp_id}/{BENCH_SCALE}: round skipping bought only {ratio:.2f}x "
        f"on {skipping['series']!r} at parameter {skipping['parameter']} "
        f"({full['seconds']:.3f}s -> {skipping['seconds']:.3f}s), "
        f"claimed >= {min_ratio:g}x"
    )


def assert_engine_cell_speedup(
    exp_id: str,
    *,
    series_contains: str,
    min_ratio: float,
    fast: str = "bank",
    slow: str = "bitset",
) -> None:
    """The committed ``fast``-engine artifact beats ``slow`` by ``min_ratio``.

    Compares the largest-parameter cell of the matching series between
    ``BENCH_<exp>_<scale>_<fast>.json`` and the corresponding ``slow``
    artifact. This is the tripwire for the struct-of-arrays decay
    kernels: the single-message family is supposed to run its whole
    plan/coin/MAC round on numpy lanes, and losing that path (a kernel
    selection regression, a silent fallback to per-process simulation)
    shows up exactly here — the equivalence suite stays green either
    way because the fallback is byte-identical, just slow.

    Like the other artifact guards this is a no-op when either artifact
    is missing or lacks cells, and it reads *committed* numbers — the
    guard bites when someone regenerates the fast artifact on a machine
    where the kernels stopped paying.
    """
    directory = _results_dir()
    if directory is None:
        return
    pair = {}
    for label in (fast, slow):
        path = directory / f"BENCH_{exp_id}_{BENCH_SCALE}_{label}.json"
        if not path.exists():
            return
        cells = [
            cell
            for cell in json.loads(path.read_text()).get("cells", [])
            if series_contains in cell["series"]
        ]
        if not cells:
            return
        pair[label] = max(cells, key=lambda cell: cell["parameter"])
    assert pair[fast]["parameter"] == pair[slow]["parameter"], (
        f"{exp_id}/{BENCH_SCALE}: artifacts disagree on the largest "
        f"parameter ({pair[fast]['parameter']} vs {pair[slow]['parameter']}) "
        "— regenerate both engines at the same scale"
    )
    ratio = pair[slow]["seconds"] / pair[fast]["seconds"]
    assert ratio >= min_ratio, (
        f"{exp_id}/{BENCH_SCALE}: engine {fast!r} beat {slow!r} by only "
        f"{ratio:.2f}x on {pair[fast]['series']!r} at parameter "
        f"{pair[fast]['parameter']} ({pair[slow]['seconds']:.3f}s -> "
        f"{pair[fast]['seconds']:.3f}s), claimed >= {min_ratio:g}x"
    )


def assert_growth(result: ExperimentResult, label: str, expected: str) -> None:
    """One series' coarse growth class matches."""
    sr = result.series_by_label(label)
    assert sr.growth_class == expected, (
        f"{label}: measured growth {sr.growth_class}, expected {expected} "
        f"(medians {sr.sweep.medians()})"
    )
