"""Figure 1, row 2: the online adaptive dual graph model — Ω(n/log n).

Theorem 3.1's dense/sparse adversary (thresholds the conditional
expectation ``E[|X| | S]``, never the coins) on the dual clique. The
threshold-riding uniform algorithm is the best response: it keeps every
round sparse and pays ``Θ(n / threshold) = Θ(n / log n)`` — the row's
shape, a log factor below the offline row measured in
``bench_fig1_offline``.
"""

from __future__ import annotations

import math

from benchmarks._common import assert_growth, assert_success, run_experiment


def test_e5_online_adaptive_global(benchmark):
    result = run_experiment(benchmark, "E5")
    assert_success(result)
    assert_growth(
        result, "threshold-riding uniform vs dense/sparse", "near-linear"
    )
    # Ω(n / log n) floor with a generous constant.
    riding = result.series_by_label("threshold-riding uniform vs dense/sparse")
    for n, median in zip(riding.sweep.parameters(), riding.sweep.medians()):
        assert median >= n / math.log2(n) / 8


def test_e6_online_adaptive_local(benchmark):
    result = run_experiment(benchmark, "E6")
    assert_success(result)
    assert_growth(
        result, "threshold-riding uniform vs dense/sparse", "near-linear"
    )
    riding = result.series_by_label("threshold-riding uniform vs dense/sparse")
    for n, median in zip(riding.sweep.parameters(), riding.sweep.medians()):
        assert median >= n / math.log2(n) / 8
