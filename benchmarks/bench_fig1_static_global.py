"""Figure 1, row 4, global broadcast: the static protocol model.

Regenerates the ``Θ(D log(n/D) + log² n)`` reference cell twice over:
E1a sweeps the diameter (line of cliques), E1b sweeps contention at
constant diameter (cliques). Together they exhibit both terms of the
classic bound that the dual-graph rows are measured against.
"""

from __future__ import annotations

from benchmarks._common import assert_growth, assert_success, run_experiment


def test_e1a_static_global_diameter_sweep(benchmark):
    result = run_experiment(benchmark, "E1a")
    assert_success(result)
    # At fixed n both grow linearly with D; round robin pays ~n per hop
    # vs decay's ~log n, which the registry's contrast claim certifies.
    assert_growth(result, "plain-decay [2]", "near-linear")
    assert_growth(result, "round-robin", "near-linear")


def test_e1b_static_global_contention_sweep(benchmark):
    result = run_experiment(benchmark, "E1b")
    assert_success(result)
    # Constant diameter: only the polylog contention term remains.
    assert_growth(result, "plain-decay [2]", "sublinear")
    assert_growth(result, "permuted-decay §4.1", "sublinear")
