"""Lemma 3.2: the β-hitting envelope — no player beats k/(β−1).

Regenerates the lemma the lower bounds stand on: empirical win rates
for three player strategies across a (β, k) grid, printed against the
envelope. The no-repeat player achieves k/β, pinning the envelope to
within its β/(β−1) slack.
"""

from __future__ import annotations

import random

from repro.analysis.tables import render_table
from repro.games.hitting import (
    NoRepeatRandomPlayer,
    SequentialPlayer,
    UniformRandomPlayer,
    empirical_win_rate,
    lemma_3_2_envelope,
)

from benchmarks._common import BENCH_SCALE

GRID = {
    "tiny": ([(32, 4), (32, 16)], 200),
    "small": ([(64, 8), (64, 32), (128, 16), (128, 64)], 600),
    "full": ([(64, 8), (64, 32), (128, 16), (128, 64), (256, 32), (256, 128)], 1500),
}


def run_grid():
    cells, trials = GRID[BENCH_SCALE]
    rng = random.Random(2013)
    rows = []
    all_within = True
    for beta, k in cells:
        envelope = lemma_3_2_envelope(beta, k)
        slack = 3.0 * (envelope * (1 - envelope) / trials) ** 0.5 + 0.02
        rates = {
            "sequential": empirical_win_rate(
                beta, k, lambda r: SequentialPlayer(beta), trials=trials, rng=rng
            ),
            "uniform": empirical_win_rate(
                beta, k, lambda r: UniformRandomPlayer(beta, r), trials=trials, rng=rng
            ),
            "no-repeat": empirical_win_rate(
                beta, k, lambda r: NoRepeatRandomPlayer(beta, r), trials=trials, rng=rng
            ),
        }
        within = all(rate <= envelope + slack for rate in rates.values())
        all_within = all_within and within
        rows.append(
            [
                beta,
                k,
                f"{envelope:.3f}",
                f"{rates['sequential']:.3f}",
                f"{rates['uniform']:.3f}",
                f"{rates['no-repeat']:.3f}",
                within,
            ]
        )
    table = render_table(
        ["β", "k", "k/(β-1)", "sequential", "uniform", "no-repeat", "within"],
        rows,
        title="Lemma 3.2 — empirical win rates vs the envelope:",
    )
    return table, all_within


def test_lemma_3_2_envelope(benchmark):
    table, all_within = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print()
    print(table)
    assert all_within
