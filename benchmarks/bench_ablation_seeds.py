"""Ablation A3: does the §4.3 initialization stage matter?

Dense cluster-chain geographic graphs with every node broadcasting:
receivers neighbor Θ(n/4) broadcasters. With the initialization stage,
each cluster converges on O(log n) shared seeds and the broadcast stage
finds solo seed-classes at rate Ω(1/log n); self-seeded nodes form
singleton classes and pay the uncoordinated collapse locally. Stage
timing is identical in both variants, so the gap is pure coordination.
"""

from __future__ import annotations

from benchmarks._common import assert_contrasts, assert_success, run_experiment


def test_a3_seed_sharing(benchmark):
    result = run_experiment(benchmark, "A3")
    assert_success(result, skip_labels=("naive",))
    assert_contrasts(result)
