#!/usr/bin/env python3
"""Watching an oblivious adversary predict the future (Theorem 4.3).

The bracelet network's bands evolve independently for their first
L = √(n/2) rounds, so an adversary that must commit its link schedule
*before round 0* can still simulate each band privately (Lemma 4.4),
predict how many band heads will broadcast each round, and sever the
cross links exactly when few heads speak. This demo shows:

1. the prediction quality — predicted vs. realized head counts, round
   by round (Lemma 4.5's concentration, visualized), and
2. the damage — rounds to solve local broadcast with and without the
   precomputed attack.

Run:  python examples/bracelet_attack_demo.py [--band-length 16]
"""

from __future__ import annotations

import argparse
import random
import statistics

from repro.adversaries import NoFlakyLinks
from repro.adversaries.bracelet_attack import BraceletObliviousAttacker
from repro.algorithms import make_static_local_broadcast
from repro.analysis import render_table, run_broadcast_trial
from repro.core import RadioNetworkEngine, TraceCollector
from repro.core.rng import derive_seed
from repro.graphs import bracelet
from repro.problems import LocalBroadcastProblem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--band-length", type=int, default=16)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args()

    length = args.band_length
    br = bracelet(length, rng=random.Random(args.seed))
    broadcasters = frozenset(br.heads_a())
    spec = make_static_local_broadcast(br.n, broadcasters, br.graph.max_degree)
    print(f"bracelet : {br.graph.summary()}  (L = {length}, n = {br.n})")
    print(f"secret   : clasp joins band pair #{br.clasp_index} — the attacker never sees this\n")

    # --- 1. Prediction quality ---------------------------------------
    # The engine starts the attacker with the algorithm description
    # (spec.info() carries the blueprint the isolated simulations need).
    attacker = BraceletObliviousAttacker(br, threshold_factor=0.75)
    processes = spec.build_processes(br.n, br.graph.max_degree, seed=args.seed + 2)
    trace = TraceCollector()
    engine = RadioNetworkEngine(
        br.graph,
        processes,
        attacker,
        seed=args.seed + 2,
        algorithm_info=spec.info(),
        observers=[trace],
    )
    head_mask = 0
    for head in br.heads_a() + br.heads_b():
        head_mask |= 1 << head
    engine.run(max_rounds=min(length, 12))
    rows = []
    for r, record in enumerate(trace.records):
        realized = bin(record.transmitter_mask & head_mask).count("1")
        rows.append(
            [
                r,
                attacker.predicted_counts[r],
                realized,
                "dense (links ON)" if attacker.labels[r] else "sparse (links OFF)",
            ]
        )
    print(
        render_table(
            ["round", "predicted heads", "realized heads", "schedule"],
            rows,
            title="Lemma 4.5 in action — the pre-committed schedule classifies the real run:",
        )
    )

    # --- 2. The damage -----------------------------------------------
    # Victim: the threshold-riding uniform algorithm — the best response
    # to the attacker's dense/sparse rule, i.e. the algorithm whose
    # slowdown estimates the lower bound's shape (same as the E8 bench).
    import math

    from repro.algorithms import make_uniform_local_broadcast

    def median_rounds(attacked: bool) -> float:
        rounds = []
        for trial in range(args.trials):
            seed = derive_seed(args.seed, "trial", trial, attacked)
            net = bracelet(length, rng=random.Random(derive_seed(seed, "clasp")))
            b = frozenset(net.heads_a())
            threshold = 0.75 * math.log(net.n)
            algo = make_uniform_local_broadcast(
                net.n,
                b,
                net.graph.max_degree,
                probability=min(0.5, threshold / (2.0 * length)),
            )
            adversary = (
                BraceletObliviousAttacker(net, threshold_factor=0.75)
                if attacked
                else NoFlakyLinks()
            )
            result = run_broadcast_trial(
                network=net.graph,
                algorithm=algo,
                link_process=adversary,
                problem=LocalBroadcastProblem(net.graph, b),
                seed=seed,
                max_rounds=64 * net.n,
            )
            rounds.append(result.rounds_to_solve())
        return statistics.median(rounds)

    attacked = median_rounds(True)
    control = median_rounds(False)
    print(f"\nrounds to solve local broadcast (medians over {args.trials} trials):")
    print(f"  with the precomputed attack : {attacked:.0f}")
    print(f"  without any attack          : {control:.0f}")
    print(
        f"\nReading: an adversary that committed everything before round 0 "
        f"still slowed\nlocal broadcast {attacked / max(control, 1):.1f}x — "
        f"and the slowdown grows like √n/log n (run the\nE8 bench for the sweep)."
    )


if __name__ == "__main__":
    main()
