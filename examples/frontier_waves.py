#!/usr/bin/env python3
"""Frontier waves: watching the ``D log n`` term happen, hop by hop.

Global broadcast on a line of cliques is a wave: the message crosses
one bridge, floods a clique, crosses the next. This demo runs three
algorithms on the same network and prints their informed-node curves
(as sparklines) and per-hop latencies — decay spends ``Θ(log n)``
rounds per hop, round robin spends ``Θ(n)``, and the uncoordinated
ablation shows what losing rung coordination does to the wave.

Run:  python examples/frontier_waves.py [--cliques 8] [--clique-size 16]
"""

from __future__ import annotations

import argparse

from repro.adversaries import NoFlakyLinks
from repro.algorithms import (
    make_oblivious_global_broadcast,
    make_plain_decay_global_broadcast,
    make_round_robin_global_broadcast,
)
from repro.analysis import (
    ascii_sparkline,
    informed_curve,
    per_hop_latencies,
    render_table,
)
from repro.core import RadioNetworkEngine
from repro.core.rng import derive_seed
from repro.graphs import line_of_cliques
from repro.problems import GlobalBroadcastProblem


def run_with_observer(network, spec, seed):
    problem = GlobalBroadcastProblem(network, 0)
    observer = problem.make_observer()
    engine = RadioNetworkEngine(
        network,
        spec.build_processes(network.n, network.max_degree, seed=seed),
        NoFlakyLinks(),
        seed=seed,
        observers=[observer],
    )
    result = engine.run(max_rounds=64 * network.n, stop=lambda: observer.solved)
    return result, observer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cliques", type=int, default=8)
    parser.add_argument("--clique-size", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args()

    network = line_of_cliques(args.cliques, args.clique_size)
    print(f"network: {network.summary()}, D = {network.g_diameter()}\n")

    algorithms = {
        "plain decay [2]": make_plain_decay_global_broadcast(network.n, 0),
        "permuted decay §4.1": make_oblivious_global_broadcast(network.n, 0),
        "round robin": make_round_robin_global_broadcast(
            network.n, 0, slot_seed=derive_seed(args.seed, "slots")
        ),
    }

    rows = []
    print("informed-node curves (each column ≈ equal share of the run):")
    for name, spec in algorithms.items():
        result, observer = run_with_observer(network, spec, args.seed)
        curve = informed_curve(observer)
        latencies = per_hop_latencies(network, observer)
        numeric = [lat for lat in latencies if lat is not None]
        rows.append(
            [
                name,
                result.rounds,
                f"{min(numeric)}–{max(numeric)}" if numeric else "-",
                round(sum(numeric) / len(numeric), 1) if numeric else "-",
            ]
        )
        print(f"  {name:22s} {ascii_sparkline(curve, width=60)}")
    print()
    print(
        render_table(
            ["algorithm", "total rounds", "per-hop latency range", "mean per hop"],
            rows,
        )
    )
    print(
        "\nReading: decay's wave advances every O(log n) rounds per hop; round "
        "robin's\nadvances once per O(n)-round sweep — same wave, different "
        "clock, which is the\nD log n vs nD gap of Figure 1's last row."
    )


if __name__ == "__main__":
    main()
