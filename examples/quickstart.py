#!/usr/bin/env python3
"""Quickstart: broadcast over an unreliable radio network, declaratively.

Describes a whole trial — graph family, problem, algorithm, adversary —
as a :class:`repro.api.ScenarioSpec`: a 128-node random geographic
deployment (close pairs reliable, grey-zone pairs adversarial), running
the paper's oblivious-model global broadcast (Section 4.1 permuted
decay) against bursty Gilbert–Elliott link fading. The spec is plain
JSON-able data — print it, save it, run it from the CLI with
``repro run-spec spec.json``, or fan it out across cores.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import ScenarioSpec, Simulation

SPEC = ScenarioSpec(
    name="quickstart",
    # Pairs within distance 1 are reliable (G); pairs in the grey zone
    # (1, 2] exist only when the adversary lets them (G' \ G).
    graph=("geographic", {"n": 128, "grey_ratio": 2.0}),
    problem=("global-broadcast", {"source": 0}),
    # Section 4.1: the source appends fresh random bits to its message;
    # receivers use them to permute their decay schedules, so an
    # oblivious adversary cannot predict any round's behavior.
    algorithm=("permuted-decay", {}),
    # Bursty node-level fading fit to the β-factor view of real links:
    # flaky links fail in bursts (mean burst length 1/p_recover rounds).
    adversary=("ge-fade", {"p_fail": 0.25, "p_recover": 0.35}),
)


def main() -> None:
    print("scenario (JSON round-trippable):")
    print(SPEC.to_json())

    simulation = Simulation.from_spec(SPEC)

    # Peek at one built trial: the spec redraws the deployment from
    # each trial seed, so networks are fresh per trial.
    trial = simulation.prepared_trial(seed=2013)
    print(f"\nnetwork : {trial.network.summary()}")
    print(f"diameter: {trial.network.g_diameter()} hops (over reliable links)")

    result = simulation.run_trial(seed=2013)
    print(f"solved  : {result.solved}")
    print(f"rounds  : {result.rounds_to_solve()}")

    # Many independent trials aggregate into stats; add
    # executor=repro.api.ParallelExecutor() to fan them across cores.
    stats = simulation.run(trials=10, master_seed=2013)
    print(f"\n10 trials: median {stats.median_rounds:.0f} rounds, "
          f"success {stats.success_rate:.0%}")

    # The bitset fast-path engine is seed-for-seed identical to the
    # reference engine — only faster (docs/architecture.md, "Engines").
    fast = Simulation.from_spec(SPEC, engine="bitset").run_trial(seed=2013)
    assert fast == result
    print(f"bitset engine: identical result in {fast.rounds} rounds")


if __name__ == "__main__":
    main()
