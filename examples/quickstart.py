#!/usr/bin/env python3
"""Quickstart: broadcast over an unreliable radio network in ~40 lines.

Builds a random geographic dual graph (close pairs reliable, grey-zone
pairs adversarial), runs the paper's oblivious-model global broadcast
(Section 4.1 permuted decay) against bursty Gilbert–Elliott link
fading, and reports how many synchronous rounds dissemination took.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.adversaries import GilbertElliottNodeFade
from repro.algorithms import make_oblivious_global_broadcast
from repro.analysis import run_broadcast_trial
from repro.graphs import random_geographic


def main() -> None:
    # A 128-node deployment: pairs within distance 1 are reliable (G),
    # pairs in the grey zone (1, 2] exist only when the adversary — here
    # playing bursty environmental fading — lets them (G' \ G).
    network = random_geographic(n=128, grey_ratio=2.0, seed=7)
    print(f"network : {network.summary()}")
    print(f"diameter: {network.g_diameter()} hops (over reliable links)")

    # The Section 4.1 algorithm: the source appends fresh random bits to
    # its message; receivers use them to permute their decay schedules,
    # so an oblivious adversary cannot predict any round's behavior.
    source = 0
    algorithm = make_oblivious_global_broadcast(network.n, source)

    # Bursty node-level fading fit to the β-factor view of real links:
    # flaky links fail in bursts (mean burst length 1/p_recover rounds).
    environment = GilbertElliottNodeFade(p_fail=0.25, p_recover=0.35)

    result = run_broadcast_trial(
        network=network,
        algorithm=algorithm,
        link_process=environment,
        seed=2013,
    )
    print(f"solved  : {result.solved}")
    print(f"rounds  : {result.rounds_to_solve()}")


if __name__ == "__main__":
    main()
