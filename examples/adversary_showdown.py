#!/usr/bin/env python3
"""Adversary showdown: one network, one algorithm, three adversary classes.

The paper's central question — how much does the *strength* of the
link-controlling adversary cost? — answered empirically on a single
dual clique network. The same permuted-decay global broadcast runs
against:

* a suite of **oblivious** adversaries (nature-like and structured),
* the **online adaptive** dense/sparse attacker of Theorem 3.1, and
* the **offline adaptive** solo blocker of [11],

and the printed table is Figure 1's column-of-rows for global
broadcast: polylog under oblivious, ~n/log n online, ~n offline.

Run:  python examples/adversary_showdown.py  [--half 64] [--trials 5]
"""

from __future__ import annotations

import argparse
import random
import statistics

from repro.adversaries import (
    AllFlakyLinks,
    GilbertElliottNodeFade,
    NoFlakyLinks,
    OfflineSoloBlockerAttacker,
    OnlineDenseSparseAttacker,
)
from repro.algorithms import make_oblivious_global_broadcast
from repro.analysis import render_table, run_broadcast_trial
from repro.core.rng import derive_seed
from repro.graphs import dual_clique


def median_rounds(half: int, make_adversary, trials: int, master_seed: int) -> float:
    rounds = []
    for trial in range(trials):
        seed = derive_seed(master_seed, "showdown", half, trial)
        rng = random.Random(derive_seed(seed, "bridge"))
        dc = dual_clique(
            half,
            bridge_a=1 + rng.randrange(half - 1),  # never the source
            bridge_b=half + rng.randrange(half),
        )
        result = run_broadcast_trial(
            network=dc.graph,
            algorithm=make_oblivious_global_broadcast(dc.n, 0),
            link_process=make_adversary(dc),
            seed=seed,
            max_rounds=200 * dc.n,
        )
        rounds.append(result.rounds if result.solved else 200 * dc.n)
    return statistics.median(rounds)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--half", type=int, default=64, help="clique size |A| = |B|")
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args()

    adversaries = [
        ("oblivious: no flaky links", "oblivious", lambda dc: NoFlakyLinks()),
        ("oblivious: all flaky links", "oblivious", lambda dc: AllFlakyLinks()),
        (
            "oblivious: bursty GE fading",
            "oblivious",
            lambda dc: GilbertElliottNodeFade(p_fail=0.3, p_recover=0.3),
        ),
        (
            "ONLINE adaptive: dense/sparse (Thm 3.1)",
            "online adaptive",
            lambda dc: OnlineDenseSparseAttacker(dc.side_a_mask),
        ),
        (
            "OFFLINE adaptive: solo blocker [11]",
            "offline adaptive",
            lambda dc: OfflineSoloBlockerAttacker(dc.side_a_mask),
        ),
    ]

    n = 2 * args.half
    print(f"Dual clique, n = {n}; victim: permuted-decay global broadcast (§4.1)")
    print(f"(per-trial secret bridge; medians over {args.trials} trials)\n")
    rows = []
    for label, klass, factory in adversaries:
        median = median_rounds(args.half, factory, args.trials, args.seed)
        rows.append([label, klass, median])
    print(render_table(["adversary", "class", "median rounds"], rows))
    print(
        "\nReading: the identical algorithm on the identical network pays "
        "polylog rounds\nagainst every oblivious adversary but near-linear "
        "rounds once the adversary\nmay adapt — the paper's Figure-1 "
        "separation, live."
    )


if __name__ == "__main__":
    main()
