#!/usr/bin/env python3
"""Adversary showdown: one network, one algorithm, three adversary classes.

The paper's central question — how much does the *strength* of the
link-controlling adversary cost? — answered empirically on a single
dual clique network. The same permuted-decay global broadcast runs
against:

* a suite of **oblivious** adversaries (nature-like and structured),
* the **online adaptive** dense/sparse attacker of Theorem 3.1, and
* the **offline adaptive** solo blocker of [11],

and the printed table is Figure 1's column-of-rows for global
broadcast: polylog under oblivious, ~n/log n online, ~n offline.

Each contender is one declarative :class:`repro.api.ScenarioSpec` —
only the ``adversary`` section differs — and because specs are plain
data the trials fan out across cores with ``--parallel``.

Run:  python examples/adversary_showdown.py  [--half 64] [--trials 5] [--parallel]
"""

from __future__ import annotations

import argparse

from repro.analysis import render_table
from repro.api import ParallelExecutor, ScenarioSpec, Simulation

ADVERSARIES = [
    ("oblivious: no flaky links", "oblivious", ("none", {})),
    ("oblivious: all flaky links", "oblivious", ("all", {})),
    (
        "oblivious: bursty GE fading",
        "oblivious",
        ("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
    ),
    (
        "ONLINE adaptive: dense/sparse (Thm 3.1)",
        "online adaptive",
        ("online-dense-sparse", {"side": "A"}),
    ),
    (
        "OFFLINE adaptive: solo blocker [11]",
        "offline adaptive",
        ("offline-solo-blocker", {"side": "A"}),
    ),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--half", type=int, default=64, help="clique size |A| = |B|")
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--parallel", action="store_true", help="fan trials out across cores"
    )
    args = parser.parse_args()

    n = 2 * args.half
    executor = ParallelExecutor() if args.parallel else None
    print(f"Dual clique, n = {n}; victim: permuted-decay global broadcast (§4.1)")
    print(f"(per-trial secret bridge; medians over {args.trials} trials)\n")

    rows = []
    for label, klass, adversary in ADVERSARIES:
        spec = ScenarioSpec(
            name=label,
            graph=("dual-clique", {"half": args.half}),  # secret bridge per trial
            problem=("global-broadcast", {"source": 0}),
            algorithm=("permuted-decay", {}),
            adversary=adversary,
            max_rounds=200 * n,
        )
        stats = Simulation.from_spec(spec).run(
            trials=args.trials, master_seed=args.seed, executor=executor
        )
        rows.append([label, klass, stats.median_rounds])
    print(render_table(["adversary", "class", "median rounds"], rows))
    print(
        "\nReading: the identical algorithm on the identical network pays "
        "polylog rounds\nagainst every oblivious adversary but near-linear "
        "rounds once the adversary\nmay adapt — the paper's Figure-1 "
        "separation, live."
    )


if __name__ == "__main__":
    main()
