#!/usr/bin/env python3
"""Sensor field: local broadcast under environmental interference.

The scenario the paper's introduction motivates: a field of wireless
sensors whose grey-zone links flicker with the environment. A quarter
of the sensors hold fresh readings to share with their neighbors
(local broadcast); we compare the paper's Section 4.3 algorithm against
the classic static-model decay and the naive baselines, under three
oblivious environments — calm, bursty fading, and a moving interference
front sweeping the field.

Run:  python examples/sensor_field_local_broadcast.py [--n 128]
"""

from __future__ import annotations

import argparse
import random
import statistics

from repro.adversaries import (
    GilbertElliottNodeFade,
    MovingRegionFade,
    NoFlakyLinks,
)
from repro.algorithms import (
    make_geographic_local_broadcast,
    make_round_robin_local_broadcast,
    make_static_local_broadcast,
    make_uniform_local_broadcast,
)
from repro.analysis import render_table, run_broadcast_trial
from repro.core.rng import derive_seed
from repro.graphs import RegionDecomposition, random_geographic
from repro.problems import LocalBroadcastProblem


def build_field(n: int, seed: int):
    network = random_geographic(n, grey_ratio=2.0, seed=seed)
    rng = random.Random(derive_seed(seed, "sensors"))
    broadcasters = frozenset(rng.sample(range(n), max(1, n // 4)))
    return network, broadcasters


ENVIRONMENTS = {
    "calm (G only)": lambda net: NoFlakyLinks(),
    "bursty fading": lambda net: GilbertElliottNodeFade(p_fail=0.3, p_recover=0.3),
    "moving front": lambda net: MovingRegionFade(fade_radius=1.5, speed=0.3),
}


def algorithms_for(network, broadcasters):
    delta = network.max_degree
    return {
        "geo-local §4.3": make_geographic_local_broadcast(
            network.n, broadcasters, delta
        ),
        "static decay [8]": make_static_local_broadcast(
            network.n, broadcasters, delta
        ),
        "uniform(1/Δ)": make_uniform_local_broadcast(network.n, broadcasters, delta),
        "round robin": make_round_robin_local_broadcast(network.n, broadcasters),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=128)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args()

    network, broadcasters = build_field(args.n, args.seed)
    problem = LocalBroadcastProblem(network, broadcasters)
    regions = RegionDecomposition.build(network)
    print(f"field    : {network.summary()}")
    print(f"problem  : {problem.describe()}")
    print(f"regions  : {regions.summary()}\n")

    algo_names = list(algorithms_for(network, broadcasters))
    rows = []
    for env_name, make_env in ENVIRONMENTS.items():
        row = [env_name]
        for algo_name in algo_names:
            rounds = []
            for trial in range(args.trials):
                seed = derive_seed(args.seed, env_name, algo_name, trial)
                net, sensors = build_field(args.n, derive_seed(seed, "field"))
                algos = algorithms_for(net, sensors)
                result = run_broadcast_trial(
                    network=net,
                    algorithm=algos[algo_name],
                    link_process=make_env(net),
                    seed=seed,
                    max_rounds=64 * net.n + 8192,
                )
                rounds.append(result.rounds if result.solved else float("inf"))
            row.append(statistics.median(rounds))
        rows.append(row)

    print(render_table(["environment"] + algo_names, rows,
                       title=f"median rounds to serve every receiver ({args.trials} trials):"))
    print(
        "\nReading: the §4.3 algorithm pays a fixed polylog setup (its "
        "initialization stage)\nbut its round count is insensitive to the "
        "environment — the oblivious-adversary\nguarantee at work. Round "
        "robin is environment-proof too, at Θ(n) cost."
    )


if __name__ == "__main__":
    main()
