#!/usr/bin/env python3
"""The lower-bound machine, live: broadcast algorithms playing β-hitting.

Theorem 3.1's proof is an executable object in this library: a player
that wins the β-hitting game by simulating a broadcast algorithm on a
bridgeless dual clique and converting its transmission pattern into
guesses. This demo plays the game with three different "engines" —
the paper's permuted-decay algorithm, the threshold-riding best
response, and round robin — and compares their guess counts with the
baseline players and Lemma 3.2's envelope.

If broadcast were solvable in o(n/log n) rounds, the corresponding
player would beat Ω(β) guesses — which Lemma 3.2 forbids. Watching the
guess counts track β is watching the lower bound happen.

Run:  python examples/hitting_game_reduction.py [--beta 32]
"""

from __future__ import annotations

import argparse
import math
import random
import statistics

from repro.algorithms import (
    make_oblivious_global_broadcast,
    make_round_robin_global_broadcast,
    make_uniform_global_broadcast,
)
from repro.analysis import render_table
from repro.games import (
    DualCliqueReductionPlayer,
    NoRepeatRandomPlayer,
    SequentialPlayer,
    play_hitting_game,
)


def riding_uniform(n, side_a):
    threshold = 2.0 * math.log2(n)
    return make_uniform_global_broadcast(
        n, 0, probability=threshold / (2.0 * len(side_a))
    )


def permuted(n, side_a):
    return make_oblivious_global_broadcast(n, 0, gamma=2)


def round_robin(n, side_a):
    return make_round_robin_global_broadcast(n, 0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--beta", type=int, default=32)
    parser.add_argument("--trials", type=int, default=7)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args()

    beta = args.beta
    rng = random.Random(args.seed)

    players = {
        "P_A(threshold-riding uniform)": lambda: DualCliqueReductionPlayer(
            beta, riding_uniform, seed=rng.getrandbits(63)
        ),
        "P_A(permuted decay §4.1)": lambda: DualCliqueReductionPlayer(
            beta, permuted, seed=rng.getrandbits(63)
        ),
        "P_A(round robin)": lambda: DualCliqueReductionPlayer(
            beta, round_robin, seed=rng.getrandbits(63)
        ),
        "no-repeat guesser (optimal)": lambda: NoRepeatRandomPlayer(beta, rng),
        "sequential guesser": lambda: SequentialPlayer(beta),
    }

    print(f"β-hitting game, β = {beta}; {args.trials} games per player")
    print(f"Lemma 3.2: winning within k guesses has probability ≤ k/(β−1),")
    print(f"so any player needs ~β guesses to win reliably.\n")

    rows = []
    for name, factory in players.items():
        guesses = []
        for _ in range(args.trials):
            outcome = play_hitting_game(
                beta, factory(), rng, max_guesses=4 * beta * beta
            )
            guesses.append(outcome.guesses_used if outcome.won else float("inf"))
        rows.append([name, statistics.median(guesses), f"{beta}"])
    print(
        render_table(
            ["player", "median guesses to win", "Ω(β) reference"],
            rows,
        )
    )
    print(
        "\nReading: the reduction players' guess counts sit in the same "
        "Θ(β) band as the\noptimal guessers — simulating a broadcast "
        "algorithm buys no shortcut, which is\nexactly why broadcast "
        "cannot beat Ω(n/log n) rounds online-adaptively."
    )


if __name__ == "__main__":
    main()
