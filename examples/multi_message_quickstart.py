#!/usr/bin/env python3
"""Multi-message broadcast over an abstract MAC layer.

Four messages start at random sources on a 64-node geographic
deployment; the problem is solved when **every node holds all four**.
Dissemination runs through the GKLN abstract-MAC discipline — relay
each newly learned message once, FIFO, one ack window at a time — on
two interchangeable layer realizations:

* the **simulated** MAC: decay-window contention resolution executed
  round by round on the real radio engine, under bursty link fading;
* the **oracle** MAC: ack/progress delays sampled straight from the
  matched ``f_ack``/``f_prog`` guarantee envelopes — no engine, nearly
  free at any ``n``, and the idealized baseline the realization is
  measured against (experiment ``M3``).

Run:  python examples/multi_message_quickstart.py
"""

from __future__ import annotations

import dataclasses

from repro.api import ScenarioSpec, Simulation, multi_message_detail

SIMULATED = ScenarioSpec(
    name="multi-message quickstart",
    graph=("geographic", {"n": 64, "grey_ratio": 2.0}),
    # Completion = the full n × k knowledge relation; the observer also
    # records when each individual message reached its last node.
    problem=("multi-message", {}),
    # GKLN Basic Multi-Message Broadcast: one bcast per ack window.
    algorithm=("gkln-multi-message", {}),
    adversary=("ge-fade", {"p_fail": 0.3, "p_recover": 0.3}),
    # The ack window is f_ack(n, Δ) = Θ(log n · log Δ) rounds of decay
    # ladder — the time-bounded realization of the abstract MAC.
    mac=("simulated", {}),
    # Resolved per trial seed: 4 distinct sources from the labelled
    # "messages" stream (use "spread" or an explicit list to pin them).
    messages={"k": 4, "sources": "random"},
)

ORACLE = dataclasses.replace(
    SIMULATED,
    name="multi-message quickstart (oracle)",
    mac=("oracle", {}),
)


def main() -> None:
    seed = 2013
    for spec in (SIMULATED, ORACLE):
        detail = multi_message_detail(spec, seed)
        layer = spec.mac.name
        print(f"[{layer} MAC] solved={detail.solved} in {detail.rounds} rounds")
        for index, source, completed in detail.rows():
            print(f"  message {index} (source {source:>2}) complete at round {completed}")

    stats = Simulation.from_spec(SIMULATED).run(trials=20, master_seed=seed)
    print(
        f"\n20 simulated-MAC trials: median {stats.median_rounds:.0f} rounds, "
        f"success {stats.success_rate:.0%}"
    )
    stats = Simulation.from_spec(ORACLE).run(trials=20, master_seed=seed)
    print(
        f"20 oracle-MAC trials:    median {stats.median_rounds:.0f} rounds, "
        f"success {stats.success_rate:.0%}  (no engine rounds executed)"
    )


if __name__ == "__main__":
    main()
