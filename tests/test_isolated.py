"""Tests for isolated broadcast functions (Lemma 4.4) and their
two-trial stability (Lemma 4.5)."""

from __future__ import annotations

import random

import pytest

from repro.algorithms.local_static import make_static_local_broadcast
from repro.algorithms.uniform import make_uniform_local_broadcast
from repro.games.isolated import (
    IsolatedBroadcastFunction,
    head_broadcast_counts,
    simulate_isolated_band,
    two_trial_counts,
)
from repro.graphs.bracelet import bracelet


def band_spec(br, rate=None):
    """A local broadcast spec with B = side-A heads (the Thm 4.3 roles)."""
    broadcasters = frozenset(br.heads_a())
    if rate is None:
        return make_static_local_broadcast(
            br.n, broadcasters, br.graph.max_degree
        )
    return make_uniform_local_broadcast(
        br.n, broadcasters, br.graph.max_degree, probability=rate
    )


class TestBandSimulation:
    def test_records_have_requested_length(self):
        br = bracelet(4)
        result = simulate_isolated_band(
            band_spec(br), br.band_a(0), n=br.n, max_degree=br.graph.max_degree,
            rounds=4, seed=1,
        )
        assert len(result.head_broadcasts) == 4
        assert len(result.transmit_counts) == 4
        assert result.band_nodes == tuple(br.band_a(0))

    def test_deterministic_per_seed(self):
        br = bracelet(4)
        args = dict(n=br.n, max_degree=br.graph.max_degree, rounds=4)
        a = simulate_isolated_band(band_spec(br), br.band_a(1), seed=7, **args)
        b = simulate_isolated_band(band_spec(br), br.band_a(1), seed=7, **args)
        assert a == b

    def test_different_seeds_vary(self):
        br = bracelet(6)
        args = dict(n=br.n, max_degree=br.graph.max_degree, rounds=6)
        outcomes = {
            simulate_isolated_band(
                band_spec(br), br.band_a(0), seed=s, **args
            ).head_broadcasts
            for s in range(12)
        }
        assert len(outcomes) > 1

    def test_non_broadcaster_band_is_silent(self):
        # Side-B bands have no broadcasters under the Thm 4.3 roles —
        # every node listens forever, so no transmissions at all.
        br = bracelet(4)
        result = simulate_isolated_band(
            band_spec(br), br.band_b(2), n=br.n, max_degree=br.graph.max_degree,
            rounds=4, seed=3,
        )
        assert result.transmit_counts == (0, 0, 0, 0)

    def test_head_rate_matches_algorithm(self):
        # A uniform-rate head transmits ~rate per round in isolation.
        br = bracelet(4)
        hits = total = 0
        for seed in range(60):
            result = simulate_isolated_band(
                band_spec(br, rate=0.3), br.band_a(0),
                n=br.n, max_degree=br.graph.max_degree, rounds=4, seed=seed,
            )
            hits += sum(result.head_broadcasts)
            total += len(result.head_broadcasts)
        assert 0.18 < hits / total < 0.42

    def test_empty_band_rejected(self):
        br = bracelet(4)
        with pytest.raises(ValueError):
            simulate_isolated_band(
                band_spec(br), [], n=br.n, max_degree=br.graph.max_degree,
                rounds=2, seed=0,
            )


class TestIsolatedBroadcastFunction:
    def make_function(self, br, band=0):
        return IsolatedBroadcastFunction(
            spec=band_spec(br),
            band_nodes=tuple(br.band_a(band)),
            n=br.n,
            max_degree=br.graph.max_degree,
            horizon=br.band_length,
        )

    def test_deterministic_in_seed(self):
        br = bracelet(5)
        f = self.make_function(br)
        assert f.trajectory(42) == f.trajectory(42)
        assert f.evaluate(42, 0) == f.trajectory(42)[0]

    def test_horizon_enforced(self):
        br = bracelet(4)
        f = self.make_function(br)
        with pytest.raises(ValueError):
            f.evaluate(1, br.band_length)

    def test_cache_hit_avoids_resimulation(self):
        br = bracelet(4)
        f = self.make_function(br)
        f.trajectory(9)
        assert 9 in f._cache

    def test_head_counts_sum_per_round(self):
        br = bracelet(3)
        functions = [self.make_function(br, band=i) for i in range(3)]
        seeds = [1, 2, 3]
        counts = head_broadcast_counts(functions, seeds, br.band_length)
        assert len(counts) == br.band_length
        for r, count in enumerate(counts):
            manual = sum(f.trajectory(s)[r] for f, s in zip(functions, seeds))
            assert count == manual

    def test_head_counts_validates_lengths(self):
        br = bracelet(3)
        with pytest.raises(ValueError):
            head_broadcast_counts([self.make_function(br)], [1, 2], 3)


class TestLemma45Stability:
    """Two independent trials of the head counts agree on dense/sparse —
    the statistical heart of the oblivious bracelet attack."""

    @pytest.mark.slow
    def test_two_trials_track_each_other(self):
        br = bracelet(8)
        spec = band_spec(br, rate=0.25)
        functions = [
            IsolatedBroadcastFunction(
                spec=spec,
                band_nodes=tuple(br.band_a(i)),
                n=br.n,
                max_degree=br.graph.max_degree,
                horizon=br.band_length,
            )
            for i in range(br.band_length)
        ]
        rng = random.Random(17)
        agreements = disagreements = 0
        threshold = 0.25 * br.band_length  # the mean rate: a fair splitter
        for _ in range(20):
            y1, y2 = two_trial_counts(functions, br.band_length, rng)
            for a, b in zip(y1, y2):
                # Lemma 4.5-style check, loosened for small n: if one
                # trial is far above threshold the other is not near zero.
                if a >= 2 * threshold:
                    (agreements, disagreements) = (
                        (agreements + 1, disagreements)
                        if b >= 1
                        else (agreements, disagreements + 1)
                    )
        assert disagreements <= max(1, agreements // 4)

    def test_uniform_rate_counts_concentrate(self):
        # With L heads at rate p, counts should hover near L·p.
        br = bracelet(8)
        spec = band_spec(br, rate=0.5)
        functions = [
            IsolatedBroadcastFunction(
                spec=spec,
                band_nodes=tuple(br.band_a(i)),
                n=br.n,
                max_degree=br.graph.max_degree,
                horizon=4,
            )
            for i in range(br.band_length)
        ]
        seeds = list(range(br.band_length))
        counts = head_broadcast_counts(functions, seeds, 4)
        assert all(0 < c < br.band_length for c in counts)
