"""Tests for BitStream / BitCursor — the shared-randomness substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import BitCursor, BitStream, bits_for_uniform
from repro.core.errors import BitStreamError


class TestBitsForUniform:
    def test_power_of_two_widths(self):
        assert bits_for_uniform(2) == 1
        assert bits_for_uniform(4) == 2
        assert bits_for_uniform(8) == 3
        assert bits_for_uniform(1024) == 10

    def test_single_outcome(self):
        assert bits_for_uniform(1) == 1

    def test_non_power_of_two_padded(self):
        # width = bitlen(n-1) + 2 when n is not a power of two
        assert bits_for_uniform(3) == 4
        assert bits_for_uniform(6) == 5

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bits_for_uniform(0)


class TestBitStreamConstruction:
    def test_from_bits_list(self):
        s = BitStream.from_bits([1, 0, 1, 1])
        assert len(s) == 4
        assert list(s) == [1, 0, 1, 1]

    def test_from_bits_string(self):
        s = BitStream.from_bits("1011")
        assert s.to_bitstring() == "1011"

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitStream.from_bits([0, 2, 1])

    def test_random_has_requested_length(self, rng):
        s = BitStream.random(rng, 137)
        assert len(s) == 137

    def test_random_zero_length(self, rng):
        s = BitStream.random(rng, 0)
        assert len(s) == 0

    def test_value_beyond_length_rejected(self):
        with pytest.raises(ValueError):
            BitStream(value=0b1000, length=3)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitStream(value=0, length=-1)

    def test_random_is_deterministic_per_seed(self):
        a = BitStream.random(random.Random(5), 256)
        b = BitStream.random(random.Random(5), 256)
        assert a == b

    def test_random_differs_across_seeds(self):
        a = BitStream.random(random.Random(5), 256)
        b = BitStream.random(random.Random(6), 256)
        assert a != b


class TestWindowAccess:
    def test_window_value_front_bits(self):
        s = BitStream.from_bits("10110")
        assert s.window_value(0, 1) == 1
        assert s.window_value(1, 1) == 0
        assert s.window_value(0, 3) == 0b101  # little-endian within window

    def test_window_returns_substream(self):
        s = BitStream.from_bits("110101")
        w = s.window(2, 3)
        assert len(w) == 3
        assert w.to_bitstring() == "010"

    def test_window_zero_width(self):
        s = BitStream.from_bits("101")
        assert s.window_value(1, 0) == 0

    def test_overrun_raises_when_not_cyclic(self):
        s = BitStream.from_bits("101")
        with pytest.raises(BitStreamError):
            s.window_value(2, 2)

    def test_cyclic_overrun_wraps(self):
        s = BitStream.from_bits("101", cyclic=True)
        # offset 2 reads bit 2 (=1) then wraps to bit 0 (=1): value 0b11
        assert s.window_value(2, 2) == 0b11

    def test_cyclic_empty_stream_raises(self):
        s = BitStream(value=0, length=0, cyclic=True)
        with pytest.raises(BitStreamError):
            s.window_value(0, 1)

    def test_bit_accessor(self):
        s = BitStream.from_bits("01")
        assert s.bit(0) == 0
        assert s.bit(1) == 1

    def test_negative_offset_rejected(self):
        s = BitStream.from_bits("1111")
        with pytest.raises(ValueError):
            s.window_value(-1, 2)


class TestUniformAt:
    def test_same_offset_same_value_for_all_holders(self, rng):
        s = BitStream.random(rng, 512)
        # Two independent "nodes" holding the same stream agree.
        assert s.uniform_at(17, 8) == s.uniform_at(17, 8)

    def test_values_in_range(self, rng):
        s = BitStream.random(rng, 4096)
        width = bits_for_uniform(8)
        for i in range(100):
            v = s.uniform_at(i * width, 8)
            assert 0 <= v < 8

    def test_roughly_uniform_for_power_of_two(self, rng):
        s = BitStream.random(rng, 3 * 4000)
        counts = [0] * 8
        for i in range(4000):
            counts[s.uniform_at(3 * i, 8)] += 1
        # Each outcome expects 500; allow generous slack.
        assert min(counts) > 350
        assert max(counts) < 650


class TestBitCursor:
    def test_sequential_take(self):
        s = BitStream.from_bits("10110100")
        c = s.cursor()
        assert c.take(3) == 0b101
        assert c.take(3) == 0b101  # bits 3,4,5 = 1,0,1 -> LE 0b101
        assert c.remaining == 2

    def test_take_past_end_raises(self):
        c = BitStream.from_bits("10").cursor()
        c.take(2)
        with pytest.raises(BitStreamError):
            c.take(1)

    def test_take_uniform_advances_fixed_width(self):
        s = BitStream.random(random.Random(1), 64)
        c = s.cursor()
        c.take_uniform(8)
        assert c.position == bits_for_uniform(8)

    def test_take_bernoulli_bounds(self):
        c = BitStream.random(random.Random(2), 1024).cursor()
        draws = [c.take_bernoulli(1, 2) for _ in range(100)]
        assert any(draws) and not all(draws)

    def test_take_bernoulli_extremes(self):
        c = BitStream.random(random.Random(3), 64).cursor()
        assert c.take_bernoulli(4, 4) is True
        assert c.take_bernoulli(0, 4) is False

    def test_take_bernoulli_rejects_bad_fraction(self):
        c = BitStream.random(random.Random(3), 64).cursor()
        with pytest.raises(ValueError):
            c.take_bernoulli(5, 4)


class TestBitStreamProperties:
    @given(bits=st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_roundtrip_through_bitstring(self, bits):
        s = BitStream.from_bits(bits)
        assert BitStream.from_bits(s.to_bitstring()) == s

    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=128),
        offset=st.integers(0, 127),
        width=st.integers(0, 128),
    )
    def test_window_matches_bit_list(self, bits, offset, width):
        s = BitStream.from_bits(bits)
        if offset + width > len(bits):
            if width > 0:
                with pytest.raises(BitStreamError):
                    s.window_value(offset, width)
            return
        expected = 0
        for i in range(width):
            expected |= bits[offset + i] << i
        assert s.window_value(offset, width) == expected

    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=64),
        offset=st.integers(0, 200),
        width=st.integers(1, 64),
    )
    @settings(max_examples=50)
    def test_cyclic_window_matches_modular_indexing(self, bits, offset, width):
        s = BitStream.from_bits(bits, cyclic=True)
        expected = 0
        for i in range(width):
            expected |= bits[(offset + i) % len(bits)] << i
        assert s.window_value(offset, width) == expected

    @given(num_outcomes=st.integers(1, 100), offset=st.integers(0, 50))
    @settings(max_examples=50)
    def test_uniform_at_always_in_range(self, num_outcomes, offset):
        s = BitStream.random(random.Random(0), 512)
        assert 0 <= s.uniform_at(offset, num_outcomes) < num_outcomes
