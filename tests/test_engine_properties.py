"""Property-based tests: engine semantics under random graphs, scripts,
and adversaries (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.base import AdversaryClass, LinkProcess, RoundTopology
from repro.adversaries.static import AllFlakyLinks, AlternatingLinks, NoFlakyLinks
from repro.adversaries.stochastic import BernoulliNodeFade, GilbertElliottNodeFade
from repro.core.engine import RadioNetworkEngine
from repro.core.trace import TraceCollector, iter_bits, popcount
from repro.graphs.builders import er_dual
from tests.conftest import scripted_processes


def random_network(n_seed: int):
    rng = random.Random(n_seed)
    n = rng.randint(4, 16)
    return er_dual(n, 0.3, 0.3, rng)


def random_scripts(network, script_seed: int, rounds: int):
    rng = random.Random(script_seed)
    scripts = {}
    for u in range(network.n):
        scripts[u] = {
            r: rng.choice([0.0, 0.0, 0.3, 0.7, 1.0]) for r in range(rounds)
        }
    return scripts


ADVERSARY_FACTORIES = [
    lambda: NoFlakyLinks(),
    lambda: AllFlakyLinks(),
    lambda: AlternatingLinks((2, 3)),
    lambda: BernoulliNodeFade(0.5),
    lambda: GilbertElliottNodeFade(0.3, 0.4),
]


class TestReceptionInvariants:
    @given(
        n_seed=st.integers(0, 200),
        script_seed=st.integers(0, 200),
        adversary_index=st.integers(0, len(ADVERSARY_FACTORIES) - 1),
        engine_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_delivery_is_a_legal_radio_event(
        self, n_seed, script_seed, adversary_index, engine_seed
    ):
        """For every recorded delivery: the receiver listened, the sender
        transmitted, the pair is G'-adjacent, and the sender was the
        receiver's unique transmitting G'-neighbor (a necessary
        condition regardless of the flaky subset chosen)."""
        network = random_network(n_seed)
        rounds = 6
        processes = scripted_processes(
            network, random_scripts(network, script_seed, rounds)
        )
        collector = TraceCollector()
        engine = RadioNetworkEngine(
            network,
            processes,
            ADVERSARY_FACTORIES[adversary_index](),
            seed=engine_seed,
            observers=[collector],
        )
        engine.run(max_rounds=rounds)
        for record in collector.records:
            transmitters = record.transmitter_mask
            for delivery in record.deliveries:
                assert not (transmitters >> delivery.receiver) & 1
                assert (transmitters >> delivery.sender) & 1
                assert network.has_gp_edge(delivery.receiver, delivery.sender)
                # At most one receiver event per node per round.
            receivers = [d.receiver for d in record.deliveries]
            assert len(receivers) == len(set(receivers))

    @given(
        n_seed=st.integers(0, 100),
        script_seed=st.integers(0, 100),
        engine_seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_g_only_deliveries_match_brute_force(
        self, n_seed, script_seed, engine_seed
    ):
        """Against the G-only adversary the reception rule is fully
        determined; recompute it from scratch and compare."""
        network = random_network(n_seed)
        rounds = 5
        processes = scripted_processes(
            network, random_scripts(network, script_seed, rounds)
        )
        collector = TraceCollector()
        engine = RadioNetworkEngine(
            network, processes, NoFlakyLinks(), seed=engine_seed, observers=[collector]
        )
        engine.run(max_rounds=rounds)
        for record in collector.records:
            x = record.transmitter_mask
            expected = set()
            for u in range(network.n):
                if (x >> u) & 1:
                    continue
                neighbors_transmitting = x & network.g_masks[u]
                if popcount(neighbors_transmitting) == 1:
                    sender = next(iter_bits(neighbors_transmitting))
                    expected.add((u, sender))
            actual = {(d.receiver, d.sender) for d in record.deliveries}
            assert actual == expected

    @given(
        n_seed=st.integers(0, 100),
        script_seed=st.integers(0, 100),
        engine_seed=st.integers(0, 100),
        adversary_index=st.integers(0, len(ADVERSARY_FACTORIES) - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_determinism_across_identical_runs(
        self, n_seed, script_seed, engine_seed, adversary_index
    ):
        network = random_network(n_seed)
        rounds = 5

        def execute():
            processes = scripted_processes(
                network, random_scripts(network, script_seed, rounds)
            )
            collector = TraceCollector()
            engine = RadioNetworkEngine(
                network,
                processes,
                ADVERSARY_FACTORIES[adversary_index](),
                seed=engine_seed,
                observers=[collector],
            )
            engine.run(max_rounds=rounds)
            return [
                (r.transmitter_mask, tuple((d.receiver, d.sender) for d in r.deliveries))
                for r in collector.records
            ]

        assert execute() == execute()


class TestTopologyLegalityUnderRandomAdversaries:
    @given(
        n_seed=st.integers(0, 120),
        adversary_index=st.integers(0, len(ADVERSARY_FACTORIES) - 1),
        rounds=st.integers(1, 8),
        engine_seed=st.integers(0, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_validated_engine_never_raises(
        self, n_seed, adversary_index, rounds, engine_seed
    ):
        """With validation enabled, every shipped oblivious adversary
        produces legal topologies on arbitrary dual graphs."""
        network = random_network(n_seed)
        processes = scripted_processes(network, {0: {0: 1.0}})
        engine = RadioNetworkEngine(
            network,
            processes,
            ADVERSARY_FACTORIES[adversary_index](),
            seed=engine_seed,
            validate_topologies=True,
        )
        engine.run(max_rounds=rounds)


class TestCoinIndependenceFromAdversary:
    @given(n_seed=st.integers(0, 60), engine_seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_transmitter_coins_identical_across_adversaries(
        self, n_seed, engine_seed
    ):
        """The adversary cannot perturb the nodes' coins: the realized
        transmitter masks are identical run-to-run when only the link
        process differs (plans here don't depend on feedback)."""
        network = random_network(n_seed)
        rounds = 4
        scripts = random_scripts(network, n_seed + 1, rounds)

        def masks_for(adversary: LinkProcess):
            processes = scripted_processes(network, scripts)
            collector = TraceCollector()
            engine = RadioNetworkEngine(
                network, processes, adversary, seed=engine_seed, observers=[collector]
            )
            engine.run(max_rounds=rounds)
            return [r.transmitter_mask for r in collector.records]

        assert masks_for(NoFlakyLinks()) == masks_for(AllFlakyLinks())
